//! Injectable storage backend for the durability subsystem.
//!
//! All durable I/O (WAL appends, snapshot writes, manifest updates)
//! goes through the [`Storage`] trait, so the crash-injection tests
//! can substitute [`FaultyStorage`] — an in-memory filesystem that can
//! kill a write at any byte offset, tear the final write down to a
//! sector boundary, and inject transient `EIO`s — while production
//! uses [`DiskStorage`], which writes real files with `fsync` and
//! atomic rename.
//!
//! Crash model: every mutating call costs *units* (one per byte
//! written; one per rename, delete or truncate). When the cumulative
//! unit counter crosses the configured kill offset, the in-flight
//! write is truncated at exactly that many bytes (optionally rounded
//! down to a 512-byte sector boundary, emulating disks that tear on
//! sector granularity) and the storage goes *dead*: every later call
//! fails, as after a power cut. [`FaultyStorage::surviving`] then
//! clones the durable state into a fresh, healthy storage — the disk
//! as a rebooted process would find it.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

/// Sector size used by [`FaultyStorage`] when tearing writes.
pub const SECTOR: u64 = 512;

/// Abstract durable storage. Paths are interpreted by the backend;
/// [`DiskStorage`] maps them to the real filesystem.
pub trait Storage: Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Append bytes to a file (creating it) and flush them durably.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Replace a file's contents atomically: write `<path>.tmp`, flush
    /// durably, rename over `path`, then flush the directory so the
    /// rename itself survives a crash.
    fn atomic_write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Truncate a file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Delete a file. Deleting a missing file is an error.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Whether a file exists.
    fn exists(&self, path: &Path) -> bool;
    /// Length of a file in bytes, `0` when missing.
    fn len(&self, path: &Path) -> u64;
    /// All file paths directly inside `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Create a directory (and parents). Idempotent.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

// ---- real filesystem ------------------------------------------------------

/// [`Storage`] over the real filesystem with `fsync` on every durable
/// step. This is what `Database::open_durable` uses by default.
#[derive(Debug, Default, Clone)]
pub struct DiskStorage;

impl DiskStorage {
    pub fn shared() -> Arc<dyn Storage> {
        Arc::new(DiskStorage)
    }
}

fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        // Directory fsync is what makes a rename (or file creation)
        // itself durable on POSIX filesystems.
        if let Ok(d) = fs::File::open(parent) {
            d.sync_all()?;
        }
    }
    Ok(())
}

impl Storage for DiskStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn atomic_write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        sync_parent_dir(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)?;
        sync_parent_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn len(&self, path: &Path) -> u64 {
        fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
}

/// The temp-file sibling used by [`Storage::atomic_write`]
/// (`<name>.jsonl` → `<name>.jsonl.tmp`). Recovery ignores `.tmp`
/// leftovers from interrupted writes.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Whether a path is an [`Storage::atomic_write`] temp file.
pub fn is_tmp(path: &Path) -> bool {
    path.extension().and_then(|e| e.to_str()) == Some("tmp")
}

// ---- fault-injecting in-memory filesystem ---------------------------------

#[derive(Debug, Default)]
struct FaultyInner {
    files: BTreeMap<PathBuf, Vec<u8>>,
    /// Cumulative units consumed by mutating calls (bytes written, plus
    /// one per rename / delete / truncate).
    units: u64,
    /// Crash when `units` would cross this value.
    kill_at: Option<u64>,
    /// Round the torn final write down to a [`SECTOR`] boundary
    /// (file-relative), emulating sector-granularity tearing.
    sector_tear: bool,
    /// The crash happened: every subsequent call fails.
    dead: bool,
    /// Fail the next N mutating calls with a transient `EIO` *before*
    /// writing anything, then recover.
    transient_errors: u32,
}

/// An in-memory [`Storage`] that can crash mid-write.
///
/// Clones share state (it is an `Arc` inside), so a test can keep a
/// handle while the database owns another.
#[derive(Debug, Clone, Default)]
pub struct FaultyStorage {
    inner: Arc<Mutex<FaultyInner>>,
}

fn eio(msg: &str) -> io::Error {
    io::Error::other(msg.to_string())
}

impl FaultyStorage {
    pub fn new() -> FaultyStorage {
        FaultyStorage::default()
    }

    /// Crash once the cumulative unit counter crosses `units`.
    pub fn kill_at(&self, units: u64) {
        self.inner.lock().kill_at = Some(units);
    }

    /// Tear the crashed write down to a 512-byte sector boundary.
    pub fn tear_to_sectors(&self, on: bool) {
        self.inner.lock().sector_tear = on;
    }

    /// Fail the next `n` mutating calls with a transient error (nothing
    /// is written), then operate normally.
    pub fn inject_transient_errors(&self, n: u32) {
        self.inner.lock().transient_errors = n;
    }

    /// Units consumed so far — record this after each operation in a
    /// fault-free run to learn every interesting kill offset.
    pub fn units_written(&self) -> u64 {
        self.inner.lock().units
    }

    pub fn is_dead(&self) -> bool {
        self.inner.lock().dead
    }

    /// The surviving durable state as a fresh, healthy storage — what a
    /// restarted process would find on disk after the crash.
    pub fn surviving(&self) -> FaultyStorage {
        let inner = self.inner.lock();
        FaultyStorage {
            inner: Arc::new(Mutex::new(FaultyInner {
                files: inner.files.clone(),
                ..FaultyInner::default()
            })),
        }
    }

    /// Snapshot of the file map (paths + sizes), for test diagnostics.
    pub fn file_sizes(&self) -> Vec<(PathBuf, usize)> {
        self.inner
            .lock()
            .files
            .iter()
            .map(|(p, b)| (p.clone(), b.len()))
            .collect()
    }
}

impl FaultyInner {
    /// Account for a mutating call and decide how much of it happens.
    /// `Ok(n)` allows the first `n` of `cost` units; `n < cost` means
    /// the crash hits mid-call and the storage is now dead.
    fn admit(&mut self, cost: u64) -> io::Result<u64> {
        if self.dead {
            return Err(eio("storage crashed"));
        }
        if self.transient_errors > 0 {
            self.transient_errors -= 1;
            return Err(eio("transient I/O error"));
        }
        if let Some(kill) = self.kill_at {
            let budget = kill.saturating_sub(self.units);
            if cost > budget {
                self.units = kill;
                self.dead = true;
                return Ok(budget);
            }
        }
        self.units += cost;
        Ok(cost)
    }
}

impl Storage for FaultyStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock();
        if inner.dead {
            return Err(eio("storage crashed"));
        }
        inner
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.display().to_string()))
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let admitted = inner.admit(data.len() as u64)?;
        let sector_tear = inner.sector_tear;
        let file = inner.files.entry(path.to_path_buf()).or_default();
        let mut keep = admitted;
        if keep < data.len() as u64 && sector_tear {
            // Torn write: whole sectors (relative to file start) survive.
            let end = file.len() as u64 + keep;
            let kept_end = end - end % SECTOR;
            keep = kept_end.saturating_sub(file.len() as u64).min(keep);
        }
        file.extend_from_slice(&data[..keep as usize]);
        if admitted < data.len() as u64 {
            return Err(eio("storage crashed mid-append"));
        }
        Ok(())
    }

    fn atomic_write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        // Content write into the temp file — may tear, leaving a
        // partial `.tmp` that recovery ignores.
        self.append(&tmp, data)?;
        // The rename is one unit: either it happens or it doesn't.
        let mut inner = self.inner.lock();
        if inner.admit(1)? < 1 {
            return Err(eio("storage crashed before rename"));
        }
        if let Some(bytes) = inner.files.remove(&tmp) {
            inner.files.insert(path.to_path_buf(), bytes);
        }
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if inner.admit(1)? < 1 {
            return Err(eio("storage crashed before truncate"));
        }
        match inner.files.get_mut(path) {
            Some(bytes) => {
                bytes.truncate(len as usize);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                path.display().to_string(),
            )),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if inner.admit(1)? < 1 {
            return Err(eio("storage crashed before remove"));
        }
        match inner.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                path.display().to_string(),
            )),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.lock().files.contains_key(path)
    }

    fn len(&self, path: &Path) -> u64 {
        self.inner
            .lock()
            .files
            .get(path)
            .map(|b| b.len() as u64)
            .unwrap_or(0)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let inner = self.inner.lock();
        if inner.dead {
            return Err(eio("storage crashed"));
        }
        Ok(inner
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        let inner = self.inner.lock();
        if inner.dead {
            return Err(eio("storage crashed"));
        }
        Ok(())
    }
}

// `DiskStorage` round-trips are covered in `database.rs` tests; here we
// pin the crash semantics the property suite depends on.
#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn faulty_append_and_read_roundtrip() {
        let s = FaultyStorage::new();
        s.append(&p("/db/a.log"), b"hello ").unwrap();
        s.append(&p("/db/a.log"), b"world").unwrap();
        assert_eq!(s.read(&p("/db/a.log")).unwrap(), b"hello world");
        assert_eq!(s.len(&p("/db/a.log")), 11);
        assert_eq!(s.units_written(), 11);
    }

    #[test]
    fn kill_mid_append_truncates_and_goes_dead() {
        let s = FaultyStorage::new();
        s.kill_at(4);
        assert!(s.append(&p("/db/a.log"), b"abcdefgh").is_err());
        assert!(s.is_dead());
        // Exactly 4 bytes survived; everything later fails.
        let survivor = s.surviving();
        assert_eq!(survivor.read(&p("/db/a.log")).unwrap(), b"abcd");
        assert!(s.append(&p("/db/a.log"), b"x").is_err());
        assert!(s.read(&p("/db/a.log")).is_err());
    }

    #[test]
    fn sector_tear_rounds_down() {
        let s = FaultyStorage::new();
        s.tear_to_sectors(true);
        s.kill_at(700);
        assert!(s.append(&p("/db/a.log"), &[7u8; 1024]).is_err());
        // 700 bytes admitted, torn down to the 512-byte boundary.
        assert_eq!(s.surviving().len(&p("/db/a.log")), 512);
    }

    #[test]
    fn atomic_write_is_all_or_nothing() {
        // Crash during the temp-file write: target untouched.
        let s = FaultyStorage::new();
        s.append(&p("/db/c.jsonl"), b"old").unwrap();
        s.kill_at(s.units_written() + 2);
        assert!(s.atomic_write(&p("/db/c.jsonl"), b"new-content").is_err());
        let after = s.surviving();
        assert_eq!(after.read(&p("/db/c.jsonl")).unwrap(), b"old");
        assert!(after.exists(&p("/db/c.jsonl.tmp")), "partial tmp remains");

        // Crash exactly before the rename unit: target still untouched.
        let s = FaultyStorage::new();
        s.append(&p("/db/c.jsonl"), b"old").unwrap();
        s.kill_at(s.units_written() + 11); // the full payload, not the rename
        assert!(s.atomic_write(&p("/db/c.jsonl"), b"new-content").is_err());
        assert_eq!(s.surviving().read(&p("/db/c.jsonl")).unwrap(), b"old");

        // Enough budget: the rename lands and the tmp file is gone.
        let s = FaultyStorage::new();
        s.append(&p("/db/c.jsonl"), b"old").unwrap();
        s.atomic_write(&p("/db/c.jsonl"), b"new-content").unwrap();
        assert_eq!(s.read(&p("/db/c.jsonl")).unwrap(), b"new-content");
        assert!(!s.exists(&p("/db/c.jsonl.tmp")));
    }

    #[test]
    fn transient_errors_recover() {
        let s = FaultyStorage::new();
        s.inject_transient_errors(2);
        assert!(s.append(&p("/db/a.log"), b"x").is_err());
        assert!(s.append(&p("/db/a.log"), b"x").is_err());
        s.append(&p("/db/a.log"), b"x").unwrap();
        assert_eq!(s.len(&p("/db/a.log")), 1, "failed attempts wrote nothing");
        assert!(!s.is_dead());
    }

    #[test]
    fn list_scopes_to_directory() {
        let s = FaultyStorage::new();
        s.append(&p("/db/a.jsonl"), b"x").unwrap();
        s.append(&p("/db/b.jsonl"), b"x").unwrap();
        s.append(&p("/other/c.jsonl"), b"x").unwrap();
        let got = s.list(&p("/db")).unwrap();
        assert_eq!(got, vec![p("/db/a.jsonl"), p("/db/b.jsonl")]);
    }

    #[test]
    fn disk_storage_atomic_write_and_append() {
        let dir = std::env::temp_dir().join(format!("pathdb-storage-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let s = DiskStorage;
        s.create_dir_all(&dir).unwrap();
        let f = dir.join("w.log");
        s.append(&f, b"one").unwrap();
        s.append(&f, b"two").unwrap();
        assert_eq!(s.read(&f).unwrap(), b"onetwo");
        s.truncate(&f, 3).unwrap();
        assert_eq!(s.read(&f).unwrap(), b"one");
        s.atomic_write(&f, b"fresh").unwrap();
        assert_eq!(s.read(&f).unwrap(), b"fresh");
        assert!(!is_tmp(&f));
        assert!(is_tmp(&tmp_path(&f)));
        assert_eq!(s.list(&dir).unwrap(), vec![f.clone()]);
        s.remove(&f).unwrap();
        assert!(!s.exists(&f));
        fs::remove_dir_all(&dir).unwrap();
    }
}
