//! Document update operators (`$set`, `$unset`, `$inc`, `$push`, ...).

use crate::document::Document;
use crate::value::Value;

/// One mutation applied to a matching document.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Set a (dotted) field.
    Set(String, Value),
    /// Remove a (dotted) field.
    Unset(String),
    /// Numerically increment a field; missing fields start at 0.
    /// Integer fields incremented by integers stay integers.
    Inc(String, f64),
    /// Append to an array field; missing fields become 1-element arrays;
    /// non-array fields are replaced.
    Push(String, Value),
    /// Set only if the field is currently absent.
    SetOnInsert(String, Value),
}

/// An ordered list of update operators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Update {
    ops: Vec<UpdateOp>,
}

impl Update {
    pub fn new() -> Update {
        Update::default()
    }

    pub fn set<K: Into<String>, V: Into<Value>>(mut self, k: K, v: V) -> Update {
        self.ops.push(UpdateOp::Set(k.into(), v.into()));
        self
    }

    pub fn unset<K: Into<String>>(mut self, k: K) -> Update {
        self.ops.push(UpdateOp::Unset(k.into()));
        self
    }

    pub fn inc<K: Into<String>>(mut self, k: K, by: f64) -> Update {
        self.ops.push(UpdateOp::Inc(k.into(), by));
        self
    }

    pub fn push<K: Into<String>, V: Into<Value>>(mut self, k: K, v: V) -> Update {
        self.ops.push(UpdateOp::Push(k.into(), v.into()));
        self
    }

    pub fn set_on_insert<K: Into<String>, V: Into<Value>>(mut self, k: K, v: V) -> Update {
        self.ops.push(UpdateOp::SetOnInsert(k.into(), v.into()));
        self
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Apply all operators to `doc` in order. The `_id` field is
    /// immutable: operators addressing it are ignored.
    pub fn apply(&self, doc: &mut Document) {
        for op in &self.ops {
            match op {
                UpdateOp::Set(k, v) => {
                    if k != "_id" {
                        doc.set_path(k, v.clone());
                    }
                }
                UpdateOp::Unset(k) => {
                    if k != "_id" {
                        doc.remove_path(k);
                    }
                }
                UpdateOp::Inc(k, by) => {
                    if k == "_id" {
                        continue;
                    }
                    let next = match doc.get_path(k) {
                        Some(Value::Int(i)) if by.fract() == 0.0 => Value::Int(i + *by as i64),
                        Some(v) => match v.as_number() {
                            Some(f) => Value::Float(f + by),
                            None => continue, // non-numeric: no-op
                        },
                        None => {
                            if by.fract() == 0.0 {
                                Value::Int(*by as i64)
                            } else {
                                Value::Float(*by)
                            }
                        }
                    };
                    doc.set_path(k, next);
                }
                UpdateOp::Push(k, v) => {
                    if k == "_id" {
                        continue;
                    }
                    match doc.get_path(k) {
                        Some(Value::Array(arr)) => {
                            let mut arr = arr.clone();
                            arr.push(v.clone());
                            doc.set_path(k, Value::Array(arr));
                        }
                        _ => doc.set_path(k, Value::Array(vec![v.clone()])),
                    }
                }
                UpdateOp::SetOnInsert(k, v) => {
                    if k != "_id" && doc.get_path(k).is_none() {
                        doc.set_path(k, v.clone());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn set_and_unset() {
        let mut d = doc! { "a" => 1i64 };
        Update::new().set("b", 2i64).unset("a").apply(&mut d);
        assert_eq!(d.get("a"), None);
        assert_eq!(d.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn id_is_immutable() {
        let mut d = doc! { "_id" => "x", "a" => 1i64 };
        Update::new()
            .set("_id", "y")
            .unset("_id")
            .inc("_id", 1.0)
            .push("_id", 1i64)
            .apply(&mut d);
        assert_eq!(d.id(), Some("x"));
    }

    #[test]
    fn inc_integer_stays_integer() {
        let mut d = doc! { "n" => 5i64 };
        Update::new().inc("n", 2.0).apply(&mut d);
        assert_eq!(d.get("n"), Some(&Value::Int(7)));
    }

    #[test]
    fn inc_float_and_missing() {
        let mut d = doc! { "f" => 1.5f64 };
        Update::new()
            .inc("f", 0.5)
            .inc("new", 3.0)
            .inc("newf", 0.25)
            .apply(&mut d);
        assert_eq!(d.get("f"), Some(&Value::Float(2.0)));
        assert_eq!(d.get("new"), Some(&Value::Int(3)));
        assert_eq!(d.get("newf"), Some(&Value::Float(0.25)));
    }

    #[test]
    fn inc_non_numeric_is_noop() {
        let mut d = doc! { "s" => "text" };
        Update::new().inc("s", 1.0).apply(&mut d);
        assert_eq!(d.get("s").unwrap().as_str(), Some("text"));
    }

    #[test]
    fn push_semantics() {
        let mut d = doc! { "a" => vec![1i64], "scalar" => 9i64 };
        Update::new()
            .push("a", 2i64)
            .push("missing", 1i64)
            .push("scalar", 1i64)
            .apply(&mut d);
        assert_eq!(
            d.get("a"),
            Some(&Value::Array(vec![1i64.into(), 2i64.into()]))
        );
        assert_eq!(d.get("missing"), Some(&Value::Array(vec![1i64.into()])));
        assert_eq!(d.get("scalar"), Some(&Value::Array(vec![1i64.into()])));
    }

    #[test]
    fn set_on_insert_only_fills_gaps() {
        let mut d = doc! { "a" => 1i64 };
        Update::new()
            .set_on_insert("a", 99i64)
            .set_on_insert("b", 2i64)
            .apply(&mut d);
        assert_eq!(d.get("a"), Some(&Value::Int(1)));
        assert_eq!(d.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn dotted_updates() {
        let mut d = Document::new();
        Update::new()
            .set("s.latency.avg", 20.0)
            .inc("s.count", 1.0)
            .apply(&mut d);
        assert_eq!(d.get_path("s.latency.avg"), Some(&Value::Float(20.0)));
        assert_eq!(d.get_path("s.count"), Some(&Value::Int(1)));
    }
}
