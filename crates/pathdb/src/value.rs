//! The dynamic value model: what a document field can hold.
//!
//! Mirrors the subset of BSON the paper's schema uses: null, booleans,
//! integers, floats, strings, arrays and nested documents. Values
//! convert losslessly to and from `serde_json::Value` for persistence.

use crate::document::Document;
use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Doc(Document),
}

impl Value {
    /// Numeric view (ints widen to float) for cross-type comparison.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        self.as_number()
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_doc(&self) -> Option<&Document> {
        match self {
            Value::Doc(d) => Some(d),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Query-ordering comparison. Numbers compare across Int/Float;
    /// values of different (non-numeric) types are unordered, which
    /// makes range filters on mismatched types evaluate to false —
    /// Mongo-like behaviour for the operators we support.
    pub fn query_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.query_cmp(y) {
                        Some(Ordering::Equal) => continue,
                        other => return other,
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            // Nested documents support equality only (no ordering).
            (Value::Doc(a), Value::Doc(b)) => {
                if a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.query_eq(vb))
                {
                    Some(Ordering::Equal)
                } else {
                    None
                }
            }
            _ => match (self.as_number(), other.as_number()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => None,
            },
        }
    }

    /// Equality under query semantics (numeric widening).
    pub fn query_eq(&self, other: &Value) -> bool {
        self.query_cmp(other) == Some(Ordering::Equal)
    }

    /// A canonical string key for indexing (total across types).
    pub fn index_key(&self) -> String {
        match self {
            Value::Null => "n:".to_string(),
            Value::Bool(b) => format!("b:{b}"),
            Value::Int(i) => format!("f:{:.6}", *i as f64),
            Value::Float(f) => format!("f:{f:.6}"),
            Value::Str(s) => format!("s:{s}"),
            Value::Array(a) => {
                let mut k = "a:".to_string();
                for v in a {
                    k.push_str(&v.index_key());
                    k.push('\u{1f}');
                }
                k
            }
            Value::Doc(d) => format!("d:{d}"),
        }
    }

    /// Convert to a `serde_json::Value` for persistence.
    pub fn to_json(&self) -> serde_json::Value {
        match self {
            Value::Null => serde_json::Value::Null,
            Value::Bool(b) => serde_json::Value::Bool(*b),
            Value::Int(i) => serde_json::Value::from(*i),
            Value::Float(f) => serde_json::Number::from_f64(*f)
                .map(serde_json::Value::Number)
                .unwrap_or(serde_json::Value::Null),
            Value::Str(s) => serde_json::Value::String(s.clone()),
            Value::Array(a) => serde_json::Value::Array(a.iter().map(Value::to_json).collect()),
            Value::Doc(d) => serde_json::Value::Object(
                d.iter()
                    .map(|(k, v)| (k.to_string(), v.to_json()))
                    .collect(),
            ),
        }
    }

    /// Convert back from persisted JSON.
    pub fn from_json(v: &serde_json::Value) -> Value {
        match v {
            serde_json::Value::Null => Value::Null,
            serde_json::Value::Bool(b) => Value::Bool(*b),
            serde_json::Value::Number(n) => {
                if let Some(i) = n.as_i64() {
                    Value::Int(i)
                } else {
                    Value::Float(n.as_f64().unwrap_or(f64::NAN))
                }
            }
            serde_json::Value::String(s) => Value::Str(s.clone()),
            serde_json::Value::Array(a) => Value::Array(a.iter().map(Value::from_json).collect()),
            serde_json::Value::Object(o) => {
                let mut d = Document::new();
                for (k, v) in o {
                    d.set(k, Value::from_json(v));
                }
                Value::Doc(d)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u16> for Value {
    fn from(i: u16) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Document> for Value {
    fn from(d: Document) -> Self {
        Value::Doc(d)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_widening_equality() {
        assert!(Value::Int(3).query_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).query_eq(&Value::Float(3.5)));
        assert!(!Value::Int(3).query_eq(&Value::Str("3".into())));
    }

    #[test]
    fn cross_type_comparison_is_unordered() {
        assert_eq!(Value::Str("a".into()).query_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::Bool(true).query_cmp(&Value::Str("true".into())),
            None
        );
    }

    #[test]
    fn array_comparison_is_lexicographic() {
        let a: Value = vec![1i64, 2].into();
        let b: Value = vec![1i64, 3].into();
        let c: Value = vec![1i64, 2, 0].into();
        assert_eq!(a.query_cmp(&b), Some(Ordering::Less));
        assert_eq!(a.query_cmp(&c), Some(Ordering::Less));
        assert_eq!(a.query_cmp(&a), Some(Ordering::Equal));
    }

    #[test]
    fn json_roundtrip_preserves_values() {
        let mut d = Document::new();
        d.set("s", "hello");
        d.set("i", 42i64);
        d.set("f", 2.5f64);
        d.set("b", true);
        d.set("n", Value::Null);
        d.set("a", vec![1i64, 2, 3]);
        let v = Value::Doc(d);
        let back = Value::from_json(&v.to_json());
        assert_eq!(v, back);
    }

    #[test]
    fn index_key_distinguishes_types_but_not_int_float() {
        assert_eq!(Value::Int(3).index_key(), Value::Float(3.0).index_key());
        assert_ne!(
            Value::Int(3).index_key(),
            Value::Str("3".into()).index_key()
        );
        assert_ne!(Value::Null.index_key(), Value::Str("".into()).index_key());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_number(), Some(3.0));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Float(1.5).as_int(), None);
    }
}
