//! The dynamic value model: what a document field can hold.
//!
//! Mirrors the subset of BSON the paper's schema uses: null, booleans,
//! integers, floats, strings, arrays and nested documents. Values
//! convert losslessly to and from `serde_json::Value` for persistence.

use crate::document::Document;
use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Doc(Document),
}

impl Value {
    /// Numeric view (ints widen to float) for cross-type comparison.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        self.as_number()
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_doc(&self) -> Option<&Document> {
        match self {
            Value::Doc(d) => Some(d),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Query-ordering comparison. Numbers compare across Int/Float
    /// (exactly — no precision loss for i64 beyond 2^53); values of
    /// different (non-numeric) types are unordered, which makes range
    /// filters on mismatched types evaluate to false — Mongo-like
    /// behaviour for the operators we support.
    pub fn query_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.query_cmp(y) {
                        Some(Ordering::Equal) => continue,
                        other => return other,
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            // Nested documents support equality only (no ordering).
            (Value::Doc(a), Value::Doc(b)) => {
                if a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.query_eq(vb))
                {
                    Some(Ordering::Equal)
                } else {
                    None
                }
            }
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Float(b)) => cmp_i64_f64(*a, *b),
            (Value::Float(a), Value::Int(b)) => cmp_i64_f64(*b, *a).map(Ordering::reverse),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            _ => None,
        }
    }

    /// Equality under query semantics (numeric widening).
    pub fn query_eq(&self, other: &Value) -> bool {
        self.query_cmp(other) == Some(Ordering::Equal)
    }

    /// Total order used for sorting query results (`FindOptions::sort`)
    /// and for the ordered secondary indexes. Extends [`Value::query_cmp`]
    /// to a total order:
    ///
    /// * values of different types order by type rank
    ///   (null < bool < number < string < array < document) — the same
    ///   rank order the [`Value::index_key`] class prefixes encode, so a
    ///   key-ordered index scan yields documents in `sort_cmp` order;
    /// * NaN compares equal to NaN and greater than every other number;
    /// * documents compare field-by-field (name, then value), then by
    ///   length.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Int(a), Value::Float(b)) => cmp_int_float_total(*a, *b),
            (Value::Float(a), Value::Int(b)) => cmp_int_float_total(*b, *a).reverse(),
            (Value::Float(a), Value::Float(b)) => match a.partial_cmp(b) {
                Some(o) => o,
                // At least one NaN: NaN == NaN, NaN > everything else.
                None => match (a.is_nan(), b.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    _ => Ordering::Less,
                },
            },
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.sort_cmp(y) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Doc(a), Value::Doc(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    match ka.cmp(kb).then_with(|| va.sort_cmp(vb)) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => type_rank(self).cmp(&type_rank(other)),
        }
    }

    /// A canonical string key for indexing: total across types and
    /// **order-preserving** — lexicographic order of keys equals
    /// [`Value::sort_cmp`] order for scalar values, which lets the
    /// ordered secondary indexes serve range scans and sorted reads.
    ///
    /// Numbers use a sign-flipped IEEE-754 bit pattern plus an exact
    /// integer residual, so `Int(i)` and `Float(f)` share a key exactly
    /// when they are query-equal, floats differing in any bit get
    /// distinct keys, and i64 values beyond 2^53 do not collapse.
    pub fn index_key(&self) -> String {
        let mut k = String::new();
        self.write_index_key(&mut k);
        k
    }

    fn write_index_key(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Value::Null => out.push_str("0:"),
            Value::Bool(b) => out.push_str(if *b { "1:1" } else { "1:0" }),
            Value::Int(_) | Value::Float(_) => {
                let (bits, residual) = num_key_parts(self);
                let _ = write!(out, "2:{bits:016x}{residual:04x}");
            }
            Value::Str(s) => {
                out.push_str("3:");
                out.push_str(s);
            }
            // Arrays and documents need injectivity, not order: each
            // component key is length-prefixed so distinct structures
            // can never collide.
            Value::Array(a) => {
                let _ = write!(out, "4:{}#", a.len());
                for v in a {
                    let k = v.index_key();
                    let _ = write!(out, "{}:{}", k.len(), k);
                }
            }
            Value::Doc(d) => {
                let _ = write!(out, "5:{}#", d.len());
                for (name, v) in d.iter() {
                    let k = v.index_key();
                    let _ = write!(out, "{}:{}{}:{}", name.len(), name, k.len(), k);
                }
            }
        }
    }

    /// Render compact JSON straight into `out`, byte-identical to
    /// `self.to_json().to_string()` but without building the
    /// intermediate `serde_json::Value` tree — the WAL encodes every
    /// committed batch through here, so the write path must not pay
    /// for a full deep copy per document.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => push_i64(out, *i),
            Value::Float(f) => {
                let f = *f;
                if !f.is_finite() {
                    // Non-finite floats have no JSON form; `to_json`
                    // maps them to null via `Number::from_f64`.
                    out.push_str("null");
                } else if f == f.trunc() && f.abs() < 1e15 && (f != 0.0 || f.is_sign_positive()) {
                    // `{:?}` keeps the `.0` on integral floats so the
                    // int/float distinction survives a round trip; for
                    // integral values in the positional-notation range
                    // that is exactly "<digits>.0", which skips the
                    // shortest-round-trip float machinery. Measurement
                    // timestamps and counters are all integral, so
                    // this is most floats the WAL ever renders.
                    push_i64(out, f as i64);
                    out.push_str(".0");
                } else {
                    let _ = write!(out, "{f:?}");
                }
            }
            Value::Str(s) => write_json_str(out, s),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Doc(d) => write_json_doc(out, d),
        }
    }

    /// Convert to a `serde_json::Value` for persistence.
    pub fn to_json(&self) -> serde_json::Value {
        match self {
            Value::Null => serde_json::Value::Null,
            Value::Bool(b) => serde_json::Value::Bool(*b),
            Value::Int(i) => serde_json::Value::from(*i),
            Value::Float(f) => serde_json::Number::from_f64(*f)
                .map(serde_json::Value::Number)
                .unwrap_or(serde_json::Value::Null),
            Value::Str(s) => serde_json::Value::String(s.clone()),
            Value::Array(a) => serde_json::Value::Array(a.iter().map(Value::to_json).collect()),
            Value::Doc(d) => serde_json::Value::Object(
                d.iter()
                    .map(|(k, v)| (k.to_string(), v.to_json()))
                    .collect(),
            ),
        }
    }

    /// Convert back from persisted JSON.
    pub fn from_json(v: &serde_json::Value) -> Value {
        match v {
            serde_json::Value::Null => Value::Null,
            serde_json::Value::Bool(b) => Value::Bool(*b),
            serde_json::Value::Number(n) => {
                if let Some(i) = n.as_i64() {
                    Value::Int(i)
                } else {
                    Value::Float(n.as_f64().unwrap_or(f64::NAN))
                }
            }
            serde_json::Value::String(s) => Value::Str(s.clone()),
            serde_json::Value::Array(a) => Value::Array(a.iter().map(Value::from_json).collect()),
            serde_json::Value::Object(o) => {
                let mut d = Document::new();
                for (k, v) in o {
                    d.set(k, Value::from_json(v));
                }
                Value::Doc(d)
            }
        }
    }
}

/// Render a document as a compact JSON object without cloning it into
/// a `Value` first — the borrowed counterpart of
/// `Value::Doc(d.clone()).to_json().to_string()`.
pub fn write_json_doc(out: &mut String, d: &Document) {
    if d.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in d.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_str(out, k);
        out.push(':');
        v.write_json(out);
    }
    out.push('}');
}

/// Decimal rendering without the `fmt::Formatter` machinery — the WAL
/// renders tens of thousands of integers per committed campaign batch.
fn push_i64(out: &mut String, v: i64) {
    let mut buf = [0u8; 20];
    let mut n = v.unsigned_abs();
    let mut pos = buf.len();
    loop {
        pos -= 1;
        buf[pos] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    if v < 0 {
        pos -= 1;
        buf[pos] = b'-';
    }
    // The buffer holds only ASCII digits and '-'.
    out.push_str(std::str::from_utf8(&buf[pos..]).unwrap());
}

/// JSON string escaping, mirroring the vendored serde renderer: the
/// two structural characters, the common control escapes, and `\uXXXX`
/// for the rest of C0.
pub(crate) fn write_json_str(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    // Copy maximal clean runs wholesale; every byte that needs an
    // escape is ASCII, so byte-wise scanning never splits a UTF-8
    // scalar. Most strings contain no escapes and take one push_str.
    let mut start = 0;
    for (i, b) in s.bytes().enumerate() {
        let esc: &str = match b {
            b'"' => "\\\"",
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\r' => "\\r",
            b'\t' => "\\t",
            b if b < 0x20 => {
                out.push_str(&s[start..i]);
                let _ = write!(out, "\\u{:04x}", b);
                start = i + 1;
                continue;
            }
            _ => continue,
        };
        out.push_str(&s[start..i]);
        out.push_str(esc);
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// Exact comparison of an i64 against an f64, without widening the int
/// to f64 (which loses precision above 2^53). `None` iff `f` is NaN.
pub fn cmp_i64_f64(i: i64, f: f64) -> Option<Ordering> {
    if f.is_nan() {
        return None;
    }
    // All i64 values are < 2^63; any float at or beyond that bound
    // (including infinities) straddles the whole i64 range.
    const TWO63: f64 = 9_223_372_036_854_775_808.0; // 2^63, exact
    if f >= TWO63 {
        return Some(Ordering::Less);
    }
    if f < -TWO63 {
        return Some(Ordering::Greater);
    }
    // |f| < 2^63 (or f == -2^63): trunc() fits in i64 exactly.
    let t = f.trunc();
    let ti = t as i64;
    Some(i.cmp(&ti).then_with(|| {
        // Same integer part: the fractional remainder breaks the tie.
        if f > t {
            Ordering::Less
        } else if f < t {
            Ordering::Greater
        } else {
            Ordering::Equal
        }
    }))
}

/// Total Int-vs-Float comparison: exact where ordered, NaN greatest.
fn cmp_int_float_total(i: i64, f: f64) -> Ordering {
    cmp_i64_f64(i, f).unwrap_or(Ordering::Less)
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 2,
        Value::Str(_) => 3,
        Value::Array(_) => 4,
        Value::Doc(_) => 5,
    }
}

/// Map an f64 to a u64 whose unsigned order equals the float's numeric
/// order: flip all bits for negatives, set the sign bit for positives.
fn f64_order_bits(f: f64) -> u64 {
    let b = f.to_bits();
    if b & (1 << 63) != 0 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Decompose a numeric value into its index-key parts: the order bits
/// of the value rounded to f64, plus a biased residual carrying the
/// exact integer remainder that rounding dropped.
///
/// Round-to-nearest is monotone, so ordering by `(rounded, residual)`
/// equals exact numeric ordering; ints representable as f64 get
/// residual 0 and therefore share the equal float's key. The residual
/// of an i64 is bounded by half the f64 ulp at 2^63 (= 512 < 2^15), so
/// it always fits the 16-bit bias.
fn num_key_parts(v: &Value) -> (u64, u16) {
    const BIAS: i128 = 0x8000;
    match v {
        Value::Int(i) => {
            let d = *i as f64; // round to nearest
            let residual = *i as i128 - d as i128;
            (f64_order_bits(d), (residual + BIAS) as u16)
        }
        Value::Float(f) => {
            let f = if f.is_nan() {
                f64::NAN // canonical NaN bit pattern
            } else if *f == 0.0 {
                0.0 // normalize -0.0
            } else {
                *f
            };
            (f64_order_bits(f), BIAS as u16)
        }
        _ => unreachable!("num_key_parts on non-numeric value"),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_json(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u16> for Value {
    fn from(i: u16) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Document> for Value {
    fn from(d: Document) -> Self {
        Value::Doc(d)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_widening_equality() {
        assert!(Value::Int(3).query_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).query_eq(&Value::Float(3.5)));
        assert!(!Value::Int(3).query_eq(&Value::Str("3".into())));
    }

    #[test]
    fn cross_type_comparison_is_unordered() {
        assert_eq!(Value::Str("a".into()).query_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::Bool(true).query_cmp(&Value::Str("true".into())),
            None
        );
    }

    #[test]
    fn array_comparison_is_lexicographic() {
        let a: Value = vec![1i64, 2].into();
        let b: Value = vec![1i64, 3].into();
        let c: Value = vec![1i64, 2, 0].into();
        assert_eq!(a.query_cmp(&b), Some(Ordering::Less));
        assert_eq!(a.query_cmp(&c), Some(Ordering::Less));
        assert_eq!(a.query_cmp(&a), Some(Ordering::Equal));
    }

    #[test]
    fn json_roundtrip_preserves_values() {
        let mut d = Document::new();
        d.set("s", "hello");
        d.set("i", 42i64);
        d.set("f", 2.5f64);
        d.set("b", true);
        d.set("n", Value::Null);
        d.set("a", vec![1i64, 2, 3]);
        let v = Value::Doc(d);
        let back = Value::from_json(&v.to_json());
        assert_eq!(v, back);
    }

    #[test]
    fn write_json_matches_the_tree_renderer() {
        // The direct renderer must stay byte-identical to the
        // tree-building path — the WAL and the snapshot format both
        // feed the same parser.
        let mut inner = Document::new();
        inner.set("q\"uote", "line\nbreak\ttab\\slash");
        inner.set("ctl", Value::Str("\u{1}\u{1f}".into()));
        let mut d = Document::new();
        d.set("i", 42i64);
        d.set("neg", -7i64);
        d.set("f", 2.5f64);
        d.set("whole", 3.0f64);
        d.set("neg_whole", -2424.0f64);
        d.set("neg_zero", -0.0f64);
        d.set("big_whole", 999_999_999_999_999.0f64);
        d.set("past_fast_path", 1e15f64);
        d.set("exp_form", 1e16f64);
        d.set("tiny", 1e-7f64);
        d.set("imin", i64::MIN);
        d.set("imax", i64::MAX);
        d.set("nan", f64::NAN);
        d.set("inf", f64::INFINITY);
        d.set("b", false);
        d.set("n", Value::Null);
        d.set("s", "héllo ✓");
        d.set(
            "a",
            Value::Array(vec![Value::Int(1), Value::Doc(inner.clone())]),
        );
        d.set("o", inner.clone());
        d.set("empty", Document::new());
        d.set("empty_a", Value::Array(vec![]));
        let v = Value::Doc(d);
        let mut direct = String::new();
        v.write_json(&mut direct);
        assert_eq!(direct, v.to_json().to_string());
        let mut doc_direct = String::new();
        write_json_doc(&mut doc_direct, &inner);
        assert_eq!(doc_direct, Value::Doc(inner).to_json().to_string());
    }

    #[test]
    fn index_key_distinguishes_types_but_not_int_float() {
        assert_eq!(Value::Int(3).index_key(), Value::Float(3.0).index_key());
        assert_ne!(
            Value::Int(3).index_key(),
            Value::Str("3".into()).index_key()
        );
        assert_ne!(Value::Null.index_key(), Value::Str("".into()).index_key());
    }

    #[test]
    fn index_key_is_order_preserving_for_scalars() {
        // Ascending under sort_cmp; keys must ascend lexicographically.
        let seq = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Float(f64::NEG_INFINITY),
            Value::Int(i64::MIN),
            Value::Float(-1.5),
            Value::Int(-1),
            Value::Int(0),
            Value::Float(1e-9),
            Value::Float(2e-9),
            Value::Int(1),
            Value::Float(1.0000001),
            Value::Int(2),
            Value::Int((1i64 << 53) + 1),
            Value::Int(i64::MAX - 1),
            Value::Int(i64::MAX),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NAN),
            Value::Str("".into()),
            Value::Str("a".into()),
        ];
        for w in seq.windows(2) {
            assert!(
                w[0].index_key() < w[1].index_key(),
                "expected key({}) < key({}), got {:?} vs {:?}",
                w[0],
                w[1],
                w[0].index_key(),
                w[1].index_key()
            );
            assert_eq!(w[0].sort_cmp(&w[1]), Ordering::Less);
        }
    }

    #[test]
    fn index_key_does_not_collapse_near_floats_or_big_ints() {
        assert_ne!(
            Value::Float(1e-9).index_key(),
            Value::Float(2e-9).index_key()
        );
        assert_ne!(
            Value::Int(1i64 << 53).index_key(),
            Value::Int((1i64 << 53) + 1).index_key()
        );
        assert_eq!(
            Value::Float(-0.0).index_key(),
            Value::Float(0.0).index_key()
        );
    }

    #[test]
    fn exact_int_float_comparison() {
        // 2^53 and 2^53 + 1 collapse under f64 widening; stay distinct.
        let big = (1i64 << 53) + 1;
        assert_eq!(
            Value::Int(big).query_cmp(&Value::Int(1i64 << 53)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int(big).query_cmp(&Value::Float((1i64 << 53) as f64)),
            Some(Ordering::Greater)
        );
        assert_eq!(cmp_i64_f64(3, 3.5), Some(Ordering::Less));
        assert_eq!(cmp_i64_f64(-3, -3.5), Some(Ordering::Greater));
        assert_eq!(cmp_i64_f64(i64::MAX, f64::INFINITY), Some(Ordering::Less));
        assert_eq!(
            cmp_i64_f64(i64::MIN, f64::NEG_INFINITY),
            Some(Ordering::Greater)
        );
        assert_eq!(cmp_i64_f64(0, f64::NAN), None);
    }

    #[test]
    fn sort_cmp_is_total_and_ranks_types() {
        assert_eq!(Value::Null.sort_cmp(&Value::Bool(false)), Ordering::Less);
        assert_eq!(
            Value::Int(9).sort_cmp(&Value::Str("0".into())),
            Ordering::Less
        );
        assert_eq!(
            Value::Float(f64::NAN).sort_cmp(&Value::Float(f64::NAN)),
            Ordering::Equal
        );
        assert_eq!(
            Value::Float(f64::NAN).sort_cmp(&Value::Float(f64::INFINITY)),
            Ordering::Greater
        );
        assert_eq!(Value::Int(3).sort_cmp(&Value::Float(3.0)), Ordering::Equal);
    }

    #[test]
    fn composite_keys_are_injective() {
        // Length prefixes keep distinct structures from colliding.
        let a: Value = vec![Value::Str("ab".into()), Value::Str("c".into())].into();
        let b: Value = vec![Value::Str("a".into()), Value::Str("bc".into())].into();
        assert_ne!(a.index_key(), b.index_key());
        let one: Value = vec![1i64].into();
        let nested: Value = vec![Value::Array(vec![1i64.into()])].into();
        assert_ne!(one.index_key(), nested.index_key());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_number(), Some(3.0));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Float(1.5).as_int(), None);
    }
}
