//! Write-ahead log: CRC32-framed, length-prefixed operation records
//! appended in atomic commit groups.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [len: u32] [crc32(payload): u32] [payload: len bytes of JSON]
//! ```
//!
//! A *commit group* is N operation frames followed by one commit frame
//! carrying the expected count. The whole group is appended (and
//! fsync'd) as one write, so one `insert_many` batch reaches the disk
//! all-or-nothing — the paper's §4.2.2 loss bound ("at most one sample
//! per path of one destination") holds across crashes, not just across
//! clean exits.
//!
//! Records carry *effects*, not logical operations: updates log their
//! post-image documents and deletes log `_id` values. Replay is
//! therefore an idempotent upsert/delete, which is what makes the
//! snapshot/truncation protocol safe — a crash between "snapshot
//! landed" and "old log deleted" merely replays effects the snapshot
//! already contains.
//!
//! The reader stops at the first frame that is short, corrupt, or
//! unparsable; everything before the last *committed* group is the
//! intact prefix and the tail is truncated, not reported as an error.

use crate::document::Document;
use crate::error::{DbError, DbResult};
use crate::storage::Storage;
use crate::value::{write_json_doc, write_json_str, Value};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Sanity cap on one frame's payload: a frame claiming more than this
/// is treated as a torn length prefix, not an allocation request.
const MAX_FRAME: u32 = 64 << 20;

/// Attempts per group append before the log declares durability lost.
const APPEND_ATTEMPTS: u32 = 3;

// ---- CRC32 (IEEE, the zlib polynomial) ------------------------------------

/// Slicing-by-8 lookup tables: `TABLES[k][b]` is the CRC of byte `b`
/// followed by `k` zero bytes, which lets the hot loop fold 8 input
/// bytes per iteration instead of 1 — the checksum runs over every
/// committed batch, so it sits on the write path's critical section.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

const CRC_TABLES: [[u32; 256]; 8] = crc32_tables();

/// CRC32 checksum over `data` (IEEE polynomial, as in zlib/PNG).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- operations -----------------------------------------------------------

/// One logged effect. `InsertMany`/`Update` carry post-image documents;
/// `Delete` carries `_id` values; replay applies them idempotently.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    Insert { coll: String, doc: Document },
    InsertMany { coll: String, docs: Vec<Document> },
    Update { coll: String, docs: Vec<Document> },
    Delete { coll: String, ids: Vec<Value> },
    Drop { coll: String },
}

impl WalOp {
    /// The collection this op targets.
    pub fn coll(&self) -> &str {
        match self {
            WalOp::Insert { coll, .. }
            | WalOp::InsertMany { coll, .. }
            | WalOp::Update { coll, .. }
            | WalOp::Delete { coll, .. }
            | WalOp::Drop { coll } => coll,
        }
    }

    /// How many documents/ids the op carries (for recovery reporting).
    pub fn effect_count(&self) -> usize {
        match self {
            WalOp::Insert { .. } | WalOp::Drop { .. } => 1,
            WalOp::InsertMany { docs, .. } | WalOp::Update { docs, .. } => docs.len(),
            WalOp::Delete { ids, .. } => ids.len(),
        }
    }

    /// Borrow this op for encoding.
    fn to_ref(&self) -> WalOpRef<'_> {
        match self {
            WalOp::Insert { coll, doc } => WalOpRef::Insert { coll, doc },
            WalOp::InsertMany { coll, docs } => WalOpRef::InsertMany {
                coll,
                docs: docs.iter().collect(),
            },
            WalOp::Update { coll, docs } => WalOpRef::Update { coll, docs },
            WalOp::Delete { coll, ids } => WalOpRef::Delete { coll, ids },
            WalOp::Drop { coll } => WalOpRef::Drop { coll },
        }
    }

    /// Reference rendering for the encoder tests: the tree-building
    /// counterpart of [`WalOpRef::write_json`].
    #[cfg(test)]
    fn to_json(&self) -> serde_json::Value {
        let mut m = serde_json::Map::new();
        let (tag, coll) = match self {
            WalOp::Insert { coll, .. } => ("i", coll),
            WalOp::InsertMany { coll, .. } => ("m", coll),
            WalOp::Update { coll, .. } => ("u", coll),
            WalOp::Delete { coll, .. } => ("d", coll),
            WalOp::Drop { coll } => ("x", coll),
        };
        m.insert("t".into(), serde_json::Value::String(tag.into()));
        m.insert("c".into(), serde_json::Value::String(coll.clone()));
        match self {
            WalOp::Insert { doc, .. } => {
                m.insert("d".into(), Value::Doc(doc.clone()).to_json());
            }
            WalOp::InsertMany { docs, .. } | WalOp::Update { docs, .. } => {
                let arr = docs
                    .iter()
                    .map(|d| Value::Doc(d.clone()).to_json())
                    .collect();
                m.insert("d".into(), serde_json::Value::Array(arr));
            }
            WalOp::Delete { ids, .. } => {
                let arr = ids.iter().map(Value::to_json).collect();
                m.insert("d".into(), serde_json::Value::Array(arr));
            }
            WalOp::Drop { .. } => {}
        }
        serde_json::Value::Object(m)
    }

    fn from_json(v: &serde_json::Value) -> Option<WalOp> {
        let tag = v.get("t")?.as_str()?;
        let coll = v.get("c")?.as_str()?.to_string();
        let doc_of = |j: &serde_json::Value| match Value::from_json(j) {
            Value::Doc(d) => Some(d),
            _ => None,
        };
        match tag {
            "i" => Some(WalOp::Insert {
                coll,
                doc: doc_of(v.get("d")?)?,
            }),
            "m" | "u" => {
                let docs = v
                    .get("d")?
                    .as_array()?
                    .iter()
                    .map(doc_of)
                    .collect::<Option<Vec<_>>>()?;
                if tag == "m" {
                    Some(WalOp::InsertMany { coll, docs })
                } else {
                    Some(WalOp::Update { coll, docs })
                }
            }
            "d" => Some(WalOp::Delete {
                coll,
                ids: v
                    .get("d")?
                    .as_array()?
                    .iter()
                    .map(Value::from_json)
                    .collect(),
            }),
            "x" => Some(WalOp::Drop { coll }),
            _ => None,
        }
    }
}

/// Borrowed view of one op for encoding. The hot write path (one WAL
/// commit per `insert_many` batch) renders commit groups straight from
/// the caller's documents, skipping both the owned [`WalOp`] clone and
/// the intermediate `serde_json::Value` tree — this is what keeps the
/// WAL's insertion overhead within the §4.2.2 ablation budget.
pub enum WalOpRef<'a> {
    Insert {
        coll: &'a str,
        doc: &'a Document,
    },
    InsertMany {
        coll: &'a str,
        docs: Vec<&'a Document>,
    },
    Update {
        coll: &'a str,
        docs: &'a [Document],
    },
    Delete {
        coll: &'a str,
        ids: &'a [Value],
    },
    Drop {
        coll: &'a str,
    },
}

impl WalOpRef<'_> {
    /// Render the frame payload, byte-identical to what the owned
    /// tree-building path produced (`{"t":..,"c":..,"d":..}`).
    fn write_json(&self, out: &mut String) {
        let (tag, coll) = match self {
            WalOpRef::Insert { coll, .. } => ("i", *coll),
            WalOpRef::InsertMany { coll, .. } => ("m", *coll),
            WalOpRef::Update { coll, .. } => ("u", *coll),
            WalOpRef::Delete { coll, .. } => ("d", *coll),
            WalOpRef::Drop { coll } => ("x", *coll),
        };
        out.push_str("{\"t\":\"");
        out.push_str(tag);
        out.push_str("\",\"c\":");
        write_json_str(out, coll);
        match self {
            WalOpRef::Insert { doc, .. } => {
                out.push_str(",\"d\":");
                write_json_doc(out, doc);
            }
            WalOpRef::InsertMany { docs, .. } => {
                out.push_str(",\"d\":[");
                for (i, d) in docs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_doc(out, d);
                }
                out.push(']');
            }
            WalOpRef::Update { docs, .. } => {
                out.push_str(",\"d\":[");
                for (i, d) in docs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_doc(out, d);
                }
                out.push(']');
            }
            WalOpRef::Delete { ids, .. } => {
                out.push_str(",\"d\":[");
                for (i, id) in ids.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    id.write_json(out);
                }
                out.push(']');
            }
            WalOpRef::Drop { .. } => {}
        }
        out.push('}');
    }
}

// ---- framing --------------------------------------------------------------

fn push_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Encode one commit group: N op frames + a commit frame `{"t":"C","n":N}`.
pub fn encode_group(ops: &[WalOp]) -> Vec<u8> {
    let refs: Vec<WalOpRef<'_>> = ops.iter().map(WalOp::to_ref).collect();
    encode_group_refs(&refs)
}

/// Borrowed counterpart of [`encode_group`].
pub fn encode_group_refs(ops: &[WalOpRef<'_>]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut payload = String::new();
    for op in ops {
        payload.clear();
        op.write_json(&mut payload);
        push_frame(&mut buf, payload.as_bytes());
    }
    push_frame(
        &mut buf,
        format!("{{\"t\":\"C\",\"n\":{}}}", ops.len()).as_bytes(),
    );
    buf
}

/// Result of scanning one WAL file.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Committed groups in append order.
    pub groups: Vec<Vec<WalOp>>,
    /// Byte offset just past the last committed group — the length to
    /// truncate the file to.
    pub valid_len: u64,
    /// Bytes past `valid_len` (torn frames plus uncommitted groups).
    pub torn_bytes: u64,
    /// Operation frames that parsed but whose commit marker never made
    /// it to disk; they are discarded, not replayed.
    pub dropped_uncommitted_ops: usize,
}

impl WalReplay {
    pub fn op_count(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

/// Scan a WAL byte stream, stopping at the first torn or corrupt frame.
pub fn read_wal(bytes: &[u8]) -> WalReplay {
    let mut replay = WalReplay::default();
    let mut pending: Vec<WalOp> = Vec::new();
    let mut off = 0usize;
    while let Some(header) = bytes.get(off..off + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_FRAME || (len as usize) > bytes.len() - off - 8 {
            break;
        }
        let payload = &bytes[off + 8..off + 8 + len as usize];
        if crc32(payload) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(json) = serde_json::from_str::<serde_json::Value>(text) else {
            break;
        };
        if json.get("t").and_then(|t| t.as_str()) == Some("C") {
            // Commit marker: the group is durable iff the count matches.
            if json.get("n").and_then(|n| n.as_i64()) != Some(pending.len() as i64) {
                break;
            }
            replay.groups.push(std::mem::take(&mut pending));
            replay.valid_len = (off + 8 + len as usize) as u64;
        } else {
            let Some(op) = WalOp::from_json(&json) else {
                break;
            };
            pending.push(op);
        }
        off += 8 + len as usize;
    }
    replay.dropped_uncommitted_ops = pending.len();
    replay.torn_bytes = bytes.len() as u64 - replay.valid_len;
    replay
}

// ---- the log handle -------------------------------------------------------

/// WAL file name for a generation: `wal.<gen>.log`. Generations tie a
/// log to the snapshot it extends — recovery replays every log whose
/// generation is `>=` the manifest's, in ascending order.
pub fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal.{generation}.log"))
}

/// Parse `wal.<gen>.log` back into a generation.
pub fn parse_wal_path(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("wal.")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

#[derive(Debug)]
struct WalState {
    generation: u64,
    /// Set when an append could not be made durable even after retries;
    /// cleared by the next successful checkpoint (which supersedes the
    /// log with a snapshot).
    poisoned: Option<String>,
}

/// The append side of the log, shared by every collection of one
/// database. `commit` serializes groups under an internal mutex, so a
/// group from one writer never interleaves with another's.
pub struct Wal {
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    state: Mutex<WalState>,
}

impl Wal {
    pub fn new(storage: Arc<dyn Storage>, dir: PathBuf, generation: u64) -> Wal {
        Wal {
            storage,
            dir,
            state: Mutex::new(WalState {
                generation,
                poisoned: None,
            }),
        }
    }

    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// `Err` with the first failure once an append has been lost;
    /// `Ok(())` while every committed group is durable.
    pub fn health(&self) -> DbResult<()> {
        match &self.state.lock().poisoned {
            Some(msg) => Err(DbError::Durability(msg.clone())),
            None => Ok(()),
        }
    }

    /// Append one commit group durably. Transient failures are retried
    /// after rolling the file back to its pre-append length (so a torn
    /// first attempt cannot corrupt the frame stream); persistent
    /// failure poisons the log and returns the durability error so the
    /// caller can refuse to acknowledge the write. Data already applied
    /// before a poison (updates/deletes log after applying) stays in
    /// memory and the next successful checkpoint restores durability.
    pub fn commit(&self, ops: &[WalOp]) -> DbResult<()> {
        if ops.is_empty() {
            return Ok(());
        }
        self.commit_encoded(encode_group(ops))
    }

    /// [`Wal::commit`] over borrowed ops — the write path's entry
    /// point, which never clones the documents it logs.
    pub fn commit_ref(&self, ops: &[WalOpRef<'_>]) -> DbResult<()> {
        if ops.is_empty() {
            return Ok(());
        }
        self.commit_encoded(encode_group_refs(ops))
    }

    fn commit_encoded(&self, buf: Vec<u8>) -> DbResult<()> {
        let mut state = self.state.lock();
        if let Some(msg) = &state.poisoned {
            return Err(DbError::Durability(msg.clone()));
        }
        let path = wal_path(&self.dir, state.generation);
        let base_len = self.storage.len(&path);
        let mut last_err = String::new();
        for attempt in 0..APPEND_ATTEMPTS {
            if attempt > 0 {
                // Undo any partial bytes of the failed attempt before
                // re-appending, or the stream would resync mid-frame.
                if self.storage.len(&path) > base_len
                    && self.storage.truncate(&path, base_len).is_err()
                {
                    break;
                }
            }
            match self.storage.append(&path, &buf) {
                Ok(()) => return Ok(()),
                Err(e) => last_err = e.to_string(),
            }
        }
        let msg = format!("wal append failed after {APPEND_ATTEMPTS} attempts: {last_err}");
        state.poisoned = Some(msg.clone());
        Err(DbError::Durability(msg))
    }

    /// Switch to a new generation (a fresh `wal.<gen>.log`) and clear
    /// any poisoning — called by checkpoint after the snapshot landed.
    pub fn rotate(&self, generation: u64) {
        let mut state = self.state.lock();
        state.generation = generation;
        state.poisoned = None;
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("generation", &state.generation)
            .field("poisoned", &state.poisoned)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;
    use crate::storage::FaultyStorage;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_slicing_matches_bytewise_reference() {
        // A length that exercises both the 8-byte folds and a ragged
        // tail, checked against the plain one-byte-at-a-time recurrence.
        let data: Vec<u8> = (0..1027u32)
            .map(|i| (i.wrapping_mul(31) % 251) as u8)
            .collect();
        let mut c = !0u32;
        for &b in &data {
            c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        assert_eq!(crc32(&data), !c);
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Insert {
                coll: "paths".into(),
                doc: doc! { "_id" => "p1", "hops" => 4i64 },
            },
            WalOp::InsertMany {
                coll: "paths_stats".into(),
                docs: vec![
                    doc! { "_id" => "s1", "lat" => 20.5f64 },
                    doc! { "_id" => "s2", "lat" => 21.0f64 },
                ],
            },
            WalOp::Update {
                coll: "paths".into(),
                docs: vec![doc! { "_id" => "p1", "hops" => 5i64 }],
            },
            WalOp::Delete {
                coll: "paths_stats".into(),
                ids: vec![Value::Str("s1".into()), Value::Int(7)],
            },
            WalOp::Drop { coll: "tmp".into() },
        ]
    }

    #[test]
    fn ops_roundtrip_through_json() {
        for op in sample_ops() {
            let json = op.to_json();
            let back = WalOp::from_json(
                &serde_json::from_str::<serde_json::Value>(&json.to_string()).unwrap(),
            );
            assert_eq!(back.as_ref(), Some(&op), "{json}");
        }
    }

    #[test]
    fn ref_encoding_matches_tree_encoding() {
        // The borrowed fast path and the owned tree path must stay
        // byte-identical — they share one on-disk format.
        for op in sample_ops() {
            let mut direct = String::new();
            op.to_ref().write_json(&mut direct);
            assert_eq!(direct, op.to_json().to_string());
        }
    }

    #[test]
    fn groups_roundtrip_through_frames() {
        let ops = sample_ops();
        let mut bytes = encode_group(&ops[..2]);
        bytes.extend(encode_group(&ops[2..]));
        let replay = read_wal(&bytes);
        assert_eq!(replay.groups.len(), 2);
        assert_eq!(replay.groups[0], &ops[..2]);
        assert_eq!(replay.groups[1], &ops[2..]);
        assert_eq!(replay.valid_len, bytes.len() as u64);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.dropped_uncommitted_ops, 0);
    }

    #[test]
    fn torn_tail_stops_at_last_commit() {
        let ops = sample_ops();
        let good = encode_group(&ops[..2]);
        let mut bytes = good.clone();
        bytes.extend(encode_group(&ops[2..]));
        // Cut anywhere inside the second group: only the first survives.
        for cut in good.len()..bytes.len() {
            let replay = read_wal(&bytes[..cut]);
            assert_eq!(replay.groups.len(), 1, "cut at {cut}");
            assert_eq!(replay.valid_len, good.len() as u64, "cut at {cut}");
            assert_eq!(replay.torn_bytes, (cut - good.len()) as u64);
        }
    }

    #[test]
    fn corrupt_frame_stops_the_scan() {
        let ops = sample_ops();
        let good = encode_group(&ops[..1]);
        let mut bytes = good.clone();
        bytes.extend(encode_group(&ops[1..2]));
        // Flip a payload byte in the second group.
        let idx = good.len() + 10;
        bytes[idx] ^= 0x40;
        let replay = read_wal(&bytes);
        assert_eq!(replay.groups.len(), 1);
        assert_eq!(replay.valid_len, good.len() as u64);
    }

    #[test]
    fn uncommitted_group_is_dropped() {
        let ops = sample_ops();
        let mut bytes = encode_group(&ops[..2]);
        // Append two op frames with no commit marker.
        push_frame(&mut bytes, ops[2].to_json().to_string().as_bytes());
        push_frame(&mut bytes, ops[3].to_json().to_string().as_bytes());
        let replay = read_wal(&bytes);
        assert_eq!(replay.groups.len(), 1);
        assert_eq!(replay.dropped_uncommitted_ops, 2);
        assert!(replay.torn_bytes > 0);
    }

    #[test]
    fn commit_retries_transient_errors_and_repairs_partial_attempts() {
        let storage = FaultyStorage::new();
        let wal = Wal::new(Arc::new(storage.clone()), PathBuf::from("/db"), 0);
        let ops = sample_ops();
        storage.inject_transient_errors(2);
        wal.commit(&ops).unwrap();
        wal.health().unwrap();
        let bytes = storage.read(&wal_path(Path::new("/db"), 0)).unwrap();
        assert_eq!(read_wal(&bytes).groups.len(), 1);
    }

    #[test]
    fn commit_poisons_after_persistent_failure_and_rotate_clears() {
        let storage = FaultyStorage::new();
        let wal = Wal::new(Arc::new(storage.clone()), PathBuf::from("/db"), 0);
        storage.inject_transient_errors(APPEND_ATTEMPTS);
        assert!(matches!(
            wal.commit(&sample_ops()),
            Err(DbError::Durability(_))
        ));
        assert!(matches!(wal.health(), Err(DbError::Durability(_))));
        // Later commits are refused too (durability already lost) ...
        assert!(wal.commit(&sample_ops()).is_err());
        // ... until a checkpoint rotates to a fresh generation.
        wal.rotate(1);
        wal.health().unwrap();
        assert_eq!(wal.generation(), 1);
    }
}
