//! Smoke tests of the deprecated query surface. These are the only
//! in-repo callers of `find`/`find_with`/`find_one`/`count(filter)`/
//! `distinct`/`find_refs`/`explain` allowed to remain: they pin the
//! compat shims to the builder until the methods are removed.
#![allow(deprecated)]

use pathdb::{doc, Collection, Filter, FindOptions, Order};

fn sample() -> Collection {
    let mut coll = Collection::new("servers");
    coll.create_index("server_id");
    coll.insert_many(vec![
        doc! { "_id" => "1_0", "server_id" => 1i64, "rtt" => 20.0 },
        doc! { "_id" => "1_1", "server_id" => 1i64, "rtt" => 35.0 },
        doc! { "_id" => "2_0", "server_id" => 2i64, "rtt" => 10.0 },
    ])
    .unwrap();
    coll
}

#[test]
fn deprecated_wrappers_still_work() {
    let coll = sample();
    let f = Filter::eq("server_id", 1i64);

    assert_eq!(coll.find(&f).len(), 2);
    assert_eq!(coll.find_one(&f).unwrap().id(), Some("1_0"));
    assert_eq!(coll.count(&f), 2);
    assert_eq!(coll.find_refs(&f).len(), 2);
    assert_eq!(coll.distinct("server_id", &Filter::True).len(), 2);
    assert!(!coll.explain(&f).access.is_full_scan());

    let opts = FindOptions::default()
        .sorted_by("rtt", Order::Desc)
        .limited(1);
    let top = coll.find_with(&Filter::True, &opts);
    assert_eq!(top.len(), 1);
    assert_eq!(top[0].id(), Some("1_1"));
}

#[test]
fn deprecated_wrappers_agree_with_builder() {
    let coll = sample();
    let f = Filter::gte("rtt", 15.0);
    assert_eq!(coll.find(&f), coll.query(&f).run());
    assert_eq!(coll.count(&f), coll.query(&f).count());
    assert_eq!(coll.find_one(&f), coll.query(&f).first());
}
