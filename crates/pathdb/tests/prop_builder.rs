//! Property-based equivalence of the chainable [`Query`] builder and
//! the deprecated `find*/count/distinct` surface it replaced: for any
//! collection, filter and option combination the two APIs must return
//! byte-identical results (the deprecated methods are thin wrappers,
//! and this is the test that keeps them honest).
#![allow(deprecated)]

use pathdb::{doc, Collection, Filter, FindOptions, Order};
use proptest::prelude::*;

fn populated(rows: &[(i64, f64, bool)]) -> Collection {
    let mut coll = Collection::new("t");
    coll.create_index("server_id");
    for (i, (server, rtt, with_err)) in rows.iter().enumerate() {
        let mut d = doc! {
            "_id" => format!("{server}_{i}"),
            "server_id" => *server,
            "rtt" => *rtt,
        };
        if *with_err {
            d.set("error", "timeout");
        }
        coll.insert_one(d).unwrap();
    }
    coll
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, f64, bool)>> {
    prop::collection::vec((0..6i64, -100.0..100.0f64, any::<bool>()), 0..40)
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    prop_oneof![
        Just(Filter::True),
        (0..6i64).prop_map(|s| Filter::eq("server_id", s)),
        (-100.0..100.0f64).prop_map(|r| Filter::lt("rtt", r)),
        (0..6i64, -100.0..100.0f64)
            .prop_map(|(s, r)| Filter::eq("server_id", s).and(Filter::gte("rtt", r))),
        Just(Filter::exists("error")),
    ]
}

proptest! {
    #[test]
    fn builder_matches_find(rows in arb_rows(), f in arb_filter()) {
        let coll = populated(&rows);
        prop_assert_eq!(coll.query(&f).run(), coll.find(&f));
    }

    #[test]
    fn builder_matches_find_with(
        rows in arb_rows(),
        f in arb_filter(),
        desc in any::<bool>(),
        skip in 0..5usize,
        limit in 1..8usize,
    ) {
        let coll = populated(&rows);
        let order = if desc { Order::Desc } else { Order::Asc };
        let opts = FindOptions::default()
            .sorted_by("rtt", order)
            .skipping(skip)
            .limited(limit);
        let via_builder = coll
            .query(&f)
            .sort_by("rtt", order)
            .skip(skip)
            .limit(limit)
            .run();
        prop_assert_eq!(&via_builder, &coll.find_with(&f, &opts));
        // with_options is the third spelling of the same query.
        prop_assert_eq!(&via_builder, &coll.query(&f).with_options(opts).run());
    }

    #[test]
    fn builder_matches_count_first_distinct(rows in arb_rows(), f in arb_filter()) {
        let coll = populated(&rows);
        prop_assert_eq!(coll.query(&f).count(), coll.count(&f));
        prop_assert_eq!(coll.query(&f).first(), coll.find_one(&f));
        prop_assert_eq!(
            coll.query(&f).distinct("server_id"),
            coll.distinct("server_id", &f)
        );
        let refs_builder: Vec<String> = coll
            .query(&f)
            .refs()
            .iter()
            .filter_map(|d| d.id().map(String::from))
            .collect();
        let refs_old: Vec<String> = coll
            .find_refs(&f)
            .iter()
            .filter_map(|d| d.id().map(String::from))
            .collect();
        prop_assert_eq!(refs_builder, refs_old);
    }

    #[test]
    fn builder_explain_matches_deprecated_explain(rows in arb_rows(), f in arb_filter()) {
        let coll = populated(&rows);
        prop_assert_eq!(
            format!("{:?}", coll.query(&f).explain()),
            format!("{:?}", coll.explain(&f))
        );
    }
}
