//! Property-based correctness of the chainable [`Query`] builder
//! against a naive reference evaluator: for any collection, filter and
//! option combination, the builder (which may route through indexes and
//! early-exit scans) must return exactly what a full in-order scan
//! computes. This test replaced the deprecated `find*/count/distinct`
//! equivalence suite when that legacy surface was deleted.

use pathdb::{doc, Collection, Document, Filter, FindOptions, Order, Value};
use proptest::prelude::*;

fn populated(rows: &[(i64, f64, bool)]) -> Collection {
    let mut coll = Collection::new("t");
    coll.create_index("server_id");
    for (i, (server, rtt, with_err)) in rows.iter().enumerate() {
        let mut d = doc! {
            "_id" => format!("{server}_{i}"),
            "server_id" => *server,
            "rtt" => *rtt,
        };
        if *with_err {
            d.set("error", "timeout");
        }
        coll.insert_one(d).unwrap();
    }
    coll
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, f64, bool)>> {
    prop::collection::vec((0..6i64, -100.0..100.0f64, any::<bool>()), 0..40)
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    prop_oneof![
        Just(Filter::True),
        (0..6i64).prop_map(|s| Filter::eq("server_id", s)),
        (-100.0..100.0f64).prop_map(|r| Filter::lt("rtt", r)),
        (0..6i64, -100.0..100.0f64)
            .prop_map(|(s, r)| Filter::eq("server_id", s).and(Filter::gte("rtt", r))),
        Just(Filter::exists("error")),
    ]
}

/// The reference: a full scan in insertion order, no indexes, no
/// early exit.
fn naive_scan(coll: &Collection, f: &Filter) -> Vec<Document> {
    coll.iter().filter(|d| f.matches(d)).cloned().collect()
}

fn rtt_of(d: &Document) -> f64 {
    match d.get("rtt") {
        Some(Value::Float(x)) => *x,
        _ => f64::NAN,
    }
}

proptest! {
    #[test]
    fn builder_run_matches_a_naive_scan(rows in arb_rows(), f in arb_filter()) {
        let coll = populated(&rows);
        prop_assert_eq!(coll.query(&f).run(), naive_scan(&coll, &f));
    }

    #[test]
    fn builder_sort_skip_limit_match_a_naive_pipeline(
        rows in arb_rows(),
        f in arb_filter(),
        desc in any::<bool>(),
        skip in 0..5usize,
        limit in 1..8usize,
    ) {
        let coll = populated(&rows);
        let order = if desc { Order::Desc } else { Order::Asc };

        // Reference pipeline: scan, stable-sort on rtt, skip, limit.
        let mut expect = naive_scan(&coll, &f);
        expect.sort_by(|a, b| {
            let cmp = rtt_of(a).partial_cmp(&rtt_of(b)).unwrap();
            if desc { cmp.reverse() } else { cmp }
        });
        let expect: Vec<Document> =
            expect.into_iter().skip(skip).take(limit).collect();

        let via_builder = coll
            .query(&f)
            .sort_by("rtt", order)
            .skip(skip)
            .limit(limit)
            .run();
        prop_assert_eq!(&via_builder, &expect);
        // with_options is the second spelling of the same query.
        let opts = FindOptions::default()
            .sorted_by("rtt", order)
            .skipping(skip)
            .limited(limit);
        prop_assert_eq!(&via_builder, &coll.query(&f).with_options(opts).run());
    }

    #[test]
    fn builder_count_first_distinct_refs_match_the_scan(
        rows in arb_rows(),
        f in arb_filter(),
    ) {
        let coll = populated(&rows);
        let expect = naive_scan(&coll, &f);
        prop_assert_eq!(coll.query(&f).count(), expect.len());
        prop_assert_eq!(coll.query(&f).first(), expect.first().cloned());

        // Distinct: first-encounter order over the scan.
        let mut seen = std::collections::BTreeSet::new();
        let mut distinct = Vec::new();
        for d in &expect {
            if let Some(v) = d.get("server_id") {
                if seen.insert(v.index_key()) {
                    distinct.push(v.clone());
                }
            }
        }
        prop_assert_eq!(coll.query(&f).distinct("server_id"), distinct);

        let refs_builder: Vec<String> = coll
            .query(&f)
            .refs()
            .iter()
            .filter_map(|d| d.id().map(String::from))
            .collect();
        let refs_expect: Vec<String> = expect
            .iter()
            .filter_map(|d| d.id().map(String::from))
            .collect();
        prop_assert_eq!(refs_builder, refs_expect);
    }

    #[test]
    fn builder_explain_is_stable_across_spellings(
        rows in arb_rows(),
        f in arb_filter(),
    ) {
        let coll = populated(&rows);
        // The default-options explain and the with_options(default)
        // explain must be the same plan.
        prop_assert_eq!(
            format!("{:?}", coll.query(&f).explain()),
            format!(
                "{:?}",
                coll.query(&f).with_options(FindOptions::default()).explain()
            )
        );
    }
}
