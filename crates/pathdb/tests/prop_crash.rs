//! Crash-injection oracle for the durability subsystem.
//!
//! Method: run a workload of collection operations (inserts, bulk
//! inserts, updates, deletes, drops, checkpoints) against a database
//! opened with WAL durability on a [`FaultyStorage`]. A fault-free run
//! records, after each operation, (a) the cumulative storage unit
//! counter and (b) a fingerprint of the logical state — the *model
//! trajectory*. Then the same workload is re-run with the storage
//! rigged to crash at a chosen unit offset `k`; recovery from the
//! surviving bytes must produce a state that
//!
//! 1. equals **some** model state `j` (atomicity: a recovered database
//!    is never "between" operations — in particular no partial
//!    `insert_many` batch is ever visible), and
//! 2. has `j >= committed(k)`, the number of operations whose storage
//!    writes fully preceded the crash (prefix durability: nothing that
//!    reached the disk before the crash is lost).
//!
//! The deterministic test sweeps **every** offset of a fixed workload
//! (including offsets inside checkpoints, so every window of the
//! snapshot/rotate/cleanup protocol is hit); the proptest randomizes
//! workloads and samples offsets, and also covers sector tearing and
//! transient-error retries.

use pathdb::database::OpenOptions;
use pathdb::{
    doc, CompactionPolicy, Database, Document, Durability, FaultyStorage, Filter, RetentionPolicy,
    RollupConfig, Update, Value,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

// ---- workload -------------------------------------------------------------

/// One scripted operation. Collections and ids are small pools so
/// updates/deletes actually hit and drops actually destroy data.
#[derive(Debug, Clone)]
enum Op {
    Insert {
        coll: u8,
        id: u32,
    },
    /// `dup: true` repeats an existing id — the op must fail without
    /// reaching the WAL.
    InsertDup {
        coll: u8,
        id: u32,
    },
    InsertMany {
        coll: u8,
        ids: Vec<u32>,
    },
    Update {
        coll: u8,
        id: u32,
        v: i64,
    },
    Delete {
        coll: u8,
        id: u32,
    },
    Drop {
        coll: u8,
    },
    Checkpoint,
    /// Fold the registered rollup forward (one WAL group, or none when
    /// already caught up).
    RollupFold,
    /// Retention expiry at a given sim-clock. Always scheduled right
    /// after a [`Op::RollupFold`], so its internal fold-before-expire
    /// pass is a WAL no-op and the op commits exactly one delete group —
    /// keeping every WAL-group boundary aligned with a trajectory point.
    Expire {
        now: i64,
    },
}

fn coll_name(c: u8) -> &'static str {
    if c == 0 {
        "paths"
    } else {
        "paths_stats"
    }
}

/// Apply one op, swallowing errors: after the rigged crash offset every
/// storage call fails, exactly like a process racing a dying disk.
fn apply(db: &Database, op: &Op) {
    match op {
        Op::Insert { coll, id } => {
            let h = db.collection(coll_name(*coll));
            let _ = h.write().insert_one(
                doc! { "_id" => format!("d{id}"), "v" => *id as i64, "t" => *id as i64 * 500 },
            );
        }
        Op::InsertDup { coll, id } => {
            let h = db.collection(coll_name(*coll));
            let r = h
                .write()
                .insert_one(doc! { "_id" => format!("d{id}"), "v" => -1i64 });
            assert!(r.is_err(), "duplicate insert must be rejected");
        }
        Op::InsertMany { coll, ids } => {
            let h = db.collection(coll_name(*coll));
            let docs: Vec<Document> = ids
                .iter()
                .map(|id| {
                    doc! {
                        "_id" => format!("d{id}"),
                        "v" => *id as i64,
                        "t" => *id as i64 * 500,
                        "batch" => true,
                    }
                })
                .collect();
            let _ = h.write().insert_many(docs);
        }
        Op::Update { coll, id, v } => {
            let h = db.collection(coll_name(*coll));
            h.write().update_many(
                &Filter::eq("_id", format!("d{id}")),
                &Update::new().set("v", *v),
            );
        }
        Op::Delete { coll, id } => {
            let h = db.collection(coll_name(*coll));
            h.write().delete_many(&Filter::eq("_id", format!("d{id}")));
        }
        Op::Drop { coll } => {
            db.drop_collection(coll_name(*coll));
        }
        Op::Checkpoint => {
            let _ = db.checkpoint();
        }
        Op::RollupFold => {
            let _ = db.rollup_catch_up();
        }
        Op::Expire { now } => {
            let _ = db.expire_retention(*now);
        }
    }
}

/// Canonical logical state: every non-empty collection's documents as
/// sorted JSON. (Empty collections are deliberately excluded — an
/// empty collection that was never checkpointed leaves no durable
/// trace, by design.)
fn fingerprint(db: &Database) -> Vec<String> {
    let mut out = Vec::new();
    for name in db.collection_names() {
        let handle = db.collection(&name);
        let coll = handle.read();
        if coll.is_empty() {
            continue;
        }
        let mut docs: Vec<String> = coll
            .iter()
            .map(|d| Value::Doc(d.clone()).to_json().to_string())
            .collect();
        docs.sort();
        out.push(format!("{name}: {}", docs.join(" | ")));
    }
    out
}

fn open_wal(storage: &FaultyStorage) -> (Database, pathdb::RecoveryReport) {
    let (db, report) = Database::open_durable_with(
        PathBuf::from("/db"),
        OpenOptions::new(Durability::Wal).with_storage(Arc::new(storage.clone())),
    )
    .expect("recovery never fails on torn state");
    // Exercise the generational-checkpoint decision paths aggressively:
    // tiny collections already qualify for keep-in-log / compaction.
    db.set_compaction_policy(CompactionPolicy {
        live_fraction: 0.6,
        min_rows: 2,
        max_lag: 3,
    });
    db.register_rollup(RollupConfig {
        source: "paths_stats".into(),
        dest: "rollup_stats".into(),
        time_field: "t".into(),
        bucket_ms: 4000,
        group_by: vec![],
        fields: vec!["v".into()],
    });
    db.set_retention(RetentionPolicy {
        collection: "paths_stats".into(),
        time_field: "t".into(),
        keep_ms: 3000,
    });
    (db, report)
}

/// Fault-free run: the model trajectory (cumulative units + state
/// fingerprint after each op) and the total unit span.
fn model_trajectory(ops: &[Op]) -> (Vec<(u64, Vec<String>)>, u64) {
    let storage = FaultyStorage::new();
    let (db, _) = open_wal(&storage);
    let mut states = Vec::with_capacity(ops.len());
    for op in ops {
        apply(&db, op);
        states.push((storage.units_written(), fingerprint(&db)));
    }
    let total = storage.units_written();
    (states, total)
}

/// Crash the workload at `kill`, recover, and check the oracle.
fn check_crash_at(ops: &[Op], states: &[(u64, Vec<String>)], kill: u64, sector_tear: bool) {
    let storage = FaultyStorage::new();
    storage.tear_to_sectors(sector_tear);
    storage.kill_at(kill);
    {
        let (db, _) = open_wal(&storage);
        for op in ops {
            apply(&db, op);
        }
    }
    let survivor = storage.surviving();
    let (recovered, report) = open_wal(&survivor);
    let got = fingerprint(&recovered);

    // committed(k): ops whose writes fully preceded the crash.
    let committed = states
        .iter()
        .take_while(|(units, _)| *units <= kill)
        .count();
    // No-op operations (rejected duplicates, missed updates/deletes)
    // repeat a fingerprint, so credit the *latest* matching state.
    let matched = states
        .iter()
        .rposition(|(_, fp)| *fp == got)
        .map(|j| j + 1)
        .or((got.is_empty()).then_some(0));
    let Some(j) = matched else {
        panic!(
            "kill at {kill}: recovered state matches no model state\n\
             got: {got:#?}\nreport: {report:?}"
        );
    };
    assert!(
        j >= committed,
        "kill at {kill}: recovered state {j} but {committed} op(s) were fully durable\n\
         report: {report:?}"
    );

    // Recovery must also be idempotent: reopening changes nothing.
    let (again, _) = open_wal(&survivor);
    assert_eq!(fingerprint(&again), got, "second recovery diverged");
}

fn fixed_workload() -> Vec<Op> {
    vec![
        Op::Insert { coll: 0, id: 1 },
        Op::InsertMany {
            coll: 1,
            ids: vec![10, 11, 12],
        },
        Op::InsertDup { coll: 0, id: 1 },
        Op::Update {
            coll: 1,
            id: 11,
            v: 99,
        },
        Op::RollupFold,
        Op::Checkpoint,
        Op::Insert { coll: 0, id: 2 },
        Op::Delete { coll: 1, id: 10 },
        Op::InsertMany {
            coll: 0,
            ids: vec![20, 21],
        },
        // Expires the folded row d11 (t = 5500 < 9000 - 3000): the
        // following checkpoint sees a log that is partly dead weight —
        // the generational compaction decision runs inside the sweep.
        Op::RollupFold,
        Op::Expire { now: 9000 },
        Op::Checkpoint,
        Op::Drop { coll: 1 },
        Op::Checkpoint,
        Op::Insert { coll: 1, id: 30 },
        Op::RollupFold,
    ]
}

/// The exhaustive matrix: every single unit offset of the fixed
/// workload, including every byte of three checkpoints' snapshot /
/// manifest / cleanup windows and of the rollup-fold and retention
/// expiry commits between them.
#[test]
fn every_kill_offset_recovers_a_committed_prefix() {
    let ops = fixed_workload();
    let (states, total) = model_trajectory(&ops);
    assert!(total > 0);
    for kill in 0..=total {
        check_crash_at(&ops, &states, kill, false);
    }
}

/// Same matrix with sector-granularity tearing (torn appends rounded
/// down to 512-byte boundaries), on a sampled offset grid.
#[test]
fn sector_tearing_recovers_too() {
    let ops = fixed_workload();
    let (states, total) = model_trajectory(&ops);
    for i in 0..97 {
        check_crash_at(&ops, &states, i * total / 96, true);
    }
}

/// Transient write errors (EIO that goes away) must not lose anything:
/// the WAL retries and every op stays durable.
#[test]
fn transient_errors_lose_nothing() {
    let ops = fixed_workload();
    let (states, _) = model_trajectory(&ops);
    let storage = FaultyStorage::new();
    {
        let (db, _) = open_wal(&storage);
        for (i, op) in ops.iter().enumerate() {
            if i % 2 == 0 && !matches!(op, Op::Checkpoint) {
                storage.inject_transient_errors(1);
            }
            apply(&db, op);
        }
        db.wal_health()
            .expect("retries absorbed the transient errors");
    }
    let (recovered, _) = open_wal(&storage.surviving());
    assert_eq!(
        fingerprint(&recovered),
        states.last().unwrap().1,
        "a transient error must not drop a committed op"
    );
}

// ---- randomized workloads -------------------------------------------------

#[derive(Debug, Clone)]
enum OpSpec {
    Insert(u8),
    InsertDup(u8),
    InsertMany(u8, u8),
    Update(u8, u8, i64),
    Delete(u8, u8),
    Drop(u8),
    Checkpoint,
    Fold,
    /// Expiry at sim-clock `k·1000` ms (preceded by a fold, see
    /// [`Op::Expire`]).
    Expire(u8),
}

fn arb_op() -> impl Strategy<Value = OpSpec> {
    // (The vendored prop_oneof! is unweighted; bias by repetition.)
    prop_oneof![
        (0u8..2).prop_map(OpSpec::Insert),
        (0u8..2).prop_map(OpSpec::Insert),
        (0u8..2).prop_map(OpSpec::InsertDup),
        ((0u8..2), (2u8..5)).prop_map(|(c, n)| OpSpec::InsertMany(c, n)),
        ((0u8..2), (2u8..5)).prop_map(|(c, n)| OpSpec::InsertMany(c, n)),
        ((0u8..2), (0u8..8), -5i64..5).prop_map(|(c, t, v)| OpSpec::Update(c, t, v)),
        ((0u8..2), (0u8..8)).prop_map(|(c, t)| OpSpec::Delete(c, t)),
        (0u8..2).prop_map(OpSpec::Drop),
        Just(OpSpec::Checkpoint),
        Just(OpSpec::Fold),
        (1u8..12).prop_map(OpSpec::Expire),
    ]
}

/// Resolve specs into concrete ops with deterministic ids: inserts mint
/// fresh ids; updates/deletes target a previously-minted id (hit or
/// already-deleted miss, both interesting).
fn resolve(specs: &[OpSpec]) -> Vec<Op> {
    let mut next_id = 0u32;
    let mut minted: Vec<u32> = Vec::new();
    let mut mint = |minted: &mut Vec<u32>| {
        next_id += 1;
        minted.push(next_id);
        next_id
    };
    let mut ops = Vec::with_capacity(specs.len());
    for spec in specs {
        let op = match spec {
            OpSpec::Insert(c) => Op::Insert {
                coll: *c,
                id: mint(&mut minted),
            },
            OpSpec::InsertDup(c) => match minted.last() {
                Some(&id) => Op::InsertDup { coll: *c, id },
                None => Op::Insert {
                    coll: *c,
                    id: mint(&mut minted),
                },
            },
            OpSpec::InsertMany(c, n) => Op::InsertMany {
                coll: *c,
                ids: (0..*n).map(|_| mint(&mut minted)).collect(),
            },
            OpSpec::Update(c, t, v) => match minted.get(*t as usize % minted.len().max(1)) {
                Some(&id) => Op::Update {
                    coll: *c,
                    id,
                    v: *v,
                },
                None => Op::Checkpoint,
            },
            OpSpec::Delete(c, t) => match minted.get(*t as usize % minted.len().max(1)) {
                Some(&id) => Op::Delete { coll: *c, id },
                None => Op::Checkpoint,
            },
            OpSpec::Drop(c) => Op::Drop { coll: *c },
            OpSpec::Checkpoint => Op::Checkpoint,
            OpSpec::Fold => Op::RollupFold,
            OpSpec::Expire(k) => {
                // Fold first so the expiry op itself commits exactly one
                // WAL group (see [`Op::Expire`]).
                ops.push(Op::RollupFold);
                Op::Expire {
                    now: *k as i64 * 1000,
                }
            }
        };
        ops.push(op);
    }
    ops
}

/// An `InsertDup` is only valid when the duplicated id is still live
/// (not deleted, not dropped with its collection); replace stale ones.
fn sanitize_dups(ops: Vec<Op>) -> Vec<Op> {
    use std::collections::HashSet;
    let mut live: [HashSet<u32>; 2] = [HashSet::new(), HashSet::new()];
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match &op {
            Op::Insert { coll, id } => {
                live[*coll as usize].insert(*id);
            }
            Op::InsertMany { coll, ids } => {
                live[*coll as usize].extend(ids.iter().copied());
            }
            Op::Delete { coll, id } => {
                live[*coll as usize].remove(id);
            }
            Op::Drop { coll } => live[*coll as usize].clear(),
            Op::Expire { now } => {
                // Retention removes paths_stats rows behind the window;
                // their ids are no longer valid duplicate targets.
                let cutoff = now - 3000;
                live[1].retain(|id| (*id as i64) * 500 >= cutoff);
            }
            Op::InsertDup { coll, id } => {
                if !live[*coll as usize].contains(id) {
                    out.push(Op::Checkpoint);
                    continue;
                }
            }
            Op::Update { .. } | Op::Checkpoint | Op::RollupFold => {}
        }
        out.push(op);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn randomized_workloads_recover_a_committed_prefix(
        specs in prop::collection::vec(arb_op(), 1..14),
        offset_fracs in prop::collection::vec(0u64..=1000, 6),
        sector_tear in any::<bool>(),
    ) {
        let ops = sanitize_dups(resolve(&specs));
        let (states, total) = model_trajectory(&ops);
        // Even a single op writes WAL bytes, so the span is never empty.
        prop_assert!(total > 0);
        for frac in offset_fracs {
            check_crash_at(&ops, &states, frac * total / 1000, sector_tear);
        }
    }
}
