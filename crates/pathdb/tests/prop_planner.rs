//! Property-based oracle for the query planner: whatever access path
//! `plan::find_with` picks (hash point lookup, ordered range scan,
//! seq-set intersection, indexed union, index-served sort, limit
//! pushdown), the observable results must be byte-identical — same
//! documents, same order — to a naive full scan over the live documents
//! in insertion order.
//!
//! The generators deliberately produce colliding values (small ints,
//! int-valued floats, shared strings, nulls, arrays) and interleave
//! index creation with inserts, updates and deletes, so the planner's
//! incremental index maintenance and its append/reshape bookkeeping are
//! exercised alongside plan selection.

use pathdb::{Collection, Document, Filter, FindOptions, Order, Update, Value};
use proptest::prelude::*;
use std::collections::HashSet;

// ---- generators -----------------------------------------------------------

/// A small field pool so filters, sorts and indexes actually collide.
fn arb_field() -> impl Strategy<Value = String> {
    prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(String::from)
}

/// Values chosen to collide across types: `Int(2)` vs `Float(2.0)`
/// unify under the canonical index key, `0.5` exercises the float
/// residual, arrays exercise multikey indexing.
fn arb_val() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-3i64..6).prop_map(Value::Int),
        prop_oneof![
            Just(Value::Float(-1.5)),
            Just(Value::Float(0.5)),
            Just(Value::Float(2.0)),
            Just(Value::Float(2.5)),
            Just(Value::Float(4.0)),
        ],
        prop_oneof![Just("x"), Just("y"), Just("zed")].prop_map(|s| Value::Str(s.into())),
        prop::collection::vec((-2i64..3).prop_map(Value::Int), 0..3).prop_map(Value::Array),
    ]
}

/// One indexable (or not) comparison — the planner's atoms plus the
/// operators it must treat as residual-only.
fn arb_leaf() -> impl Strategy<Value = Filter> {
    (
        arb_field(),
        arb_val(),
        prop::collection::vec(arb_val(), 0..3),
    )
        .prop_flat_map(|(k, v, vs)| {
            prop_oneof![
                Just(Filter::eq(k.clone(), v.clone())),
                Just(Filter::ne(k.clone(), v.clone())),
                Just(Filter::gt(k.clone(), v.clone())),
                Just(Filter::gte(k.clone(), v.clone())),
                Just(Filter::lt(k.clone(), v.clone())),
                Just(Filter::lte(k.clone(), v.clone())),
                Just(Filter::is_in(k.clone(), vs.clone())),
                Just(Filter::not_in(k.clone(), vs.clone())),
                Just(Filter::exists(k.clone())),
            ]
        })
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    arb_leaf().prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|f| f.negate()),
        ]
    })
}

fn arb_opts() -> impl Strategy<Value = FindOptions> {
    (
        prop::option::of((arb_field(), any::<bool>())),
        0usize..5,
        prop::option::of(0usize..8),
        prop::collection::vec(arb_field(), 0..3),
    )
        .prop_map(|(sort, skip, limit, projection)| {
            let mut opts = FindOptions::default();
            if let Some((key, asc)) = sort {
                opts = opts.sorted_by(key, if asc { Order::Asc } else { Order::Desc });
            }
            opts.skip = skip;
            opts.limit = limit;
            opts.projection = projection;
            opts
        })
}

/// Rows as field lists; `_id` is assigned positionally by the test.
fn arb_rows() -> impl Strategy<Value = Vec<Vec<(String, Value)>>> {
    prop::collection::vec(prop::collection::vec((arb_field(), arb_val()), 0..4), 0..40)
}

// ---- the oracle -----------------------------------------------------------

/// The naive semantics `find_with` must reproduce exactly: filter the
/// live documents in insertion order, stable-sort, paginate, project.
fn naive_find(mirror: &[Document], filter: &Filter, opts: &FindOptions) -> Vec<Document> {
    let mut out: Vec<Document> = mirror
        .iter()
        .filter(|d| filter.matches(d))
        .cloned()
        .collect();
    if !opts.sort.is_empty() {
        out.sort_by(|a, b| opts.doc_cmp(a, b));
    }
    out.into_iter()
        .skip(opts.skip)
        .take(opts.limit.unwrap_or(usize::MAX))
        .map(|d| opts.apply_projection(&d))
        .collect()
}

fn naive_distinct(mirror: &[Document], field: &str, filter: &Filter) -> Vec<Value> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = Vec::new();
    for d in mirror.iter().filter(|d| filter.matches(d)) {
        let candidates: Vec<Value> = match d.get_path(field) {
            Some(Value::Array(a)) => a.clone(),
            Some(v) => vec![v.clone()],
            None => continue,
        };
        for v in candidates {
            if seen.insert(v.index_key()) {
                out.push(v);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn planner_results_equal_full_scan(
        rows in arb_rows(),
        index_fields in prop::collection::hash_set(arb_field(), 0..3),
        index_first in any::<bool>(),
        update in prop::option::of((arb_leaf(), arb_field(), arb_val())),
        delete in prop::option::of(arb_leaf()),
        filter in arb_filter(),
        opts in arb_opts(),
    ) {
        let mut coll = Collection::new("t");
        if index_first {
            for f in &index_fields {
                coll.create_index(f);
            }
        }
        // `mirror` tracks the live documents in insertion order — the
        // ground truth the planner must reproduce.
        let mut mirror: Vec<Document> = Vec::new();
        for (i, fields) in rows.iter().enumerate() {
            let mut d = Document::new();
            d.set("_id", i.to_string());
            for (k, v) in fields {
                d.set(k.clone(), v.clone());
            }
            coll.insert_one(d.clone()).unwrap();
            mirror.push(d);
        }
        if !index_first {
            for f in &index_fields {
                coll.create_index(f);
            }
        }
        if let Some((sel, key, val)) = &update {
            coll.update_many(sel, &Update::new().set(key.clone(), val.clone()));
            for d in &mut mirror {
                if sel.matches(d) {
                    d.set(key.clone(), val.clone());
                }
            }
        }
        if let Some(sel) = &delete {
            coll.delete_many(sel);
            mirror.retain(|d| !sel.matches(d));
        }

        // The builder: same documents, same order, under every plan.
        let got = coll.query(&filter).with_options(opts.clone()).run();
        let expect = naive_find(&mirror, &filter, &opts);
        prop_assert_eq!(
            &got, &expect,
            "plan diverged from full scan: {:?}",
            coll.query(&filter).with_options(opts.clone()).explain()
        );

        // count / first / distinct ride the same matching_seqs path.
        prop_assert_eq!(
            coll.query(&filter).count(),
            mirror.iter().filter(|d| filter.matches(d)).count()
        );
        prop_assert_eq!(
            coll.query(&filter).first(),
            mirror.iter().find(|d| filter.matches(d)).cloned()
        );
        for field in ["a", "b", "c"] {
            prop_assert_eq!(
                coll.query(&filter).distinct(field),
                naive_distinct(&mirror, field, &filter)
            );
        }
    }

    /// Focused variant: single-field range conjunctions with an ordered
    /// index and an index-served sort on the same field — the planner's
    /// hot path for the selection engine's canonical queries.
    #[test]
    fn indexed_range_and_sort_equal_full_scan(
        vals in prop::collection::vec(prop_oneof![
            (-50i64..50).prop_map(Value::Int),
            (-50i64..50).prop_map(|i| Value::Float(i as f64 / 2.0)),
        ], 1..60),
        lo in -30i64..30,
        width in 0i64..40,
        desc in any::<bool>(),
        skip in 0usize..4,
        limit in prop::option::of(1usize..10),
    ) {
        let mut coll = Collection::new("t");
        coll.create_index("v");
        let mut mirror = Vec::new();
        for (i, v) in vals.iter().enumerate() {
            let mut d = Document::new();
            d.set("_id", i.to_string());
            d.set("v", v.clone());
            coll.insert_one(d.clone()).unwrap();
            mirror.push(d);
        }
        let filter = Filter::gte("v", lo).and(Filter::lt("v", lo + width));
        let mut opts = FindOptions::default()
            .sorted_by("v", if desc { Order::Desc } else { Order::Asc });
        opts.skip = skip;
        opts.limit = limit;

        let got = coll.query(&filter).with_options(opts.clone()).run();
        let expect = naive_find(&mirror, &filter, &opts);
        prop_assert_eq!(
            &got, &expect,
            "plan diverged: {:?}",
            coll.query(&filter).with_options(opts.clone()).explain()
        );
        // A *selective* between-conjunction on an indexed field must not
        // degrade to a full collection scan. (When the range covers every
        // document the planner rightly refuses the index.)
        let matched = mirror.iter().filter(|d| filter.matches(d)).count();
        if matched < mirror.len() {
            prop_assert!(
                !coll.query(&filter).explain().access.is_full_scan(),
                "range conjunction on an indexed field fell back to a scan"
            );
        }
    }
}
