//! Property-based tests of the document store: value round-trips,
//! filter algebra, update semantics and collection invariants.

use pathdb::{doc, Collection, Document, Filter, Update, Value};
use proptest::prelude::*;

// ---- generators -----------------------------------------------------------

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1.0e9..1.0e9f64).prop_map(Value::Float),
        "[a-z0-9_]{0,12}".prop_map(Value::Str),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    arb_scalar().prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..4).prop_map(|pairs| {
                let mut d = Document::new();
                for (k, v) in pairs {
                    d.set(k, v);
                }
                Value::Doc(d)
            }),
        ]
    })
}

fn arb_doc() -> impl Strategy<Value = Document> {
    prop::collection::vec(("[a-z]{1,8}", arb_value()), 0..8).prop_map(|pairs| {
        let mut d = Document::new();
        for (k, v) in pairs {
            d.set(k, v);
        }
        d
    })
}

proptest! {
    #[test]
    fn json_roundtrip(v in arb_value()) {
        let back = Value::from_json(&v.to_json());
        prop_assert_eq!(back, v);
    }

    #[test]
    fn query_eq_is_reflexive_for_json_representable(v in arb_value()) {
        prop_assert!(v.query_eq(&v));
    }

    #[test]
    fn index_key_consistent_with_query_eq(a in arb_scalar(), b in arb_scalar()) {
        // Equal values must share an index key (the converse need not
        // hold for floats vs ints, which is exactly why Eq widens).
        if a.query_eq(&b) {
            prop_assert_eq!(a.index_key(), b.index_key());
        }
    }

    #[test]
    fn set_then_get_path(segments in prop::collection::vec("[a-z]{1,5}", 1..4), v in arb_scalar()) {
        let path = segments.join(".");
        let mut d = Document::new();
        d.set_path(&path, v.clone());
        prop_assert_eq!(d.get_path(&path), Some(&v));
        // And removal empties it.
        let removed = d.remove_path(&path);
        prop_assert_eq!(removed, Some(v));
        prop_assert_eq!(d.get_path(&path), None);
    }

    #[test]
    fn not_is_complement(d in arb_doc(), key in "[a-z]{1,8}", v in arb_scalar()) {
        for f in [
            Filter::eq(key.clone(), v.clone()),
            Filter::gt(key.clone(), v.clone()),
            Filter::exists(key.clone()),
            Filter::contains(key.clone(), "a"),
        ] {
            prop_assert_eq!(f.clone().negate().matches(&d), !f.matches(&d));
        }
    }

    #[test]
    fn and_or_agree_with_pointwise(d in arb_doc(), k1 in "[a-z]{1,4}", k2 in "[a-z]{1,4}", v in arb_scalar()) {
        let f1 = Filter::exists(k1);
        let f2 = Filter::eq(k2, v);
        let and = f1.clone().and(f2.clone());
        let or = f1.clone().or(f2.clone());
        prop_assert_eq!(and.matches(&d), f1.matches(&d) && f2.matches(&d));
        prop_assert_eq!(or.matches(&d), f1.matches(&d) || f2.matches(&d));
    }

    #[test]
    fn ne_is_not_eq(d in arb_doc(), k in "[a-z]{1,6}", v in arb_scalar()) {
        prop_assert_eq!(
            Filter::ne(k.clone(), v.clone()).matches(&d),
            !Filter::eq(k, v).matches(&d)
        );
    }

    #[test]
    fn range_trichotomy_on_numbers(x in -1000i64..1000, y in -1000i64..1000) {
        let d = doc! { "v" => x };
        let gt = Filter::gt("v", y).matches(&d);
        let lt = Filter::lt("v", y).matches(&d);
        let eq = Filter::eq("v", y).matches(&d);
        prop_assert_eq!([gt, lt, eq].iter().filter(|b| **b).count(), 1);
        prop_assert_eq!(Filter::gte("v", y).matches(&d), gt || eq);
        prop_assert_eq!(Filter::lte("v", y).matches(&d), lt || eq);
    }

    #[test]
    fn insert_find_delete_roundtrip(ids in prop::collection::hash_set("[a-z0-9]{1,8}", 1..20)) {
        let mut coll = Collection::new("t");
        for (i, id) in ids.iter().enumerate() {
            coll.insert_one(doc! { "_id" => id.clone(), "ord" => i as i64 }).unwrap();
        }
        prop_assert_eq!(coll.len(), ids.len());
        for id in &ids {
            prop_assert!(coll.find_by_id(id.clone()).is_some());
            // Re-inserting any existing id fails.
            let dup = coll.insert_one(doc! { "_id" => id.clone() });
            prop_assert!(dup.is_err(), "duplicate id must be rejected");
        }
        let removed = coll.delete_many(&Filter::True);
        prop_assert_eq!(removed, ids.len());
        prop_assert!(coll.is_empty());
    }

    #[test]
    fn indexed_and_scan_queries_agree(
        vals in prop::collection::vec(0i64..5, 1..40),
        probe in 0i64..5,
    ) {
        let mut scan = Collection::new("scan");
        let mut idx = Collection::new("idx");
        idx.create_index("k");
        for (i, v) in vals.iter().enumerate() {
            let d = doc! { "_id" => i.to_string(), "k" => *v };
            scan.insert_one(d.clone()).unwrap();
            idx.insert_one(d).unwrap();
        }
        let f = Filter::eq("k", probe);
        prop_assert_eq!(scan.query(&f).run(), idx.query(&f).run());
        let f_in = Filter::is_in("k", vec![probe, probe + 1]);
        prop_assert_eq!(scan.query(&f_in).run(), idx.query(&f_in).run());
    }

    #[test]
    fn sort_orders_results(vals in prop::collection::vec(-100i64..100, 1..30)) {
        let mut coll = Collection::new("t");
        for (i, v) in vals.iter().enumerate() {
            coll.insert_one(doc! { "_id" => i.to_string(), "v" => *v }).unwrap();
        }
        let out = coll.query_all().sort("v").run();
        let sorted: Vec<i64> = out.iter().map(|d| d.get("v").unwrap().as_int().unwrap()).collect();
        let mut expect = vals.clone();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
    }

    #[test]
    fn update_inc_accumulates(incs in prop::collection::vec(-50i64..50, 1..20)) {
        let mut coll = Collection::new("t");
        coll.insert_one(doc! { "_id" => "x", "n" => 0i64 }).unwrap();
        for by in &incs {
            coll.update_many(&Filter::eq("_id", "x"), &Update::new().inc("n", *by as f64));
        }
        let total: i64 = incs.iter().sum();
        let d = coll.find_by_id("x").unwrap();
        prop_assert_eq!(d.get("n"), Some(&Value::Int(total)));
    }
}
