//! Byte-equivalence oracle for the incremental rollup layer.
//!
//! Property: after any interleaving of bulk inserts, incremental
//! catch-ups, retention expiries and durable close/recover cycles, the
//! rollup-served aggregates render **byte-identical** to a raw one-pass
//! fold over every row ever inserted ([`pathdb::rollup`] keeps exact
//! mergeable state, not approximations-of-approximations). Expiry may
//! delete raw rows the rollup already folded — the reference therefore
//! folds the *shadow* of all rows ever inserted, pinning the "rollups
//! forever, raw rows windowed" retention contract.
//!
//! The torn-write/kill-offset side of crash safety is prop_crash's job;
//! here recovery is exercised through clean drops (WAL replay) and
//! checkpoints (snapshot + seq restoration), which is where an
//! incremental watermark can silently rot.

use pathdb::database::OpenOptions;
use pathdb::rollup::{fold_reference, read_rollup, render};
use pathdb::{
    doc, Database, Document, Durability, FaultyStorage, RetentionPolicy, RollupConfig,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

const HOUR: i64 = 3_600_000;

fn cfg() -> RollupConfig {
    RollupConfig::hourly("paths_stats", "rollup_paths_stats")
}

#[derive(Debug, Clone)]
enum Op {
    /// Bulk-insert measurement rows: (server, path, sim-hour-tenths,
    /// latency-hundredths, with_latency).
    InsertMany(Vec<(u8, u8, u16, i32, bool)>),
    CatchUp,
    /// Retention expiry at sim-hour `h` (raw rows keep 2 h).
    Expire(u16),
    Checkpoint,
    /// Drop the database and recover it from the surviving directory.
    Reopen,
}

fn arb_row() -> impl Strategy<Value = (u8, u8, u16, i32, bool)> {
    (
        (0u8..3, 0u8..3),
        // Includes negative and zero values: the sketch's bin classes
        // and the min/max fold seeds all get exercised.
        (0u16..100, -500i32..5000, (0u8..10).prop_map(|x| x < 9)),
    )
        .prop_map(|((server, path), (tenths, lat, with_lat))| {
            (server, path, tenths, lat, with_lat)
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(arb_row(), 1..8).prop_map(Op::InsertMany),
        prop::collection::vec(arb_row(), 1..8).prop_map(Op::InsertMany),
        Just(Op::CatchUp),
        (0u16..20).prop_map(Op::Expire),
        Just(Op::Checkpoint),
        Just(Op::Reopen),
    ]
}

fn row_doc(id: u64, (server, path, tenths, lat, with_lat): (u8, u8, u16, i32, bool)) -> Document {
    let mut d = doc! {
        "_id" => format!("r{id}"),
        "server_id" => server as i64,
        "path_id" => format!("{server}_{path}"),
        "timestamp_ms" => tenths as i64 * (HOUR / 10),
    };
    if with_lat {
        // Mix Int and Float values: numeric widening must fold the
        // same either way.
        if lat % 3 == 0 {
            d.set("avg_latency_ms", lat as i64);
        } else {
            d.set("avg_latency_ms", lat as f64 / 100.0);
        }
        d.set("loss_pct", (lat.rem_euclid(100)) as f64 / 10.0);
    }
    d
}

fn open(storage: &FaultyStorage) -> Database {
    let (db, _) = Database::open_durable_with(
        PathBuf::from("/db"),
        OpenOptions::new(Durability::Wal).with_storage(Arc::new(storage.clone())),
    )
    .expect("recovery never fails on clean state");
    db.register_rollup(cfg());
    db.set_retention(RetentionPolicy {
        collection: "paths_stats".into(),
        time_field: "timestamp_ms".into(),
        keep_ms: 2 * HOUR,
    });
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rollup_reads_are_byte_identical_to_a_raw_fold(
        ops in prop::collection::vec(arb_op(), 1..24),
    ) {
        let storage = FaultyStorage::new();
        let mut db = open(&storage);
        let mut shadow: Vec<Document> = Vec::new();
        let mut next_id = 0u64;
        for op in &ops {
            match op {
                Op::InsertMany(rows) => {
                    let docs: Vec<Document> = rows
                        .iter()
                        .map(|r| {
                            next_id += 1;
                            row_doc(next_id, *r)
                        })
                        .collect();
                    shadow.extend(docs.clone());
                    db.collection("paths_stats").write().insert_many(docs).unwrap();
                }
                Op::CatchUp => {
                    db.rollup_catch_up().unwrap();
                }
                Op::Expire(h) => {
                    // Folds internally before deleting: no raw row may
                    // ever expire unfolded.
                    db.expire_retention(*h as i64 * HOUR).unwrap();
                }
                Op::Checkpoint => {
                    db.checkpoint().unwrap();
                }
                Op::Reopen => {
                    drop(db);
                    db = open(&storage);
                    // Incremental state must have survived recovery:
                    // folding forward now covers exactly the unfolded
                    // tail, never refolding, never skipping.
                    db.rollup_catch_up().unwrap();
                    prop_assert_eq!(
                        render(&read_rollup(&db, &cfg())),
                        render(&fold_reference(shadow.iter(), &cfg())),
                        "diverged right after recovery"
                    );
                }
            }
        }
        db.rollup_catch_up().unwrap();
        prop_assert_eq!(
            render(&read_rollup(&db, &cfg())),
            render(&fold_reference(shadow.iter(), &cfg()))
        );

        // And the served aggregates are internally consistent: counts
        // match sketch mass, min <= p50 <= p99 <= max within the
        // sketch's relative-error envelope.
        for agg in read_rollup(&db, &cfg()) {
            for (_, f) in &agg.fields {
                prop_assert_eq!(f.sketch.count(), f.n);
                if f.n > 0 {
                    prop_assert!(f.min <= f.max);
                    let tol = 0.03 * f.max.abs().max(f.min.abs()).max(1.0);
                    prop_assert!(f.p50() <= f.p99() + tol);
                    prop_assert!(f.p99() <= f.max + tol);
                    prop_assert!(f.min - tol <= f.p50());
                }
            }
        }
    }
}
