//! SCION addressing: ISD numbers, AS numbers, ISD-AS pairs and full
//! SCION host addresses.
//!
//! SCION identifies an autonomous system by the pair of an *isolation
//! domain* (ISD) number and an *AS number* (ASN). ASNs are 48-bit values
//! conventionally rendered as three colon-separated 16-bit hexadecimal
//! groups, e.g. `ffaa:0:1002`. A full ISD-AS is rendered with a dash:
//! `16-ffaa:0:1002`, and a host address appends a bracketed IP:
//! `16-ffaa:0:1002,[172.31.43.7]`. All of these formats appear verbatim in
//! the paper and in SCIONLab tooling output, so we implement exact
//! round-tripping parsers and formatters for them.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Errors produced when parsing any of the SCION address formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrParseError {
    /// The ISD component was missing or not a decimal number.
    BadIsd(String),
    /// The ASN component was malformed (wrong group count or non-hex digits).
    BadAsn(String),
    /// The ISD-AS separator (`-`) was missing.
    MissingSeparator(String),
    /// The host part (`,[ip]`) was malformed.
    BadHost(String),
}

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrParseError::BadIsd(s) => write!(f, "invalid ISD number: {s:?}"),
            AddrParseError::BadAsn(s) => write!(f, "invalid AS number: {s:?}"),
            AddrParseError::MissingSeparator(s) => {
                write!(f, "missing `-` separator in ISD-AS: {s:?}")
            }
            AddrParseError::BadHost(s) => write!(f, "invalid SCION host address: {s:?}"),
        }
    }
}

impl std::error::Error for AddrParseError {}

/// An isolation domain number.
///
/// ISDs are SCION's trust and routing-plane partitions; SCIONLab uses
/// small decimal numbers (16 = AWS, 17 = Switzerland, 19 = EU, 20 = KR, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Isd(pub u16);

impl fmt::Display for Isd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for Isd {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse::<u16>()
            .map(Isd)
            .map_err(|_| AddrParseError::BadIsd(s.to_string()))
    }
}

/// A 48-bit SCION AS number.
///
/// Stored as the raw 48-bit value; displayed in the standard
/// `hex:hex:hex` grouping (e.g. `ffaa:0:1303`). Groups are printed
/// without leading zeros, mirroring the SCIONLab tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Asn(pub u64);

impl Asn {
    /// Maximum representable ASN (48 bits).
    pub const MAX: Asn = Asn((1 << 48) - 1);

    /// Build an ASN from its three 16-bit groups, high to low.
    pub const fn from_groups(a: u16, b: u16, c: u16) -> Asn {
        Asn(((a as u64) << 32) | ((b as u64) << 16) | (c as u64))
    }

    /// The three 16-bit groups, high to low.
    pub const fn groups(self) -> (u16, u16, u16) {
        (
            ((self.0 >> 32) & 0xffff) as u16,
            ((self.0 >> 16) & 0xffff) as u16,
            (self.0 & 0xffff) as u16,
        )
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b, c) = self.groups();
        write!(f, "{a:x}:{b:x}:{c:x}")
    }
}

impl FromStr for Asn {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(AddrParseError::BadAsn(s.to_string()));
        }
        let mut groups = [0u16; 3];
        for (i, p) in parts.iter().enumerate() {
            if p.is_empty() || p.len() > 4 {
                return Err(AddrParseError::BadAsn(s.to_string()));
            }
            groups[i] =
                u16::from_str_radix(p, 16).map_err(|_| AddrParseError::BadAsn(s.to_string()))?;
        }
        Ok(Asn::from_groups(groups[0], groups[1], groups[2]))
    }
}

/// An ISD-AS pair, the globally unique identifier of a SCION AS,
/// rendered as `16-ffaa:0:1002`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IsdAsn {
    pub isd: Isd,
    pub asn: Asn,
}

impl IsdAsn {
    pub const fn new(isd: u16, asn: Asn) -> IsdAsn {
        IsdAsn { isd: Isd(isd), asn }
    }

    /// Convenience constructor from the three ASN hex groups.
    pub const fn from_parts(isd: u16, a: u16, b: u16, c: u16) -> IsdAsn {
        IsdAsn {
            isd: Isd(isd),
            asn: Asn::from_groups(a, b, c),
        }
    }
}

impl fmt::Display for IsdAsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.isd, self.asn)
    }
}

impl FromStr for IsdAsn {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (isd, asn) = s
            .split_once('-')
            .ok_or_else(|| AddrParseError::MissingSeparator(s.to_string()))?;
        Ok(IsdAsn {
            isd: isd.parse()?,
            asn: asn.parse()?,
        })
    }
}

/// An IPv4 host address inside an AS.
///
/// SCIONLab end hosts are addressed by an IP local to the AS; the paper's
/// destinations are all IPv4 (e.g. `172.31.43.7`). We carry the four
/// octets directly instead of using `std::net::Ipv4Addr` so the type can
/// derive `Serialize`/`Deserialize` without extra glue and stays trivially
/// copyable in packet headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostAddr(pub [u8; 4]);

impl HostAddr {
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> HostAddr {
        HostAddr([a, b, c, d])
    }
}

impl fmt::Display for HostAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.0;
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl FromStr for HostAddr {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in s.split('.') {
            if n == 4 {
                return Err(AddrParseError::BadHost(s.to_string()));
            }
            // Reject empty parts and leading '+' that u8::parse would accept.
            if part.is_empty() || !part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(AddrParseError::BadHost(s.to_string()));
            }
            octets[n] = part
                .parse::<u8>()
                .map_err(|_| AddrParseError::BadHost(s.to_string()))?;
            n += 1;
        }
        if n != 4 {
            return Err(AddrParseError::BadHost(s.to_string()));
        }
        Ok(HostAddr(octets))
    }
}

/// A full SCION host address: `ISD-ASN,[host-ip]`.
///
/// This is the destination format taken by `scion ping` and
/// `scion-bwtestclient`, e.g. `16-ffaa:0:1002,[172.31.43.7]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ScionAddr {
    pub ia: IsdAsn,
    pub host: HostAddr,
}

impl ScionAddr {
    pub const fn new(ia: IsdAsn, host: HostAddr) -> ScionAddr {
        ScionAddr { ia, host }
    }
}

impl fmt::Display for ScionAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper's exact rendering: `16-ffaa:0:1002,[172.31.43.7]`.
        write!(f, "{},[{}]", self.ia, self.host)
    }
}

impl FromStr for ScionAddr {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ia, host) = s
            .split_once(",[")
            .ok_or_else(|| AddrParseError::BadHost(s.to_string()))?;
        let host = host
            .strip_suffix(']')
            .ok_or_else(|| AddrParseError::BadHost(s.to_string()))?;
        Ok(ScionAddr {
            ia: ia.parse()?,
            host: host.parse()?,
        })
    }
}

/// Identifier of an AS-local interface (the endpoint of an inter-AS link).
///
/// SCION hop fields name the ingress/egress interface of each transited
/// AS; `scion showpaths` prints them in hop predicates such as
/// `17-ffaa:0:1107#2`. Interface id 0 conventionally means "none" (the
/// path starts or ends in this AS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IfaceId(pub u16);

impl IfaceId {
    /// The "no interface" sentinel used at path endpoints.
    pub const NONE: IfaceId = IfaceId(0);

    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_display_matches_scionlab_format() {
        assert_eq!(
            Asn::from_groups(0xffaa, 0, 0x1002).to_string(),
            "ffaa:0:1002"
        );
        assert_eq!(Asn(0).to_string(), "0:0:0");
    }

    #[test]
    fn asn_roundtrip() {
        for s in ["ffaa:0:1002", "0:0:1", "1:2:3", "ffff:ffff:ffff"] {
            let a: Asn = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
    }

    #[test]
    fn asn_rejects_malformed() {
        for s in [
            "",
            "ffaa",
            "ffaa:0",
            "ffaa:0:1002:5",
            "xyz:0:1",
            "fffff:0:1",
            ":0:1",
        ] {
            assert!(s.parse::<Asn>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn isd_asn_roundtrip() {
        let ia: IsdAsn = "19-ffaa:0:1303".parse().unwrap();
        assert_eq!(ia.isd, Isd(19));
        assert_eq!(ia.asn, Asn::from_groups(0xffaa, 0, 0x1303));
        assert_eq!(ia.to_string(), "19-ffaa:0:1303");
    }

    #[test]
    fn isd_asn_rejects_missing_separator() {
        assert!(matches!(
            "19ffaa:0:1303".parse::<IsdAsn>(),
            Err(AddrParseError::MissingSeparator(_))
        ));
    }

    #[test]
    fn scion_addr_roundtrip_paper_examples() {
        // Exact destination strings that appear in the paper.
        for s in [
            "16-ffaa:0:1002,[172.31.43.7]",
            "16-ffaa:0:1003,[172.31.19.144]",
            "19-ffaa:0:1303,[141.44.25.144]",
        ] {
            let a: ScionAddr = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
    }

    #[test]
    fn scion_addr_rejects_malformed() {
        for s in [
            "16-ffaa:0:1002",
            "16-ffaa:0:1002,172.31.43.7",
            "16-ffaa:0:1002,[172.31.43]",
            "16-ffaa:0:1002,[172.31.43.7",
            "16-ffaa:0:1002,[999.31.43.7]",
            "16-ffaa:0:1002,[1.2.3.4.5]",
        ] {
            assert!(s.parse::<ScionAddr>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn host_addr_rejects_plus_and_whitespace() {
        assert!("+1.2.3.4".parse::<HostAddr>().is_err());
        assert!("1. 2.3.4".parse::<HostAddr>().is_err());
    }

    #[test]
    fn iface_none_sentinel() {
        assert!(IfaceId::NONE.is_none());
        assert!(!IfaceId(3).is_none());
    }
}
