//! Beaconing: exhaustive propagation of path-construction beacons (PCBs)
//! over the topology, producing core segments and down segments.
//!
//! Real SCION beaconing is periodic and policy-filtered; in the simulator
//! we compute its fixed point directly: every loop-free beacon path that
//! could be disseminated is enumerated once, bounded by configurable
//! length caps. The result is the same segment corpus a converged
//! SCIONLab control plane exposes to `showpaths`.

use crate::addr::IsdAsn;
use crate::crypto::SymmetricKey;
use crate::segments::{Segment, SegmentKind};
use crate::topology::{AsIndex, LinkKind, Topology};
use std::collections::HashMap;

/// Derives per-AS forwarding keys from a network master secret.
#[derive(Debug, Clone, Copy)]
pub struct KeyProvider {
    master: u64,
}

impl KeyProvider {
    pub fn new(master: u64) -> KeyProvider {
        KeyProvider { master }
    }

    pub fn key(&self, ia: IsdAsn) -> SymmetricKey {
        SymmetricKey::derive(self.master, ia)
    }
}

/// Length caps for beacon propagation (in ASes per segment).
#[derive(Debug, Clone, Copy)]
pub struct BeaconConfig {
    /// Maximum ASes in a core segment.
    pub max_core_len: usize,
    /// Maximum ASes in a down segment.
    pub max_down_len: usize,
    /// Info-field nonce base; segments from the same run share it.
    pub info_base: u64,
}

impl Default for BeaconConfig {
    fn default() -> Self {
        BeaconConfig {
            max_core_len: 5,
            max_down_len: 6,
            info_base: 0x5c10,
        }
    }
}

/// Converged beaconing state: every registered segment.
#[derive(Debug, Clone, Default)]
pub struct BeaconStore {
    /// Core segments keyed by (first AS, last AS) in beacon direction.
    pub core: HashMap<(IsdAsn, IsdAsn), Vec<Segment>>,
    /// Down segments keyed by the leaf (last) AS. Reversing one yields the
    /// leaf's up segment.
    pub down: HashMap<IsdAsn, Vec<Segment>>,
}

impl BeaconStore {
    pub fn num_core_segments(&self) -> usize {
        self.core.values().map(Vec::len).sum()
    }

    pub fn num_down_segments(&self) -> usize {
        self.down.values().map(Vec::len).sum()
    }
}

/// Run beaconing to its fixed point over `topo`.
pub fn run_beaconing(topo: &Topology, keys: &KeyProvider, cfg: &BeaconConfig) -> BeaconStore {
    let mut store = BeaconStore::default();
    let cores: Vec<AsIndex> = topo
        .ases()
        .filter(|(_, n)| n.kind.is_core())
        .map(|(i, _)| i)
        .collect();

    for &origin in &cores {
        let ia = topo.node(origin).ia;
        let info = cfg.info_base ^ (ia.asn.0 << 8) ^ ia.isd.0 as u64;
        let seed = Segment::originate(SegmentKind::Core, info, ia, &keys.key(ia));
        propagate_core(topo, keys, cfg, origin, seed, &mut vec![origin], &mut store);

        let seed = Segment::originate(SegmentKind::Down, info ^ 0xd0, ia, &keys.key(ia));
        propagate_down(topo, keys, cfg, origin, seed, &mut vec![origin], &mut store);
    }
    store
}

/// DFS over core links, registering every simple beacon path of ≥2 ASes.
fn propagate_core(
    topo: &Topology,
    keys: &KeyProvider,
    cfg: &BeaconConfig,
    at: AsIndex,
    seg: Segment,
    visited: &mut Vec<AsIndex>,
    store: &mut BeaconStore,
) {
    if seg.len() >= cfg.max_core_len {
        return;
    }
    let at_ia = topo.node(at).ia;
    for (_, link) in topo.links_of(at) {
        if link.kind != LinkKind::Core {
            continue;
        }
        let next = link.peer_of(at).expect("incident link has peer");
        if visited.contains(&next) {
            continue;
        }
        let next_ia = topo.node(next).ia;
        let extended = seg.extend(
            link.iface_of(at).expect("incident link has iface"),
            &keys.key(at_ia),
            next_ia,
            link.iface_of(next).expect("peer iface"),
            &keys.key(next_ia),
        );
        store
            .core
            .entry((extended.first_ia(), next_ia))
            .or_default()
            .push(extended.clone());
        visited.push(next);
        propagate_core(topo, keys, cfg, next, extended, visited, store);
        visited.pop();
    }
}

/// DFS downward over parent links (parent side = current AS), registering
/// each extension as a down segment for the child it reaches.
fn propagate_down(
    topo: &Topology,
    keys: &KeyProvider,
    cfg: &BeaconConfig,
    at: AsIndex,
    seg: Segment,
    visited: &mut Vec<AsIndex>,
    store: &mut BeaconStore,
) {
    if seg.len() >= cfg.max_down_len {
        return;
    }
    let at_ia = topo.node(at).ia;
    for (_, link) in topo.links_of(at) {
        if link.kind != LinkKind::Parent || link.a != at {
            continue;
        }
        let child = link.b;
        if visited.contains(&child) {
            continue;
        }
        let child_ia = topo.node(child).ia;
        let extended = seg.extend(
            link.a_if,
            &keys.key(at_ia),
            child_ia,
            link.b_if,
            &keys.key(child_ia),
        );
        store
            .down
            .entry(child_ia)
            .or_default()
            .push(extended.clone());
        visited.push(child);
        propagate_down(topo, keys, cfg, child, extended, visited, store);
        visited.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Asn, IsdAsn};
    use crate::geo::GeoLocation;
    use crate::topology::{AsKind, DirAttrs, TopologyBuilder};

    fn ia(isd: u16, c: u16) -> IsdAsn {
        IsdAsn::new(isd, Asn::from_groups(0xffaa, 0, c))
    }

    fn geo(city: &str) -> GeoLocation {
        GeoLocation::new(47.0, 8.0, city, "Testland")
    }

    /// Two ISDs: 1 has core C1 with children L1, L2 (L2 also child of L1);
    /// 2 has core C2 with child L3. Cores linked.
    fn diamond() -> Topology {
        let mut b = TopologyBuilder::new();
        let attrs = || DirAttrs::new(1000.0);
        b.add_as(ia(1, 0x10), AsKind::Core, "C1", "op", geo("c1"))
            .unwrap();
        b.add_as(ia(1, 0x11), AsKind::NonCore, "L1", "op", geo("l1"))
            .unwrap();
        b.add_as(ia(1, 0x12), AsKind::NonCore, "L2", "op", geo("l2"))
            .unwrap();
        b.add_as(ia(2, 0x20), AsKind::Core, "C2", "op", geo("c2"))
            .unwrap();
        b.add_as(ia(2, 0x21), AsKind::NonCore, "L3", "op", geo("l3"))
            .unwrap();
        b.add_link(
            ia(1, 0x10),
            ia(1, 0x11),
            LinkKind::Parent,
            1472,
            attrs(),
            attrs(),
        )
        .unwrap();
        b.add_link(
            ia(1, 0x10),
            ia(1, 0x12),
            LinkKind::Parent,
            1472,
            attrs(),
            attrs(),
        )
        .unwrap();
        b.add_link(
            ia(1, 0x11),
            ia(1, 0x12),
            LinkKind::Parent,
            1472,
            attrs(),
            attrs(),
        )
        .unwrap();
        b.add_link(
            ia(2, 0x20),
            ia(2, 0x21),
            LinkKind::Parent,
            1472,
            attrs(),
            attrs(),
        )
        .unwrap();
        b.add_link(
            ia(1, 0x10),
            ia(2, 0x20),
            LinkKind::Core,
            1472,
            attrs(),
            attrs(),
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn core_segments_cover_both_directions() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
        assert!(store.core.contains_key(&(ia(1, 0x10), ia(2, 0x20))));
        assert!(store.core.contains_key(&(ia(2, 0x20), ia(1, 0x10))));
    }

    #[test]
    fn down_segments_enumerate_all_loop_free_routes() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
        // L2 is reachable from C1 directly and via L1.
        let l2 = &store.down[&ia(1, 0x12)];
        assert_eq!(l2.len(), 2);
        let lens: Vec<usize> = {
            let mut v: Vec<usize> = l2.iter().map(Segment::len).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(lens, vec![2, 3]);
        // L1 has exactly the direct segment.
        assert_eq!(store.down[&ia(1, 0x11)].len(), 1);
        // No cross-ISD down segments.
        assert!(store.down[&ia(2, 0x21)]
            .iter()
            .all(|s| s.first_ia() == ia(2, 0x20)));
    }

    #[test]
    fn all_segments_verify_and_are_loop_free() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
        let all = store
            .core
            .values()
            .flatten()
            .chain(store.down.values().flatten());
        let mut count = 0;
        for seg in all {
            assert!(seg.verify(|ia_| keys.key(ia_)), "segment must verify");
            assert!(!seg.has_loop());
            count += 1;
        }
        assert!(count > 0);
    }

    #[test]
    fn length_caps_bound_propagation() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let cfg = BeaconConfig {
            max_down_len: 2,
            ..BeaconConfig::default()
        };
        let store = run_beaconing(&topo, &keys, &cfg);
        // The 3-AS route C1->L1->L2 is now suppressed.
        assert_eq!(store.down[&ia(1, 0x12)].len(), 1);
    }

    #[test]
    fn segments_record_consistent_interfaces() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
        for seg in store.down.values().flatten() {
            for pair in seg.hops.windows(2) {
                let a = topo.index_of(pair[0].ia).unwrap();
                let (_, link) = topo
                    .link_at_iface(a, pair[0].out_if)
                    .expect("egress resolves");
                assert_eq!(link.peer_of(a).map(|p| topo.node(p).ia), Some(pair[1].ia));
                assert_eq!(
                    link.iface_of(topo.index_of(pair[1].ia).unwrap()),
                    Some(pair[1].in_if)
                );
            }
        }
    }
}
