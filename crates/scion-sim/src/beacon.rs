//! Beaconing: capped propagation of path-construction beacons (PCBs)
//! over the topology, producing core segments and down segments.
//!
//! Real SCION beaconing is periodic and policy-filtered; in the simulator
//! we compute its converged state directly. Beacons propagate level by
//! level (one level = one more AS in the chain), and at each level every
//! (origin, destination) pair keeps at most
//! [`BeaconConfig::beacons_per_pair`] beacons, best-first: shorter chains
//! always win over longer ones (levels are processed in length order and
//! the kept-count accumulates), ties within a level are broken by
//! cumulative propagation delay and then by the canonical hop tuple, so
//! the kept set is a deterministic function of the topology alone — no
//! RNG, no seed, no iteration-order dependence. With the cap at
//! `usize::MAX` (the default) every loop-free beacon path within the
//! length caps is registered, which is exactly the exhaustive fixed
//! point a converged SCIONLab control plane exposes to `showpaths`.

use crate::addr::IsdAsn;
use crate::crypto::SymmetricKey;
use crate::segments::{HopEntry, Segment, SegmentKind};
use crate::topology::{AsIndex, LinkKind, Topology};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

/// Derives per-AS forwarding keys from a network master secret.
#[derive(Debug, Clone, Copy)]
pub struct KeyProvider {
    master: u64,
}

impl KeyProvider {
    pub fn new(master: u64) -> KeyProvider {
        KeyProvider { master }
    }

    pub fn key(&self, ia: IsdAsn) -> SymmetricKey {
        SymmetricKey::derive(self.master, ia)
    }
}

/// Propagation limits for beaconing.
#[derive(Debug, Clone, Copy)]
pub struct BeaconConfig {
    /// Maximum ASes in a core segment.
    pub max_core_len: usize,
    /// Maximum ASes in a down segment.
    pub max_down_len: usize,
    /// Maximum beacons kept (registered and further propagated) per
    /// (origin core, destination AS) pair. Shorter beacons always win
    /// over longer ones; within one length, lower cumulative propagation
    /// delay wins, tie-broken by the canonical hop tuple. `usize::MAX`
    /// recovers the exhaustive fixed point.
    pub beacons_per_pair: usize,
    /// Info-field nonce base; segments from the same run share it.
    pub info_base: u64,
}

impl Default for BeaconConfig {
    fn default() -> Self {
        BeaconConfig {
            max_core_len: 5,
            max_down_len: 6,
            beacons_per_pair: usize::MAX,
            info_base: 0x5c10,
        }
    }
}

/// Converged beaconing state: every registered segment.
#[derive(Debug, Clone, Default)]
pub struct BeaconStore {
    /// Core segments keyed by (first AS, last AS) in beacon direction.
    pub core: HashMap<(IsdAsn, IsdAsn), Vec<Segment>>,
    /// Down segments keyed by the leaf (last) AS. Reversing one yields the
    /// leaf's up segment.
    pub down: HashMap<IsdAsn, Vec<Segment>>,
    /// Beacons dropped by the `beacons_per_pair` cap.
    capped: u64,
}

impl BeaconStore {
    pub fn num_core_segments(&self) -> usize {
        self.core.values().map(Vec::len).sum()
    }

    pub fn num_down_segments(&self) -> usize {
        self.down.values().map(Vec::len).sum()
    }

    /// How many beacons the `beacons_per_pair` cap dropped during
    /// propagation (0 when exhaustive).
    pub fn capped_count(&self) -> u64 {
        self.capped
    }

    /// Bytes held by the interned hop chains, counting each distinct
    /// `Arc` allocation once no matter how many segments (or frontier
    /// copies, or candidate paths) share it.
    pub fn hop_bytes(&self) -> usize {
        let mut seen: HashSet<*const HopEntry> = HashSet::new();
        let mut bytes = 0usize;
        for seg in self
            .core
            .values()
            .flatten()
            .chain(self.down.values().flatten())
        {
            if seen.insert(seg.hops.as_ptr()) {
                bytes += std::mem::size_of_val(&*seg.hops);
            }
        }
        bytes
    }
}

/// Run beaconing to its converged state over `topo`.
pub fn run_beaconing(topo: &Topology, keys: &KeyProvider, cfg: &BeaconConfig) -> BeaconStore {
    let mut store = BeaconStore::default();
    let cores: Vec<AsIndex> = topo
        .ases()
        .filter(|(_, n)| n.kind.is_core())
        .map(|(i, _)| i)
        .collect();

    for &origin in &cores {
        let ia = topo.node(origin).ia;
        let info = cfg.info_base ^ (ia.asn.0 << 8) ^ ia.isd.0 as u64;
        let seed = Segment::originate(SegmentKind::Core, info, ia, &keys.key(ia));
        propagate(topo, keys, origin, seed, cfg, Pass::Core, &mut store);

        let seed = Segment::originate(SegmentKind::Down, info ^ 0xd0, ia, &keys.key(ia));
        propagate(topo, keys, origin, seed, cfg, Pass::Down, &mut store);
    }
    store
}

/// Which link relation a propagation pass walks.
#[derive(Clone, Copy, PartialEq)]
enum Pass {
    /// Core links in either direction → core segments.
    Core,
    /// Parent links, parent side only → down segments.
    Down,
}

/// Canonical, key-independent order on beacon chains: compare hop by hop
/// on (ISD, ASN, ingress, egress). Distinct simple paths always differ
/// in this tuple sequence (interface ids are unique per AS), so combined
/// with destination and delay it totally orders every candidate set.
fn canonical_cmp(a: &Segment, b: &Segment) -> Ordering {
    let key = |h: &HopEntry| (h.ia.isd.0, h.ia.asn.0, h.in_if.0, h.out_if.0);
    a.hops.iter().map(key).cmp(b.hops.iter().map(key))
}

/// Level-wise beacon propagation from one origin: all beacons of length
/// L are extended to length L+1 together, the candidates are ordered
/// deterministically (destination, cumulative delay, canonical hop
/// tuple), and each destination keeps the first `beacons_per_pair` of
/// them — counted across levels, so shorter chains always take
/// precedence. Kept beacons are registered and keep propagating;
/// dropped ones are counted and die.
fn propagate(
    topo: &Topology,
    keys: &KeyProvider,
    origin: AsIndex,
    seed: Segment,
    cfg: &BeaconConfig,
    pass: Pass,
    store: &mut BeaconStore,
) {
    let max_len = match pass {
        Pass::Core => cfg.max_core_len,
        Pass::Down => cfg.max_down_len,
    };
    let mut kept: HashMap<AsIndex, usize> = HashMap::new();
    // (current AS, chain, cumulative propagation delay in ms)
    let mut frontier: Vec<(AsIndex, Segment, f64)> = vec![(origin, seed, 0.0)];
    let mut len = 1;
    while len < max_len && !frontier.is_empty() {
        let mut candidates: Vec<(AsIndex, Segment, f64)> = Vec::new();
        for (at, seg, delay) in &frontier {
            let at_ia = topo.node(*at).ia;
            for (_, link) in topo.links_of(*at) {
                let (next, out_if, in_if) = match pass {
                    Pass::Core => {
                        if link.kind != LinkKind::Core {
                            continue;
                        }
                        let next = link.peer_of(*at).expect("incident link has peer");
                        (
                            next,
                            link.iface_of(*at).expect("incident link has iface"),
                            link.iface_of(next).expect("peer iface"),
                        )
                    }
                    Pass::Down => {
                        if link.kind != LinkKind::Parent || link.a != *at {
                            continue;
                        }
                        (link.b, link.a_if, link.b_if)
                    }
                };
                let next_ia = topo.node(next).ia;
                if seg.hops.iter().any(|h| h.ia == next_ia) {
                    continue; // loop
                }
                let extended =
                    seg.extend(out_if, &keys.key(at_ia), next_ia, in_if, &keys.key(next_ia));
                candidates.push((next, extended, delay + link.propagation_ms));
            }
        }
        candidates.sort_by(|x, y| {
            topo.node(x.0)
                .ia
                .cmp(&topo.node(y.0).ia)
                .then_with(|| x.2.total_cmp(&y.2))
                .then_with(|| canonical_cmp(&x.1, &y.1))
        });
        frontier.clear();
        for (dest, seg, delay) in candidates {
            let n = kept.entry(dest).or_insert(0);
            if *n >= cfg.beacons_per_pair {
                store.capped += 1;
                continue;
            }
            *n += 1;
            match pass {
                Pass::Core => store
                    .core
                    .entry((seg.first_ia(), topo.node(dest).ia))
                    .or_default()
                    .push(seg.clone()),
                Pass::Down => store
                    .down
                    .entry(topo.node(dest).ia)
                    .or_default()
                    .push(seg.clone()),
            }
            frontier.push((dest, seg, delay));
        }
        len += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Asn, IsdAsn};
    use crate::geo::GeoLocation;
    use crate::topology::{AsKind, DirAttrs, TopologyBuilder};

    fn ia(isd: u16, c: u16) -> IsdAsn {
        IsdAsn::new(isd, Asn::from_groups(0xffaa, 0, c))
    }

    fn geo(city: &str) -> GeoLocation {
        GeoLocation::new(47.0, 8.0, city, "Testland")
    }

    /// Two ISDs: 1 has core C1 with children L1, L2 (L2 also child of L1);
    /// 2 has core C2 with child L3. Cores linked.
    fn diamond() -> Topology {
        let mut b = TopologyBuilder::new();
        let attrs = || DirAttrs::new(1000.0);
        b.add_as(ia(1, 0x10), AsKind::Core, "C1", "op", geo("c1"))
            .unwrap();
        b.add_as(ia(1, 0x11), AsKind::NonCore, "L1", "op", geo("l1"))
            .unwrap();
        b.add_as(ia(1, 0x12), AsKind::NonCore, "L2", "op", geo("l2"))
            .unwrap();
        b.add_as(ia(2, 0x20), AsKind::Core, "C2", "op", geo("c2"))
            .unwrap();
        b.add_as(ia(2, 0x21), AsKind::NonCore, "L3", "op", geo("l3"))
            .unwrap();
        b.add_link(
            ia(1, 0x10),
            ia(1, 0x11),
            LinkKind::Parent,
            1472,
            attrs(),
            attrs(),
        )
        .unwrap();
        b.add_link(
            ia(1, 0x10),
            ia(1, 0x12),
            LinkKind::Parent,
            1472,
            attrs(),
            attrs(),
        )
        .unwrap();
        b.add_link(
            ia(1, 0x11),
            ia(1, 0x12),
            LinkKind::Parent,
            1472,
            attrs(),
            attrs(),
        )
        .unwrap();
        b.add_link(
            ia(2, 0x20),
            ia(2, 0x21),
            LinkKind::Parent,
            1472,
            attrs(),
            attrs(),
        )
        .unwrap();
        b.add_link(
            ia(1, 0x10),
            ia(2, 0x20),
            LinkKind::Core,
            1472,
            attrs(),
            attrs(),
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn core_segments_cover_both_directions() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
        assert!(store.core.contains_key(&(ia(1, 0x10), ia(2, 0x20))));
        assert!(store.core.contains_key(&(ia(2, 0x20), ia(1, 0x10))));
    }

    #[test]
    fn down_segments_enumerate_all_loop_free_routes() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
        // L2 is reachable from C1 directly and via L1.
        let l2 = &store.down[&ia(1, 0x12)];
        assert_eq!(l2.len(), 2);
        let lens: Vec<usize> = {
            let mut v: Vec<usize> = l2.iter().map(Segment::len).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(lens, vec![2, 3]);
        // L1 has exactly the direct segment.
        assert_eq!(store.down[&ia(1, 0x11)].len(), 1);
        // No cross-ISD down segments.
        assert!(store.down[&ia(2, 0x21)]
            .iter()
            .all(|s| s.first_ia() == ia(2, 0x20)));
    }

    #[test]
    fn all_segments_verify_and_are_loop_free() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
        let all = store
            .core
            .values()
            .flatten()
            .chain(store.down.values().flatten());
        let mut count = 0;
        for seg in all {
            assert!(seg.verify(|ia_| keys.key(ia_)), "segment must verify");
            assert!(!seg.has_loop());
            count += 1;
        }
        assert!(count > 0);
    }

    #[test]
    fn length_caps_bound_propagation() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let cfg = BeaconConfig {
            max_down_len: 2,
            ..BeaconConfig::default()
        };
        let store = run_beaconing(&topo, &keys, &cfg);
        // The 3-AS route C1->L1->L2 is now suppressed.
        assert_eq!(store.down[&ia(1, 0x12)].len(), 1);
    }

    #[test]
    fn default_cap_is_exhaustive_and_counts_nothing() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
        assert_eq!(store.capped_count(), 0);
        assert!(store.hop_bytes() > 0);
    }

    #[test]
    fn cap_keeps_shortest_beacons_and_counts_drops() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let cfg = BeaconConfig {
            beacons_per_pair: 1,
            ..BeaconConfig::default()
        };
        let store = run_beaconing(&topo, &keys, &cfg);
        // L2 keeps only the direct 2-AS beacon; the 3-AS one via L1 is
        // dropped (shorter beats longer, the count carries across levels).
        let l2 = &store.down[&ia(1, 0x12)];
        assert_eq!(l2.len(), 1);
        assert_eq!(l2[0].len(), 2);
        assert!(l2[0].verify(|ia_| keys.key(ia_)));
        assert_eq!(store.capped_count(), 1);
    }

    #[test]
    fn capped_beaconing_is_deterministic() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let cfg = BeaconConfig {
            beacons_per_pair: 1,
            ..BeaconConfig::default()
        };
        let a = run_beaconing(&topo, &keys, &cfg);
        let b = run_beaconing(&topo, &keys, &cfg);
        assert_eq!(a.core, b.core);
        assert_eq!(a.down, b.down);
        assert_eq!(a.capped_count(), b.capped_count());
    }

    #[test]
    fn segments_record_consistent_interfaces() {
        let topo = diamond();
        let keys = KeyProvider::new(7);
        let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
        for seg in store.down.values().flatten() {
            for pair in seg.hops.windows(2) {
                let a = topo.index_of(pair[0].ia).unwrap();
                let (_, link) = topo
                    .link_at_iface(a, pair[0].out_if)
                    .expect("egress resolves");
                assert_eq!(link.peer_of(a).map(|p| topo.node(p).ia), Some(pair[1].ia));
                assert_eq!(
                    link.iface_of(topo.index_of(pair[1].ia).unwrap()),
                    Some(pair[1].in_if)
                );
            }
        }
    }
}
