//! Declarative, seeded chaos schedules: recurring link flaps, AS-level
//! outages, congestion waves and flaky-server windows, validated up
//! front and compiled onto the network clock.
//!
//! A [`ChaosSchedule`] is plain data (JSON-serializable, so campaigns
//! can check their fault scenario into the repo) describing *stochastic
//! processes* — "this link flaps, staying down 2–8 s and up 20–60 s".
//! [`ChaosSchedule::compile`] expands the processes into a flat, sorted
//! list of [`ChaosEvent`] transitions using only the schedule's own
//! seed, so the same schedule always yields the byte-identical event
//! trace regardless of what the network does. The network applies each
//! transition as its clock passes the event time (see
//! `ScionNetwork::install_chaos`), bumping the fault epoch exactly like
//! a hand-placed `set_link_down` would — which is what lets epoch-aware
//! consumers (compile caches, failover sessions) notice the change
//! without polling.

use crate::addr::{IsdAsn, ScionAddr};
use crate::fault::{
    check_probability, CongestionEpisode, CongestionTarget, FaultError, FaultPlan, ServerBehavior,
};
use crate::topology::{LinkIndex, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Upper bound on compiled transitions per schedule: a schedule whose
/// dwell times are tiny relative to its horizon is a config error, not
/// a reason to allocate without bound.
pub const MAX_TRANSITIONS: usize = 100_000;

/// A schedule that cannot be compiled onto a network.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// A probability or window failed the fault-plan validation rules.
    Fault(FaultError),
    /// A dwell distribution with NaN bounds, `max < min`, or a minimum
    /// below 1 ms (which would let a flap generate unbounded events).
    BadDwell {
        what: &'static str,
        min_ms: f64,
        max_ms: f64,
    },
    /// The horizon must be a positive, finite duration.
    BadHorizon(f64),
    /// Start offsets and durations must be finite and non-negative.
    BadTime { what: &'static str, value: f64 },
    /// No link connects the two ASes in the target topology.
    UnknownLink { a: IsdAsn, b: IsdAsn },
    /// The AS does not exist in the target topology.
    UnknownNode(IsdAsn),
    /// The address is not a registered server in the target topology.
    UnknownServer(ScionAddr),
    /// The expanded schedule exceeds [`MAX_TRANSITIONS`].
    TooManyTransitions(usize),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Fault(e) => write!(f, "{e}"),
            ChaosError::BadDwell {
                what,
                min_ms,
                max_ms,
            } => write!(
                f,
                "{what} dwell must satisfy 1 <= min <= max with finite bounds, \
                 got [{min_ms}, {max_ms}] ms"
            ),
            ChaosError::BadHorizon(h) => {
                write!(
                    f,
                    "schedule horizon must be a positive duration, got {h} ms"
                )
            }
            ChaosError::BadTime { what, value } => {
                write!(f, "{what} must be finite and non-negative, got {value}")
            }
            ChaosError::UnknownLink { a, b } => {
                write!(f, "no link between {a} and {b} in this topology")
            }
            ChaosError::UnknownNode(ia) => write!(f, "no AS {ia} in this topology"),
            ChaosError::UnknownServer(addr) => {
                write!(f, "{addr} is not a registered server in this topology")
            }
            ChaosError::TooManyTransitions(n) => write!(
                f,
                "schedule expands to {n} transitions (limit {MAX_TRANSITIONS}); \
                 widen the dwell times or shorten the horizon"
            ),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<FaultError> for ChaosError {
    fn from(e: FaultError) -> ChaosError {
        ChaosError::Fault(e)
    }
}

/// A uniform dwell-time distribution in milliseconds, sampled once per
/// phase of a recurring fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dwell {
    pub min_ms: f64,
    pub max_ms: f64,
}

impl Dwell {
    /// A degenerate distribution: always exactly `ms`.
    pub fn fixed(ms: f64) -> Dwell {
        Dwell {
            min_ms: ms,
            max_ms: ms,
        }
    }

    pub fn uniform(min_ms: f64, max_ms: f64) -> Dwell {
        Dwell { min_ms, max_ms }
    }

    fn validate(&self, what: &'static str) -> Result<(), ChaosError> {
        if !self.min_ms.is_finite()
            || !self.max_ms.is_finite()
            || self.min_ms < 1.0
            || self.max_ms < self.min_ms
        {
            return Err(ChaosError::BadDwell {
                what,
                min_ms: self.min_ms,
                max_ms: self.max_ms,
            });
        }
        Ok(())
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        self.min_ms + (self.max_ms - self.min_ms) * rng.gen::<f64>()
    }
}

/// A link that flaps for the whole horizon: first failure at
/// `first_down_ms`, then alternating down/up phases with dwell times
/// drawn from the two distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFlap {
    /// The link's endpoints (order irrelevant).
    pub a: IsdAsn,
    pub b: IsdAsn,
    pub first_down_ms: f64,
    /// How long each failure lasts.
    pub down: Dwell,
    /// How long the link stays healthy between failures.
    pub up: Dwell,
}

/// A whole AS goes dark for a fixed window: every path transiting (or
/// terminating in) it blacks out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsOutage {
    pub node: IsdAsn,
    pub start_ms: f64,
    pub duration_ms: f64,
}

/// Recurring partial congestion on an AS: active phases drop packets
/// with `severity` probability, separated by idle phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionWave {
    pub node: IsdAsn,
    /// Drop probability while a wave is active (1.0 = blackout).
    pub severity: f64,
    pub first_ms: f64,
    pub active: Dwell,
    pub idle: Dwell,
}

/// A server that silently drops requests with some probability for a
/// fixed window, then returns to normal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlakyWindow {
    pub server: ScionAddr,
    pub drop_probability: f64,
    pub start_ms: f64,
    pub duration_ms: f64,
}

/// The declarative chaos scenario: seeded stochastic fault processes
/// over a bounded horizon. Compile with [`ChaosSchedule::compile`] (or
/// install directly via `ScionNetwork::install_chaos`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    /// Seed of the dwell-time draws — independent of the network seed,
    /// so one scenario replays identically across differently-seeded
    /// measurement runs.
    pub seed: u64,
    /// End of fault *injection*, ms on the network clock. Heal
    /// transitions may land past the horizon (nothing stays broken).
    pub horizon_ms: f64,
    #[serde(default)]
    pub flaps: Vec<LinkFlap>,
    #[serde(default)]
    pub outages: Vec<AsOutage>,
    #[serde(default)]
    pub waves: Vec<CongestionWave>,
    #[serde(default)]
    pub flaky_servers: Vec<FlakyWindow>,
}

impl ChaosSchedule {
    /// An empty schedule over `horizon_ms` — useful as a builder base.
    pub fn new(seed: u64, horizon_ms: f64) -> ChaosSchedule {
        ChaosSchedule {
            seed,
            horizon_ms,
            flaps: Vec::new(),
            outages: Vec::new(),
            waves: Vec::new(),
            flaky_servers: Vec::new(),
        }
    }

    /// Topology-independent validation: every probability in [0, 1],
    /// every dwell/window sane. Run automatically by [`Self::compile`]
    /// and [`Self::from_json_str`].
    pub fn validate(&self) -> Result<(), ChaosError> {
        if !self.horizon_ms.is_finite() || self.horizon_ms <= 0.0 {
            return Err(ChaosError::BadHorizon(self.horizon_ms));
        }
        let time = |what, value: f64| {
            if !value.is_finite() || value < 0.0 {
                Err(ChaosError::BadTime { what, value })
            } else {
                Ok(())
            }
        };
        for flap in &self.flaps {
            time("link-flap first_down_ms", flap.first_down_ms)?;
            flap.down.validate("link-flap down")?;
            flap.up.validate("link-flap up")?;
        }
        for outage in &self.outages {
            time("AS-outage start_ms", outage.start_ms)?;
            time("AS-outage duration_ms", outage.duration_ms)?;
        }
        for wave in &self.waves {
            check_probability("congestion severity", wave.severity)?;
            time("congestion-wave first_ms", wave.first_ms)?;
            wave.active.validate("congestion-wave active")?;
            wave.idle.validate("congestion-wave idle")?;
        }
        for fw in &self.flaky_servers {
            check_probability("flaky drop probability", fw.drop_probability)?;
            time("flaky-window start_ms", fw.start_ms)?;
            time("flaky-window duration_ms", fw.duration_ms)?;
        }
        Ok(())
    }

    /// Expand the stochastic processes into the flat, time-sorted
    /// transition list the network replays. Deterministic: depends only
    /// on the schedule (incl. its seed) and the topology.
    pub fn compile(&self, topo: &Topology) -> Result<Vec<ChaosEvent>, ChaosError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xc4a0_5c4e_d01e_5eed);
        let mut events: Vec<ChaosEvent> = Vec::new();
        let push = |events: &mut Vec<ChaosEvent>, at_ms: f64, action: ChaosAction| {
            events.push(ChaosEvent { at_ms, action });
            if events.len() > MAX_TRANSITIONS {
                return Err(ChaosError::TooManyTransitions(events.len()));
            }
            Ok(())
        };
        for flap in &self.flaps {
            let link = resolve_link(topo, flap.a, flap.b)?;
            let mut t = flap.first_down_ms;
            while t < self.horizon_ms {
                let down_for = flap.down.sample(&mut rng);
                push(&mut events, t, ChaosAction::LinkDown(flap.a, flap.b, link))?;
                push(
                    &mut events,
                    t + down_for,
                    ChaosAction::LinkUp(flap.a, flap.b, link),
                )?;
                t += down_for + flap.up.sample(&mut rng);
            }
        }
        for outage in &self.outages {
            if topo.index_of(outage.node).is_none() {
                return Err(ChaosError::UnknownNode(outage.node));
            }
            let end = outage.start_ms + outage.duration_ms;
            push(
                &mut events,
                outage.start_ms,
                ChaosAction::OutageStart(outage.node, end),
            )?;
            push(&mut events, end, ChaosAction::OutageEnd(outage.node))?;
        }
        for wave in &self.waves {
            if topo.index_of(wave.node).is_none() {
                return Err(ChaosError::UnknownNode(wave.node));
            }
            let mut t = wave.first_ms;
            while t < self.horizon_ms {
                let active_for = wave.active.sample(&mut rng);
                push(
                    &mut events,
                    t,
                    ChaosAction::WaveStart(wave.node, t + active_for, wave.severity),
                )?;
                push(&mut events, t + active_for, ChaosAction::WaveEnd(wave.node))?;
                t += active_for + wave.idle.sample(&mut rng);
            }
        }
        for fw in &self.flaky_servers {
            if topo.server_as(fw.server).is_none() {
                return Err(ChaosError::UnknownServer(fw.server));
            }
            let behavior = ServerBehavior::flaky(fw.drop_probability)?;
            push(
                &mut events,
                fw.start_ms,
                ChaosAction::ServerSet(fw.server, behavior),
            )?;
            push(
                &mut events,
                fw.start_ms + fw.duration_ms,
                ChaosAction::ServerClear(fw.server),
            )?;
        }
        // Stable sort: same-time transitions keep their generation
        // order, so the trace is a total deterministic order.
        events.sort_by(|x, y| x.at_ms.total_cmp(&y.at_ms));
        Ok(events)
    }

    /// Serialize for checking a scenario into a repo (`examples/`).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("schedules always serialize")
    }

    /// Parse *and validate*: a schedule file with an out-of-range
    /// probability or dwell never reaches a network.
    pub fn from_json_str(s: &str) -> Result<ChaosSchedule, String> {
        let schedule: ChaosSchedule = serde_json::from_str(s).map_err(|e| e.to_string())?;
        schedule.validate().map_err(|e| e.to_string())?;
        Ok(schedule)
    }
}

/// One compiled state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChaosAction {
    /// `(endpoint a, endpoint b, resolved link)` goes down / comes back.
    LinkDown(IsdAsn, IsdAsn, LinkIndex),
    LinkUp(IsdAsn, IsdAsn, LinkIndex),
    /// `(node, end_ms)`: the AS blacks out until `end_ms`.
    OutageStart(IsdAsn, f64),
    OutageEnd(IsdAsn),
    /// `(node, end_ms, severity)`: partial congestion until `end_ms`.
    WaveStart(IsdAsn, f64, f64),
    WaveEnd(IsdAsn),
    ServerSet(ScionAddr, ServerBehavior),
    ServerClear(ScionAddr),
}

impl ChaosAction {
    /// Mutate the fault plan. `at_ms` is the event's scheduled time, so
    /// window bounds (and expiry pruning) are independent of how far
    /// the applying network's clock has already run past the event.
    pub(crate) fn apply(&self, plan: &mut FaultPlan, at_ms: f64) {
        match self {
            ChaosAction::LinkDown(_, _, link) => plan.set_link_down(*link, true),
            ChaosAction::LinkUp(_, _, link) => plan.set_link_down(*link, false),
            ChaosAction::OutageStart(node, end_ms) => plan.add_episode(CongestionEpisode {
                target: CongestionTarget::Node(*node),
                start_ms: at_ms,
                end_ms: *end_ms,
                severity: 1.0,
            }),
            ChaosAction::WaveStart(node, end_ms, severity) => plan.add_episode(CongestionEpisode {
                target: CongestionTarget::Node(*node),
                start_ms: at_ms,
                end_ms: *end_ms,
                severity: *severity,
            }),
            // End transitions only exist to bump the fault epoch at the
            // heal instant (the episode window expires by itself) — and
            // to garbage-collect spent episodes.
            ChaosAction::OutageEnd(_) | ChaosAction::WaveEnd(_) => plan.prune_expired(at_ms),
            ChaosAction::ServerSet(addr, behavior) => plan.set_server(*addr, *behavior),
            ChaosAction::ServerClear(addr) => plan.set_server(*addr, ServerBehavior::Up),
        }
    }
}

impl std::fmt::Display for ChaosAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosAction::LinkDown(a, b, _) => write!(f, "link {a} ~ {b} DOWN"),
            ChaosAction::LinkUp(a, b, _) => write!(f, "link {a} ~ {b} up"),
            ChaosAction::OutageStart(node, end) => {
                write!(f, "AS {node} OUTAGE until {} ms", end.round() as u64)
            }
            ChaosAction::OutageEnd(node) => write!(f, "AS {node} recovered"),
            ChaosAction::WaveStart(node, end, sev) => write!(
                f,
                "AS {node} congestion {}% until {} ms",
                (sev * 100.0).round() as u64,
                end.round() as u64
            ),
            ChaosAction::WaveEnd(node) => write!(f, "AS {node} congestion cleared"),
            ChaosAction::ServerSet(addr, ServerBehavior::Flaky(p)) => {
                write!(f, "server {addr} FLAKY {}%", (p * 100.0).round() as u64)
            }
            ChaosAction::ServerSet(addr, b) => write!(f, "server {addr} set {b:?}"),
            ChaosAction::ServerClear(addr) => write!(f, "server {addr} healthy"),
        }
    }
}

/// A compiled transition: what happens, and when on the network clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    pub at_ms: f64,
    pub action: ChaosAction,
}

/// Human-readable event trace (one line per transition) — the artifact
/// the byte-identical-trace determinism contract is pinned against.
pub fn render_trace(events: &[ChaosEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(events.len() * 48);
    for e in events {
        // Rounded integer timestamps: float Display with a precision is
        // ~10x the cost of u64 Display, and a busy schedule renders
        // hundreds of lines per campaign.
        let _ = writeln!(out, "[{:>10} ms] {}", e.at_ms.round() as u64, e.action);
    }
    out
}

/// The (undirected) link connecting two ASes.
fn resolve_link(topo: &Topology, a: IsdAsn, b: IsdAsn) -> Result<LinkIndex, ChaosError> {
    let ai = topo.index_of(a).ok_or(ChaosError::UnknownNode(a))?;
    let bi = topo.index_of(b).ok_or(ChaosError::UnknownNode(b))?;
    topo.links_of(ai)
        .find(|(_, l)| l.peer_of(ai) == Some(bi))
        .map(|(li, _)| li)
        .ok_or(ChaosError::UnknownLink { a, b })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::scionlab::*;

    fn topo() -> Topology {
        scionlab_topology()
    }

    fn flap_schedule(seed: u64) -> ChaosSchedule {
        let mut s = ChaosSchedule::new(seed, 60_000.0);
        s.flaps.push(LinkFlap {
            a: MY_AS,
            b: ETHZ_AP,
            first_down_ms: 5_000.0,
            down: Dwell::uniform(2_000.0, 8_000.0),
            up: Dwell::uniform(10_000.0, 20_000.0),
        });
        s
    }

    #[test]
    fn compile_is_deterministic_and_sorted() {
        let t = topo();
        let a = flap_schedule(7).compile(&t).unwrap();
        let b = flap_schedule(7).compile(&t).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms);
        }
        assert_eq!(render_trace(&a), render_trace(&b));
        // A different seed draws different dwells.
        let c = flap_schedule(8).compile(&t).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn flaps_alternate_and_every_down_heals() {
        let t = topo();
        let events = flap_schedule(3).compile(&t).unwrap();
        let mut down = 0i32;
        for e in &events {
            match e.action {
                ChaosAction::LinkDown(..) => down += 1,
                ChaosAction::LinkUp(..) => down -= 1,
                _ => panic!("unexpected action in a flap-only schedule"),
            }
            assert!((0..=1).contains(&down), "down/up must alternate");
        }
        assert_eq!(down, 0, "the schedule must heal what it breaks");
    }

    #[test]
    fn schedule_round_trips_through_json_with_validation() {
        let mut s = flap_schedule(11);
        s.outages.push(AsOutage {
            node: AWS_FRANKFURT,
            start_ms: 10_000.0,
            duration_ms: 5_000.0,
        });
        s.waves.push(CongestionWave {
            node: AWS_IRELAND,
            severity: 0.6,
            first_ms: 0.0,
            active: Dwell::fixed(3_000.0),
            idle: Dwell::fixed(9_000.0),
        });
        s.flaky_servers.push(FlakyWindow {
            server: paper_destinations()[0],
            drop_probability: 0.5,
            start_ms: 2_000.0,
            duration_ms: 4_000.0,
        });
        let json = s.to_json_string();
        let back = ChaosSchedule::from_json_str(&json).unwrap();
        assert_eq!(back, s);

        // An out-of-range severity is rejected at parse time.
        let bad = json.replace("0.6", "1.6");
        let err = ChaosSchedule::from_json_str(&bad).unwrap_err();
        assert!(err.contains("[0, 1]"), "{err}");
    }

    #[test]
    fn validation_rejects_nonsense() {
        let t = topo();
        let mut s = flap_schedule(1);
        s.horizon_ms = 0.0;
        assert!(matches!(s.compile(&t), Err(ChaosError::BadHorizon(_))));

        let mut s = flap_schedule(1);
        s.flaps[0].down = Dwell::uniform(0.0, 5.0);
        assert!(matches!(s.compile(&t), Err(ChaosError::BadDwell { .. })));

        let mut s = flap_schedule(1);
        s.flaps[0].first_down_ms = f64::NAN;
        assert!(matches!(s.compile(&t), Err(ChaosError::BadTime { .. })));

        let mut s = flap_schedule(1);
        s.waves.push(CongestionWave {
            node: AWS_IRELAND,
            severity: f64::NAN,
            first_ms: 0.0,
            active: Dwell::fixed(1_000.0),
            idle: Dwell::fixed(1_000.0),
        });
        assert!(matches!(s.compile(&t), Err(ChaosError::Fault(_))));

        // Unknown endpoints are topology errors at compile time.
        let mut s = ChaosSchedule::new(1, 10_000.0);
        s.flaps.push(LinkFlap {
            a: MY_AS,
            b: AWS_IRELAND, // no direct link
            first_down_ms: 0.0,
            down: Dwell::fixed(1_000.0),
            up: Dwell::fixed(1_000.0),
        });
        assert!(matches!(s.compile(&t), Err(ChaosError::UnknownLink { .. })));
    }

    #[test]
    fn tiny_dwells_cannot_explode_the_event_list() {
        let t = topo();
        let mut s = ChaosSchedule::new(1, 1_000_000_000.0);
        s.flaps.push(LinkFlap {
            a: MY_AS,
            b: ETHZ_AP,
            first_down_ms: 0.0,
            down: Dwell::fixed(1.0),
            up: Dwell::fixed(1.0),
        });
        assert!(matches!(
            s.compile(&t),
            Err(ChaosError::TooManyTransitions(_))
        ));
    }

    #[test]
    fn actions_mutate_the_fault_plan() {
        let t = topo();
        let link = resolve_link(&t, MY_AS, ETHZ_AP).unwrap();
        let mut plan = FaultPlan::new();
        ChaosAction::LinkDown(MY_AS, ETHZ_AP, link).apply(&mut plan, 100.0);
        assert!(plan.link_is_down(link));
        ChaosAction::LinkUp(MY_AS, ETHZ_AP, link).apply(&mut plan, 200.0);
        assert!(!plan.link_is_down(link));

        ChaosAction::OutageStart(AWS_FRANKFURT, 500.0).apply(&mut plan, 300.0);
        assert_eq!(plan.node_congestion(AWS_FRANKFURT, 400.0), 1.0);
        assert_eq!(plan.node_congestion(AWS_FRANKFURT, 600.0), 0.0);
        ChaosAction::OutageEnd(AWS_FRANKFURT).apply(&mut plan, 500.0);
        assert_eq!(plan.windows_for_node(AWS_FRANKFURT).count(), 0, "pruned");

        let server = paper_destinations()[0];
        ChaosAction::ServerSet(server, ServerBehavior::Flaky(0.5)).apply(&mut plan, 0.0);
        assert_eq!(plan.server(server), ServerBehavior::Flaky(0.5));
        ChaosAction::ServerClear(server).apply(&mut plan, 0.0);
        assert_eq!(plan.server(server), ServerBehavior::Up);
    }
}
