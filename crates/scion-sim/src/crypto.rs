//! Toy control-plane cryptography: AS key pairs, certificates signed by
//! core ASes, trust-root configurations (TRCs) and hop-field MACs.
//!
//! SCION's control plane authenticates path-construction beacons with
//! per-AS symmetric keys (hop-field MACs) and authenticates ASes with
//! public-key certificates chained to the ISD's core ASes. This module
//! provides the same *structure* — key issuance, certificate chains,
//! chained MAC verification — on top of a small keyed hash.
//!
//! **This is not cryptographically secure.** The keyed hash is a
//! SipHash-style mixer adequate for simulation-grade tamper detection and
//! for exercising verification code paths; it must never be used outside
//! the simulator.

use crate::addr::IsdAsn;
use serde::{Deserialize, Serialize};

/// A 128-bit symmetric key used by an AS to MAC its hop fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymmetricKey(pub [u8; 16]);

impl SymmetricKey {
    /// Derive an AS's forwarding key deterministically from a network
    /// master secret, so repeated simulator constructions agree.
    pub fn derive(master: u64, ia: IsdAsn) -> SymmetricKey {
        let mut out = [0u8; 16];
        let a = mix64(master ^ (ia.isd.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let b = mix64(a ^ ia.asn.0);
        out[..8].copy_from_slice(&a.to_le_bytes());
        out[8..].copy_from_slice(&b.to_le_bytes());
        SymmetricKey(out)
    }
}

/// A MAC tag over a hop field (truncated to 48 bits like SCION's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacTag(pub u64);

/// 64-bit finalizer (splitmix64) used as the core mixing primitive.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Keyed hash of `data` under `key`, truncated to 48 bits.
pub fn keyed_mac(key: &SymmetricKey, data: &[u8]) -> MacTag {
    let k0 = u64::from_le_bytes(key.0[..8].try_into().expect("8 bytes"));
    let k1 = u64::from_le_bytes(key.0[8..].try_into().expect("8 bytes"));
    let mut state = k0 ^ 0x736f_6d65_7073_6575;
    for chunk in data.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        state = mix64(state ^ u64::from_le_bytes(word) ^ k1);
    }
    // Fold in the length to distinguish trailing-zero-padded inputs.
    state = mix64(state ^ (data.len() as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
    MacTag(state & 0xffff_ffff_ffff)
}

/// A simulated public/private key pair. The "public key" is just a mixed
/// image of the private key; signatures are MACs under the private key
/// that verifiers can check because the simulator (like a PKI) exposes the
/// mapping through [`Certificate`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    pub public: u64,
    private: u64,
}

impl KeyPair {
    pub fn derive(master: u64, ia: IsdAsn) -> KeyPair {
        let private = mix64(master ^ mix64(ia.asn.0) ^ ((ia.isd.0 as u64) << 48));
        KeyPair {
            public: mix64(private ^ 0x5ca1_ab1e),
            private,
        }
    }

    /// Sign arbitrary bytes. See module docs: simulation-grade only.
    pub fn sign(&self, data: &[u8]) -> Signature {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&self.private.to_le_bytes());
        key[8..].copy_from_slice(&mix64(self.private).to_le_bytes());
        Signature(keyed_mac(&SymmetricKey(key), data).0)
    }

    /// Verify a signature produced by the key pair with this public key.
    ///
    /// In the simulation, verification recomputes the private key image
    /// registered in the certificate; a real deployment would use
    /// asymmetric crypto. The indirection keeps call sites shaped like
    /// real verification code.
    pub fn verify(&self, data: &[u8], sig: &Signature) -> bool {
        self.sign(data) == *sig
    }
}

/// A signature over certificate or measurement payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature(pub u64);

/// A public-key certificate binding an AS to its public key, signed by a
/// core AS of its ISD (the ISD's root of trust).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    pub subject: IsdAsn,
    pub subject_public: u64,
    pub issuer: IsdAsn,
    pub signature: Signature,
}

impl Certificate {
    /// Issue a certificate for `subject` under the `issuer_keys` of a core AS.
    pub fn issue(
        issuer: IsdAsn,
        issuer_keys: &KeyPair,
        subject: IsdAsn,
        subject_public: u64,
    ) -> Certificate {
        let payload = cert_payload(subject, subject_public, issuer);
        Certificate {
            subject,
            subject_public,
            issuer,
            signature: issuer_keys.sign(&payload),
        }
    }

    /// Check the certificate against the issuer's key pair.
    pub fn verify(&self, issuer_keys: &KeyPair) -> bool {
        let payload = cert_payload(self.subject, self.subject_public, self.issuer);
        issuer_keys.verify(&payload, &self.signature)
    }
}

fn cert_payload(subject: IsdAsn, subject_public: u64, issuer: IsdAsn) -> Vec<u8> {
    let mut v = Vec::with_capacity(32);
    v.extend_from_slice(&subject.isd.0.to_le_bytes());
    v.extend_from_slice(&subject.asn.0.to_le_bytes());
    v.extend_from_slice(&subject_public.to_le_bytes());
    v.extend_from_slice(&issuer.isd.0.to_le_bytes());
    v.extend_from_slice(&issuer.asn.0.to_le_bytes());
    v
}

/// A trust-root configuration: the set of core ASes of one ISD, which act
/// as certificate issuers for every other AS in the ISD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trc {
    pub isd: u16,
    pub cores: Vec<IsdAsn>,
}

impl Trc {
    pub fn is_core(&self, ia: IsdAsn) -> bool {
        self.cores.contains(&ia)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Asn;

    fn ia(isd: u16, c: u16) -> IsdAsn {
        IsdAsn::new(isd, Asn::from_groups(0xffaa, 0, c))
    }

    #[test]
    fn key_derivation_is_deterministic_and_distinct() {
        let a = SymmetricKey::derive(42, ia(16, 0x1002));
        let b = SymmetricKey::derive(42, ia(16, 0x1002));
        let c = SymmetricKey::derive(42, ia(16, 0x1003));
        let d = SymmetricKey::derive(43, ia(16, 0x1002));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn mac_is_48_bits_and_input_sensitive() {
        let k = SymmetricKey::derive(1, ia(19, 0x1303));
        let m1 = keyed_mac(&k, b"hop field one");
        let m2 = keyed_mac(&k, b"hop field two");
        assert!(m1.0 <= 0xffff_ffff_ffff);
        assert_ne!(m1, m2);
    }

    #[test]
    fn mac_distinguishes_zero_padded_lengths() {
        let k = SymmetricKey::derive(1, ia(19, 0x1303));
        assert_ne!(keyed_mac(&k, &[0u8; 7]), keyed_mac(&k, &[0u8; 8]));
        assert_ne!(keyed_mac(&k, b""), keyed_mac(&k, &[0u8]));
    }

    #[test]
    fn mac_depends_on_key() {
        let k1 = SymmetricKey::derive(1, ia(19, 0x1303));
        let k2 = SymmetricKey::derive(1, ia(19, 0x1304));
        assert_ne!(keyed_mac(&k1, b"data"), keyed_mac(&k2, b"data"));
    }

    #[test]
    fn signature_verifies_and_rejects_tampering() {
        let kp = KeyPair::derive(7, ia(17, 0x1101));
        let sig = kp.sign(b"measurement batch");
        assert!(kp.verify(b"measurement batch", &sig));
        assert!(!kp.verify(b"measurement botch", &sig));
        let other = KeyPair::derive(7, ia(17, 0x1102));
        assert!(!other.verify(b"measurement batch", &sig));
    }

    #[test]
    fn certificate_chain_verifies() {
        let core = ia(17, 0x1101);
        let leaf = ia(17, 0x1107);
        let core_keys = KeyPair::derive(99, core);
        let leaf_keys = KeyPair::derive(99, leaf);
        let cert = Certificate::issue(core, &core_keys, leaf, leaf_keys.public);
        assert!(cert.verify(&core_keys));
        // Tampered subject key fails verification.
        let mut bad = cert.clone();
        bad.subject_public ^= 1;
        assert!(!bad.verify(&core_keys));
    }

    #[test]
    fn trc_core_membership() {
        let trc = Trc {
            isd: 17,
            cores: vec![ia(17, 0x1101)],
        };
        assert!(trc.is_core(ia(17, 0x1101)));
        assert!(!trc.is_core(ia(17, 0x1107)));
    }
}
