//! Flow-level bandwidth-test simulation (the substrate under
//! `scion-bwtestclient`).
//!
//! A bandwidth test is a constant-rate UDP packet train. Simulating every
//! packet of a 150 Mbps / 64-byte train (~300 k packets/s) through the
//! event queue would dominate run time without adding fidelity, so flows
//! use a time-sliced fluid model with per-slice stochastic sampling.
//! Per slice and per hop, a packet train experiences:
//!
//! 1. **Router pps limits** — software border routers forward a bounded
//!    packet rate regardless of size; small-packet trains saturate this
//!    first (this is what pulls 64-byte tests below MTU tests at the
//!    12 Mbps target, Fig. 7).
//! 2. **Fluid capacity loss** — offered wire bitrate above the available
//!    capacity (capacity × (1 − sampled background)) is dropped.
//! 3. **Overload penalty, biased against large packets** — under
//!    sustained overload, drop-tail queues in *bytes* refuse large
//!    packets disproportionately (a large packet needs more contiguous
//!    free buffer). This collapses MTU-sized goodput below the 64-byte
//!    goodput at the 150 Mbps target — the reversal of Fig. 8.
//! 4. **Residual loss and congestion windows** — as for probes.

use crate::dataplane::{sample_util, CompiledPath, WireHop};
use crate::fault::ServerBehavior;
use rand::rngs::StdRng;
use rand::Rng;

/// Per-direction parameters of a bandwidth test (the `3,1000,?,12Mbps`
/// tuples of `scion-bwtestclient -cs / -sc`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowParams {
    /// Test duration in seconds (bwtester caps this at 10 s).
    pub duration_s: f64,
    /// Payload bytes per packet (≥ 4).
    pub packet_bytes: u32,
    /// Target *payload* bandwidth in Mbps.
    pub target_mbps: f64,
}

impl FlowParams {
    /// Packets per second needed to hit the target at this packet size.
    pub fn target_pps(&self) -> f64 {
        self.target_mbps * 1e6 / (self.packet_bytes as f64 * 8.0)
    }

    /// Total packets the train comprises (bwtester's `?` wildcard).
    pub fn num_packets(&self) -> u64 {
        (self.target_pps() * self.duration_s).round() as u64
    }
}

/// Outcome of one direction of a bandwidth test.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcome {
    /// Payload bandwidth actually attempted by the sender, Mbps. Lower
    /// than the target when the sender itself is pps-bound.
    pub attempted_mbps: f64,
    /// Payload bandwidth received at the far end, Mbps.
    pub achieved_mbps: f64,
    /// Packet loss fraction of the train.
    pub loss: f64,
    pub packets_sent: u64,
    pub packets_received: u64,
}

/// Sender-side packet rate limit (packets/s).
///
/// bwtester is a user-space UDP sender; on the small VMs SCIONLab ASes
/// run on it cannot sustain hundreds of kpps. 45 kpps is a deliberately
/// round calibration: it never binds MTU-sized trains (12.8 kpps at
/// 150 Mbps) and always binds 64-byte trains at 150 Mbps (293 kpps).
pub const SENDER_PPS_CAP: f64 = 45_000.0;

/// Overload penalty strength (mechanism 3 above).
const OVERLOAD_K: f64 = 1.35;
/// Overload penalty exponent on the excess ratio.
const OVERLOAD_ALPHA: f64 = 1.3;
/// Reference size for the penalty's size bias (bytes on the wire).
const SIZE_REF: f64 = 1600.0;

/// Number of time slices a flow is integrated over.
const SLICES: usize = 30;

/// Simulate one direction of a bandwidth test over `hops`.
///
/// `header` is the per-packet wire overhead (SCION + UDP headers),
/// `start_ms` the network-clock time the train starts.
pub fn simulate_flow(
    hops: &[WireHop],
    params: &FlowParams,
    header: u32,
    start_ms: f64,
    rng: &mut StdRng,
) -> FlowOutcome {
    let wire_bytes = (params.packet_bytes + header) as f64;
    let slice_s = params.duration_s / SLICES as f64;
    let offered_pps = params.target_pps().min(SENDER_PPS_CAP);
    // Sender jitter: ±3 % pacing noise.
    let mut sent_total = 0.0f64;
    let mut recv_total = 0.0f64;

    for slice in 0..SLICES {
        let t_ms = start_ms + slice as f64 * slice_s * 1000.0;
        let pacing = 1.0 + (rng.gen::<f64>() - 0.5) * 0.06;
        let mut pps = offered_pps * pacing;
        sent_total += pps * slice_s;

        for hop in hops {
            if hop.down {
                pps = 0.0;
                break;
            }
            // (1) router pps limit.
            if let Some(cap) = hop.pps_cap {
                // The cap is shared with a little background chatter.
                let eff_cap = cap * (0.95 + rng.gen::<f64>() * 0.1);
                if pps > eff_cap {
                    pps = eff_cap;
                }
            }
            // (2) fluid capacity.
            let util = sample_util(hop.background_util, rng);
            let avail_mbps = hop.capacity_mbps * (1.0 - util);
            let offered_mbps = pps * wire_bytes * 8.0 / 1e6;
            let mut keep = 1.0f64;
            if offered_mbps > avail_mbps && avail_mbps > 0.0 {
                keep *= avail_mbps / offered_mbps;
                // (3) overload penalty, biased against large packets.
                let excess = offered_mbps / avail_mbps - 1.0;
                let p_size =
                    (OVERLOAD_K * excess.powf(OVERLOAD_ALPHA) * (wire_bytes / SIZE_REF)).min(0.97);
                keep *= 1.0 - p_size;
            } else if avail_mbps <= 0.0 {
                keep = 0.0;
            }
            // (4) residual loss + congestion windows.
            keep *= 1.0 - hop.loss_at(t_ms);
            pps *= keep;
        }
        recv_total += pps * slice_s;
    }

    let packets_sent = sent_total.round() as u64;
    let packets_received = recv_total.round().min(sent_total.round()) as u64;
    let payload_bits = params.packet_bytes as f64 * 8.0;
    FlowOutcome {
        attempted_mbps: sent_total * payload_bits / params.duration_s / 1e6,
        achieved_mbps: recv_total * payload_bits / params.duration_s / 1e6,
        loss: if sent_total > 0.0 {
            (1.0 - recv_total / sent_total).max(0.0)
        } else {
            0.0
        },
        packets_sent,
        packets_received,
    }
}

/// Run a full bandwidth test: client→server over the forward hops and
/// server→client over the reverse hops. Returns `(cs, sc)` outcomes, or
/// `None` when the server is down or answers garbage (the caller maps
/// this to the tool-level error the paper's suite must handle).
pub fn bwtest(
    path: &CompiledPath,
    cs: &FlowParams,
    sc: &FlowParams,
    header: u32,
    start_ms: f64,
    rng: &mut StdRng,
) -> Option<(FlowOutcome, FlowOutcome)> {
    match path.server {
        ServerBehavior::Down | ServerBehavior::BadResponse => return None,
        ServerBehavior::Flaky(p) => {
            if rng.gen::<f64>() < p {
                return None;
            }
        }
        ServerBehavior::Up => {}
    }
    let cs_out = simulate_flow(&path.fwd, cs, header, start_ms, rng);
    let sc_out = simulate_flow(
        &path.rev,
        sc,
        header,
        start_ms + cs.duration_s * 1000.0,
        rng,
    );
    Some((cs_out, sc_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn hop(capacity: f64, bg: f64, pps_cap: Option<f64>) -> WireHop {
        WireHop {
            prop_ms: 10.0,
            capacity_mbps: capacity,
            background_util: bg,
            jitter_ms: 0.1,
            base_loss: 0.001,
            pps_cap,
            episodes: Vec::new(),
            down: false,
            mtu: 1472,
        }
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn mean_achieved(hops: &[WireHop], params: &FlowParams, seeds: std::ops::Range<u64>) -> f64 {
        let n = (seeds.end - seeds.start) as f64;
        seeds
            .map(|s| simulate_flow(hops, params, 130, 0.0, &mut rng(s)).achieved_mbps)
            .sum::<f64>()
            / n
    }

    fn mtu_params(target: f64) -> FlowParams {
        FlowParams {
            duration_s: 3.0,
            packet_bytes: 1400,
            target_mbps: target,
        }
    }

    fn small_params(target: f64) -> FlowParams {
        FlowParams {
            duration_s: 3.0,
            packet_bytes: 64,
            target_mbps: target,
        }
    }

    /// A user-access-like bottleneck: 80 Mbps, 25 % background, 18 kpps
    /// router, followed by a clean fat backbone hop.
    fn access_path() -> Vec<WireHop> {
        vec![hop(80.0, 0.25, Some(18_000.0)), hop(2000.0, 0.3, None)]
    }

    #[test]
    fn target_pps_and_packet_count() {
        let p = small_params(12.0);
        assert!((p.target_pps() - 23_437.5).abs() < 1.0);
        assert_eq!(p.num_packets(), (p.target_pps() * 3.0).round() as u64);
    }

    #[test]
    fn uncongested_mtu_flow_achieves_target() {
        let a = mean_achieved(&access_path(), &mtu_params(12.0), 0..20);
        assert!((10.5..12.2).contains(&a), "got {a}");
    }

    #[test]
    fn small_packets_fall_below_mtu_at_low_target() {
        // Fig. 7 shape: at the 12 Mbps target, 64 B < MTU.
        let small = mean_achieved(&access_path(), &small_params(12.0), 0..20);
        let big = mean_achieved(&access_path(), &mtu_params(12.0), 0..20);
        assert!(small < big - 1.0, "small {small} vs big {big}");
        assert!(small > 4.0, "small packets still move data: {small}");
    }

    #[test]
    fn reversal_at_high_target() {
        // Fig. 8 shape: at the 150 Mbps target, 64 B > MTU.
        let small = mean_achieved(&access_path(), &small_params(150.0), 0..20);
        let big = mean_achieved(&access_path(), &mtu_params(150.0), 0..20);
        assert!(small > big + 1.0, "small {small} vs big {big}");
    }

    #[test]
    fn high_target_mtu_is_congestion_collapsed() {
        let low = mean_achieved(&access_path(), &mtu_params(12.0), 0..20);
        let high = mean_achieved(&access_path(), &mtu_params(150.0), 0..20);
        assert!(
            high < low,
            "150 Mbps target must achieve less than 12 Mbps target: {high} vs {low}"
        );
    }

    #[test]
    fn sender_cap_limits_small_packet_attempt() {
        let p = small_params(150.0);
        let out = simulate_flow(&access_path(), &p, 130, 0.0, &mut rng(1));
        // 293 kpps requested, 45 kpps sent → ~23 Mbps payload attempted.
        assert!(out.attempted_mbps < 30.0, "{}", out.attempted_mbps);
        assert!(out.attempted_mbps > 15.0, "{}", out.attempted_mbps);
    }

    #[test]
    fn down_hop_kills_flow() {
        let mut hops = access_path();
        hops[1].down = true;
        let out = simulate_flow(&hops, &mtu_params(12.0), 130, 0.0, &mut rng(2));
        assert_eq!(out.achieved_mbps, 0.0);
        assert!(out.loss > 0.99);
    }

    #[test]
    fn congestion_window_covering_flow_drops_it() {
        let mut hops = access_path();
        hops[0].episodes.push((0.0, 10_000.0, 1.0));
        let out = simulate_flow(&hops, &mtu_params(12.0), 130, 0.0, &mut rng(3));
        assert_eq!(out.achieved_mbps, 0.0);
    }

    #[test]
    fn bwtest_respects_server_behavior() {
        let fwd = access_path();
        let rev = access_path();
        let mut path = CompiledPath {
            fwd,
            rev,
            server: ServerBehavior::Down,
            hop_count: 3,
            links: Vec::new(),
        };
        assert!(bwtest(
            &path,
            &mtu_params(12.0),
            &mtu_params(12.0),
            130,
            0.0,
            &mut rng(4)
        )
        .is_none());
        path.server = ServerBehavior::BadResponse;
        assert!(bwtest(
            &path,
            &mtu_params(12.0),
            &mtu_params(12.0),
            130,
            0.0,
            &mut rng(5)
        )
        .is_none());
        path.server = ServerBehavior::Up;
        let (cs, sc) = bwtest(
            &path,
            &mtu_params(12.0),
            &mtu_params(12.0),
            130,
            0.0,
            &mut rng(6),
        )
        .unwrap();
        assert!(cs.achieved_mbps > 0.0 && sc.achieved_mbps > 0.0);
    }

    #[test]
    fn asymmetric_directions_show_up_in_bwtest() {
        // Upstream 60 Mbps, downstream 200 Mbps.
        let up = vec![hop(60.0, 0.25, Some(18_000.0))];
        let down = vec![hop(200.0, 0.25, Some(25_000.0))];
        let path = CompiledPath {
            fwd: up,
            rev: down,
            server: ServerBehavior::Up,
            hop_count: 2,
            links: Vec::new(),
        };
        let mut cs_sum = 0.0;
        let mut sc_sum = 0.0;
        for s in 0..20 {
            let (cs, sc) = bwtest(
                &path,
                &mtu_params(150.0),
                &mtu_params(150.0),
                130,
                0.0,
                &mut rng(s),
            )
            .unwrap();
            cs_sum += cs.achieved_mbps;
            sc_sum += sc.achieved_mbps;
        }
        assert!(
            sc_sum > cs_sum,
            "downstream {sc_sum} must beat upstream {cs_sum}"
        );
    }

    #[test]
    fn loss_accounting_is_consistent() {
        let out = simulate_flow(&access_path(), &mtu_params(150.0), 130, 0.0, &mut rng(7));
        assert!(out.packets_received <= out.packets_sent);
        let implied = 1.0 - out.packets_received as f64 / out.packets_sent as f64;
        assert!((implied - out.loss).abs() < 0.02);
    }
}
