//! Data plane: turns an authorized [`ScionPath`] plus the current fault
//! state into per-hop wire parameters, then drives packets (SCMP probes)
//! or flows (bandwidth tests) across them.
//!
//! Paths are *compiled* once per operation: every hop's propagation
//! delay, capacity, background utilization, jitter, loss and congestion
//! windows are resolved into plain data ([`WireHop`]), so the simulation
//! inner loops touch no topology structures.

pub mod flows;
pub mod scmp;

use crate::fault::{FaultPlan, ServerBehavior};
use crate::path::ScionPath;
use crate::pathserver::{validate_structure, PathError};
use crate::topology::{LinkIndex, Topology};
use rand::Rng;

/// SCION + UDP header overhead for a path of `hop_count` ASes, in bytes.
///
/// The SCION common header and address headers are ~60 B and each hop
/// field adds 12 B; bwtester payloads ride in UDP (8 B). The exact
/// numbers matter less than the *shape*: per-packet overhead is large
/// relative to 64 B payloads and negligible relative to MTU payloads —
/// the asymmetry behind the paper's Fig. 7.
pub fn header_bytes(hop_count: usize) -> u32 {
    60 + 12 * hop_count as u32 + 8
}

/// One link traversal in one direction, fully resolved.
#[derive(Debug, Clone)]
pub struct WireHop {
    /// One-way propagation delay, ms.
    pub prop_ms: f64,
    /// Link capacity in this direction, Mbps.
    pub capacity_mbps: f64,
    /// Mean background utilization (0..1).
    pub background_util: f64,
    /// Per-packet jitter half-width, ms.
    pub jitter_ms: f64,
    /// Residual random loss probability.
    pub base_loss: f64,
    /// Router pps limit in this direction, if any.
    pub pps_cap: Option<f64>,
    /// Congestion windows `(start_ms, end_ms, severity)` affecting this
    /// hop (from link episodes and node episodes at the receiving AS).
    pub episodes: Vec<(f64, f64, f64)>,
    /// Link administratively down: all packets dropped.
    pub down: bool,
    /// Link MTU in bytes.
    pub mtu: u32,
}

impl WireHop {
    /// Total drop severity from congestion windows active at `t_ms`.
    pub fn congestion_at(&self, t_ms: f64) -> f64 {
        self.episodes
            .iter()
            .filter(|(s, e, _)| t_ms >= *s && t_ms < *e)
            .map(|(_, _, sev)| *sev)
            .fold(0.0, f64::max)
    }

    /// Per-packet drop probability at `t_ms`, excluding queueing effects.
    pub fn loss_at(&self, t_ms: f64) -> f64 {
        if self.down {
            return 1.0;
        }
        let c = self.congestion_at(t_ms);
        1.0 - (1.0 - self.base_loss) * (1.0 - c)
    }

    /// Serialization delay for a packet of `bytes`, ms.
    pub fn serialization_ms(&self, bytes: u32) -> f64 {
        serialization_ms(bytes, self.capacity_mbps)
    }
}

/// Serialization delay of `bytes` at `capacity_mbps`, in ms.
pub fn serialization_ms(bytes: u32, capacity_mbps: f64) -> f64 {
    if capacity_mbps <= 0.0 {
        return f64::INFINITY;
    }
    (bytes as f64 * 8.0) / (capacity_mbps * 1000.0)
}

/// Sample an instantaneous utilization around `base` (truncated normal,
/// σ = 0.08, clamped to [0, 0.98]).
pub fn sample_util<R: Rng>(base: f64, rng: &mut R) -> f64 {
    // Box-Muller-free approximation: sum of three uniforms has a
    // bell-shaped distribution with variance 3·(1/12); scale to σ≈0.08.
    let z: f64 = (0..3).map(|_| rng.gen::<f64>()).sum::<f64>() - 1.5;
    (base + z * 0.16).clamp(0.0, 0.98)
}

/// A path compiled against the topology and fault state: forward and
/// reverse wire hops plus the destination server's behaviour.
#[derive(Debug, Clone)]
pub struct CompiledPath {
    pub fwd: Vec<WireHop>,
    pub rev: Vec<WireHop>,
    pub server: ServerBehavior,
    /// Number of ASes on the path.
    pub hop_count: usize,
    /// The traversed links, in forward order — lets
    /// [`CompiledPath::still_valid`] re-check the fault-dependent
    /// inputs without resolving the topology again.
    pub links: Vec<LinkIndex>,
}

impl CompiledPath {
    /// Path MTU (minimum across links); `None` for an empty compile.
    pub fn mtu(&self) -> Option<u32> {
        self.fwd.iter().map(|h| h.mtu).min()
    }

    /// Whether this artifact is still exactly what [`compile_wire`]
    /// would produce for `path` under `faults`: the per-link down bits,
    /// the congestion windows touching each hop, and the destination
    /// server behaviour all match what was baked in. Topology
    /// attributes are static, so a `true` verdict lets the compile
    /// cache re-tag the entry after an unrelated fault mutation instead
    /// of recompiling — chaos transitions elsewhere in the network stay
    /// off this route's data-plane cost. Uses the link indices recorded
    /// at compile time, so the check never touches the topology.
    pub fn still_valid(
        &self,
        faults: &FaultPlan,
        path: &ScionPath,
        server: ServerBehavior,
    ) -> bool {
        let n = path.hops.len().wrapping_sub(1);
        if self.server != server
            || path.hops.len() < 2
            || self.fwd.len() != n
            || self.links.len() != n
        {
            return false;
        }
        for i in 0..n {
            let from_ia = path.hops[i].ia;
            let to_ia = path.hops[i + 1].ia;
            let li = self.links[i];
            if faults.link_is_down(li) != self.fwd[i].down {
                return false;
            }
            // Same windows, in the same order `compile_wire` collects
            // them: link episodes, then the entered AS, then the
            // endpoint AS on the edge hop.
            let same = |stored: &[(f64, f64, f64)],
                        enter: crate::addr::IsdAsn,
                        endpoint: Option<crate::addr::IsdAsn>| {
                let mut it = stored.iter();
                faults
                    .windows_for_link(li)
                    .chain(faults.windows_for_node(enter))
                    .chain(
                        endpoint
                            .into_iter()
                            .flat_map(|ia| faults.windows_for_node(ia)),
                    )
                    .all(|w| it.next() == Some(&w))
                    && it.next().is_none()
            };
            if !same(&self.fwd[i].episodes, to_ia, (i == 0).then_some(from_ia))
                || !same(
                    &self.rev[n - 1 - i].episodes,
                    from_ia,
                    (i == n - 1).then_some(to_ia),
                )
            {
                return false;
            }
        }
        true
    }
}

/// Compile `path` into wire hops under `faults`. The destination server
/// behaviour is looked up for `server_host` within the last AS.
///
/// Fails when the path is structurally invalid; MAC verification is the
/// path server's job ([`crate::pathserver::PathServer::validate`]) and is
/// expected to have been done by the caller.
pub fn compile_path(
    topo: &Topology,
    faults: &FaultPlan,
    path: &ScionPath,
    server: ServerBehavior,
) -> Result<CompiledPath, PathError> {
    validate_structure(topo, path)?;
    compile_wire(topo, faults, path, server)
}

/// [`compile_path`] without the structural re-validation: the fast path
/// for callers that already hold a cached validation verdict for this
/// exact route (see the network's compile cache).
pub fn compile_wire(
    topo: &Topology,
    faults: &FaultPlan,
    path: &ScionPath,
    server: ServerBehavior,
) -> Result<CompiledPath, PathError> {
    if path.hops.len() < 2 {
        return Err(PathError::Malformed);
    }
    let mut fwd = Vec::with_capacity(path.hops.len() - 1);
    let mut rev = Vec::with_capacity(path.hops.len() - 1);
    let mut links = Vec::with_capacity(path.hops.len() - 1);
    for i in 0..path.hops.len() - 1 {
        let from_ia = path.hops[i].ia;
        let to_ia = path.hops[i + 1].ia;
        let from = topo
            .index_of(from_ia)
            .ok_or(PathError::UnknownAs(from_ia))?;
        let (li, link) = topo
            .link_at_iface(from, path.hops[i].egress)
            .ok_or(PathError::BrokenAdjacency(i))?;
        let to = link.peer_of(from).ok_or(PathError::BrokenAdjacency(i))?;
        links.push(li);

        // Congestion windows: the link's own episodes plus node episodes
        // at the AS the packet enters over this hop. The sending
        // endpoint's own AS is additionally charged on the first hop so
        // congestion at the source is not invisible.
        let collect = |enter_ia, first_ia: Option<crate::addr::IsdAsn>| {
            let mut eps: Vec<(f64, f64, f64)> = faults.windows_for_link(li).collect();
            eps.extend(faults.windows_for_node(enter_ia));
            if let Some(src_ia) = first_ia {
                eps.extend(faults.windows_for_node(src_ia));
            }
            eps
        };
        let fwd_eps = collect(to_ia, (i == 0).then_some(from_ia));
        let rev_eps = collect(from_ia, (i == path.hops.len() - 2).then_some(to_ia));

        let ab = link.attrs_from(from).expect("from is an endpoint");
        let ba = link.attrs_from(to).expect("to is an endpoint");
        let down = faults.link_is_down(li);
        fwd.push(WireHop {
            prop_ms: link.propagation_ms,
            capacity_mbps: ab.capacity_mbps,
            background_util: ab.background_util,
            jitter_ms: ab.jitter_ms,
            base_loss: ab.base_loss,
            pps_cap: ab.pps_cap,
            episodes: fwd_eps,
            down,
            mtu: link.mtu,
        });
        rev.push(WireHop {
            prop_ms: link.propagation_ms,
            capacity_mbps: ba.capacity_mbps,
            background_util: ba.background_util,
            jitter_ms: ba.jitter_ms,
            base_loss: ba.base_loss,
            pps_cap: ba.pps_cap,
            episodes: rev_eps,
            down,
            mtu: link.mtu,
        });
    }
    rev.reverse();
    Ok(CompiledPath {
        fwd,
        rev,
        server,
        hop_count: path.hops.len(),
        links,
    })
}
