//! SCMP probes: the packet-level machinery behind `scion ping` and
//! `scion traceroute`, run on the discrete-event engine.
//!
//! Each probe is a chain of per-hop arrival events; a hop either drops
//! the packet (residual loss, outage, congestion window) or delays it by
//! propagation + serialization + queueing + jitter and forwards it. The
//! destination's [`ServerBehavior`] decides whether an echo reply is
//! generated; the reply walks the reverse hops the same way.

use crate::dataplane::{sample_util, CompiledPath, WireHop};
use crate::des::{Engine, SimTime};
use crate::fault::ServerBehavior;
use rand::rngs::StdRng;
use rand::Rng;

/// Options of one SCMP echo campaign (one `scion ping` invocation).
#[derive(Debug, Clone, Copy)]
pub struct ProbeOptions {
    /// Number of echo requests (`-c`).
    pub count: u32,
    /// Inter-probe interval in ms (`--interval`).
    pub interval_ms: f64,
    /// Echo payload size in bytes.
    pub payload_bytes: u32,
    /// Per-probe timeout in ms; replies later than this count as lost.
    pub timeout_ms: f64,
}

impl Default for ProbeOptions {
    fn default() -> Self {
        // `scion ping {dst} -c 30 --interval 0.1s` — the paper's exact
        // invocation — with the tool's default 1 s timeout.
        ProbeOptions {
            count: 30,
            interval_ms: 100.0,
            payload_bytes: 8,
            timeout_ms: 1000.0,
        }
    }
}

/// Outcome of one echo campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeOutcome {
    pub sent: u32,
    /// RTT in ms per probe; `None` = lost or timed out.
    pub rtts_ms: Vec<Option<f64>>,
}

impl ProbeOutcome {
    pub fn received(&self) -> u32 {
        self.rtts_ms.iter().filter(|r| r.is_some()).count() as u32
    }

    /// Loss fraction in [0, 1].
    pub fn loss(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        1.0 - self.received() as f64 / self.sent as f64
    }

    /// Mean RTT over received probes (ms).
    pub fn avg_rtt_ms(&self) -> Option<f64> {
        let v: Vec<f64> = self.rtts_ms.iter().flatten().copied().collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    pub fn min_rtt_ms(&self) -> Option<f64> {
        self.rtts_ms
            .iter()
            .flatten()
            .copied()
            .fold(None, |m, r| Some(m.map_or(r, |m: f64| m.min(r))))
    }

    pub fn max_rtt_ms(&self) -> Option<f64> {
        self.rtts_ms
            .iter()
            .flatten()
            .copied()
            .fold(None, |m, r| Some(m.map_or(r, |m: f64| m.max(r))))
    }

    /// Population standard deviation of received RTTs ("mdev").
    pub fn mdev_ms(&self) -> Option<f64> {
        let v: Vec<f64> = self.rtts_ms.iter().flatten().copied().collect();
        if v.is_empty() {
            return None;
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        Some((v.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt())
    }
}

/// Per-simulation state threaded through the event engine.
struct ProbeSim {
    rng: StdRng,
    /// Completion time (network-clock ms) per probe, if it made it back.
    done: Vec<Option<f64>>,
}

/// One in-flight packet's itinerary: remaining hop parameters, flattened
/// to owned data so event closures are `'static`.
#[derive(Clone)]
struct Itinerary {
    hops: std::sync::Arc<Vec<WireHop>>,
    next: usize,
    probe: usize,
    size: u32,
    /// Reverse hops to walk after the server echoes, if any.
    reply: Option<std::sync::Arc<Vec<WireHop>>>,
    server: ServerBehavior,
}

/// Run one echo campaign over a compiled path, with the network clock at
/// `start_ms`. Deterministic for a given `rng`.
pub fn ping(path: &CompiledPath, opts: &ProbeOptions, start_ms: f64, rng: StdRng) -> ProbeOutcome {
    run_probes(
        std::sync::Arc::new(path.fwd.clone()),
        Some(std::sync::Arc::new(path.rev.clone())),
        path.server,
        opts,
        start_ms,
        rng,
    )
}

/// Probe a path prefix (used by traceroute): walk `upto` forward hops,
/// turn around at that router, and walk the same hops back. Border
/// routers always respond (server behaviour does not apply).
pub fn probe_prefix(
    path: &CompiledPath,
    upto: usize,
    opts: &ProbeOptions,
    start_ms: f64,
    rng: StdRng,
) -> ProbeOutcome {
    let fwd: Vec<WireHop> = path.fwd[..upto].to_vec();
    let rev: Vec<WireHop> = path.rev[path.rev.len() - upto..].to_vec();
    run_probes(
        std::sync::Arc::new(fwd),
        Some(std::sync::Arc::new(rev)),
        ServerBehavior::Up,
        opts,
        start_ms,
        rng,
    )
}

fn run_probes(
    fwd: std::sync::Arc<Vec<WireHop>>,
    rev: Option<std::sync::Arc<Vec<WireHop>>>,
    server: ServerBehavior,
    opts: &ProbeOptions,
    start_ms: f64,
    rng: StdRng,
) -> ProbeOutcome {
    let mut engine: Engine<ProbeSim> = Engine::new();
    let mut sim = ProbeSim {
        rng,
        done: vec![None; opts.count as usize],
    };
    for i in 0..opts.count as usize {
        let at = SimTime::from_ms(start_ms + i as f64 * opts.interval_ms);
        let itinerary = Itinerary {
            hops: fwd.clone(),
            next: 0,
            probe: i,
            size: opts.payload_bytes + 48, // SCMP + SCION header floor
            reply: rev.clone(),
            server,
        };
        engine.schedule_at(at, move |s, e| forward(itinerary, s, e));
    }
    engine.run_to_completion(&mut sim);
    let timeout = opts.timeout_ms;
    let rtts_ms = sim
        .done
        .iter()
        .enumerate()
        .map(|(i, d)| {
            d.map(|t| t - (start_ms + i as f64 * opts.interval_ms))
                .filter(|rtt| *rtt <= timeout)
        })
        .collect();
    ProbeOutcome {
        sent: opts.count,
        rtts_ms,
    }
}

/// Process a packet's arrival at its next hop.
fn forward(mut it: Itinerary, sim: &mut ProbeSim, engine: &mut Engine<ProbeSim>) {
    let now_ms = engine.now().as_ms();
    if it.next >= it.hops.len() {
        // Arrived at the terminal AS of this direction.
        match it.reply.take() {
            Some(rev) => {
                // Server-side handling before echoing.
                match it.server {
                    ServerBehavior::Down => return,
                    ServerBehavior::Flaky(p) => {
                        if sim.rng.gen::<f64>() < p {
                            return;
                        }
                    }
                    // BadResponse still echoes SCMP (the failure shows up
                    // at the application layer, not the probe layer).
                    ServerBehavior::BadResponse | ServerBehavior::Up => {}
                }
                it.hops = rev;
                it.next = 0;
                // Negligible server turnaround delay (tenths of ms).
                let turnaround = 0.05 + sim.rng.gen::<f64>() * 0.1;
                engine.schedule_in((turnaround * 1e6) as u64, move |s, e| forward(it, s, e));
            }
            None => {
                sim.done[it.probe] = Some(now_ms);
            }
        }
        return;
    }

    let hop = &it.hops[it.next];
    // Drop checks: outage, residual loss, congestion windows.
    if sim.rng.gen::<f64>() < hop.loss_at(now_ms) {
        return;
    }
    // Delay: propagation + serialization + queueing + jitter.
    let util = sample_util(hop.background_util, &mut sim.rng);
    let queue_ms = hop.serialization_ms(hop.mtu) * (util / (1.0 - util)).min(50.0);
    let jitter = (sim.rng.gen::<f64>() * 2.0 - 1.0) * hop.jitter_ms;
    let delay_ms = (hop.prop_ms + hop.serialization_ms(it.size) + queue_ms + jitter).max(0.01);
    it.next += 1;
    engine.schedule_in((delay_ms * 1e6) as u64, move |s, e| forward(it, s, e));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn hop(prop_ms: f64, loss: f64) -> WireHop {
        WireHop {
            prop_ms,
            capacity_mbps: 1000.0,
            background_util: 0.2,
            jitter_ms: 0.05,
            base_loss: loss,
            pps_cap: None,
            episodes: Vec::new(),
            down: false,
            mtu: 1472,
        }
    }

    fn compiled(hops: Vec<WireHop>) -> CompiledPath {
        let rev = hops.iter().cloned().rev().collect();
        CompiledPath {
            hop_count: hops.len() + 1,
            fwd: hops,
            rev,
            server: ServerBehavior::Up,
            links: Vec::new(),
        }
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn clean_path_returns_all_probes() {
        let path = compiled(vec![hop(5.0, 0.0), hop(10.0, 0.0)]);
        let out = ping(&path, &ProbeOptions::default(), 0.0, rng(1));
        assert_eq!(out.sent, 30);
        assert_eq!(out.received(), 30);
        assert_eq!(out.loss(), 0.0);
        // RTT ≈ 2 × 15 ms plus small noise.
        let avg = out.avg_rtt_ms().unwrap();
        assert!((28.0..40.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn rtt_scales_with_propagation() {
        let near = ping(
            &compiled(vec![hop(2.0, 0.0)]),
            &ProbeOptions::default(),
            0.0,
            rng(2),
        );
        let far = ping(
            &compiled(vec![hop(80.0, 0.0)]),
            &ProbeOptions::default(),
            0.0,
            rng(2),
        );
        assert!(far.avg_rtt_ms().unwrap() > near.avg_rtt_ms().unwrap() + 100.0);
    }

    #[test]
    fn down_server_loses_everything() {
        let mut path = compiled(vec![hop(5.0, 0.0)]);
        path.server = ServerBehavior::Down;
        let out = ping(&path, &ProbeOptions::default(), 0.0, rng(3));
        assert_eq!(out.received(), 0);
        assert_eq!(out.loss(), 1.0);
        assert_eq!(out.avg_rtt_ms(), None);
    }

    #[test]
    fn flaky_server_loses_a_fraction() {
        let mut path = compiled(vec![hop(5.0, 0.0)]);
        path.server = ServerBehavior::Flaky(0.5);
        let opts = ProbeOptions {
            count: 200,
            ..ProbeOptions::default()
        };
        let out = ping(&path, &opts, 0.0, rng(4));
        let loss = out.loss();
        assert!((0.35..0.65).contains(&loss), "loss {loss}");
    }

    #[test]
    fn congestion_window_blacks_out_probes_inside_it() {
        let mut h = hop(5.0, 0.0);
        // Window covers probes sent in [0, 1500) ms of a 30×100 ms train.
        h.episodes.push((0.0, 1500.0, 1.0));
        let path = compiled(vec![h]);
        let out = ping(&path, &ProbeOptions::default(), 0.0, rng(5));
        // Probes 0..15 die, 15..30 survive (modulo in-flight boundary).
        assert!(
            out.received() >= 14 && out.received() <= 16,
            "{}",
            out.received()
        );
        assert!(out.rtts_ms[0].is_none());
        assert!(out.rtts_ms[29].is_some());
    }

    #[test]
    fn lossy_hop_produces_partial_loss() {
        let path = compiled(vec![hop(5.0, 0.10)]);
        let opts = ProbeOptions {
            count: 300,
            ..ProbeOptions::default()
        };
        let out = ping(&path, &opts, 0.0, rng(6));
        // Two traversals (there and back) of a 10 % hop ≈ 19 % loss.
        let loss = out.loss();
        assert!((0.10..0.30).contains(&loss), "loss {loss}");
    }

    #[test]
    fn timeout_converts_slow_replies_to_loss() {
        let path = compiled(vec![hop(700.0, 0.0)]);
        let opts = ProbeOptions {
            timeout_ms: 1000.0,
            ..ProbeOptions::default()
        };
        let out = ping(&path, &opts, 0.0, rng(7));
        assert_eq!(out.received(), 0, "1400 ms RTT must exceed the 1 s timeout");
    }

    #[test]
    fn probe_prefix_walks_partial_path() {
        let path = compiled(vec![hop(5.0, 0.0), hop(50.0, 0.0), hop(100.0, 0.0)]);
        let opts = ProbeOptions {
            count: 5,
            ..ProbeOptions::default()
        };
        let one = probe_prefix(&path, 1, &opts, 0.0, rng(8));
        let three = probe_prefix(&path, 3, &opts, 0.0, rng(8));
        assert!(one.avg_rtt_ms().unwrap() < 20.0);
        assert!(three.avg_rtt_ms().unwrap() > 300.0);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let path = compiled(vec![hop(20.0, 0.02)]);
        let out = ping(&path, &ProbeOptions::default(), 0.0, rng(9));
        let (min, avg, max) = (
            out.min_rtt_ms().unwrap(),
            out.avg_rtt_ms().unwrap(),
            out.max_rtt_ms().unwrap(),
        );
        assert!(min <= avg && avg <= max);
        assert!(out.mdev_ms().unwrap() >= 0.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let path = compiled(vec![hop(10.0, 0.05), hop(30.0, 0.02)]);
        let a = ping(&path, &ProbeOptions::default(), 0.0, rng(42));
        let b = ping(&path, &ProbeOptions::default(), 0.0, rng(42));
        assert_eq!(a, b);
    }
}
