//! Minimal discrete-event simulation (DES) core: simulated time and a
//! monotonic event queue.
//!
//! The data plane (packet forwarding, queueing, probe scheduling) runs on
//! this engine. Events are closures keyed by a [`SimTime`]; ties are broken
//! by insertion order so runs are fully deterministic for a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds since simulation start.
///
/// Nanosecond resolution keeps serialization delays of small packets on
/// fast links (≈ 50 ns for 64 B at 10 Gbps) representable without
/// floating-point drift in the event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_ms(ms: f64) -> SimTime {
        SimTime((ms * 1_000_000.0).round().max(0.0) as u64)
    }

    pub fn from_secs(s: f64) -> SimTime {
        SimTime::from_ms(s * 1000.0)
    }

    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating addition of a duration in nanoseconds.
    pub fn plus_ns(self, ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(ns))
    }

    pub fn plus_ms(self, ms: f64) -> SimTime {
        self.plus_ns((ms * 1_000_000.0).round().max(0.0) as u64)
    }
}

/// The callback fired when an event's time arrives.
type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Engine<S>)>;

/// A scheduled event: fire time, tie-breaking sequence number, callback.
struct Event<S> {
    at: SimTime,
    seq: u64,
    run: EventFn<S>,
}

impl<S> PartialEq for Event<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Event<S> {}
impl<S> PartialOrd for Event<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Event<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event engine, generic over the simulation state `S`.
///
/// Handlers receive `&mut S` and `&mut Engine<S>` so they can schedule
/// follow-up events. The engine never goes backwards in time: events
/// scheduled in the past are clamped to "now".
pub struct Engine<S> {
    queue: BinaryHeap<Event<S>>,
    now: SimTime,
    next_seq: u64,
    executed: u64,
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<S> Engine<S> {
    pub fn new() -> Engine<S> {
        Engine {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            executed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (diagnostics / perf counters).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` to run at absolute time `at` (clamped to now).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut S, &mut Engine<S>) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Event {
            at,
            seq,
            run: Box::new(f),
        });
    }

    /// Schedule `f` to run `delay_ns` nanoseconds from now.
    pub fn schedule_in<F>(&mut self, delay_ns: u64, f: F)
    where
        F: FnOnce(&mut S, &mut Engine<S>) + 'static,
    {
        self.schedule_at(self.now.plus_ns(delay_ns), f);
    }

    /// Run events until the queue is empty or `until` is reached
    /// (events at exactly `until` still run). Returns the number of
    /// events executed by this call.
    pub fn run_until(&mut self, state: &mut S, until: SimTime) -> u64 {
        let mut count = 0;
        while let Some(ev) = self.queue.peek() {
            if ev.at > until {
                break;
            }
            let ev = self.queue.pop().expect("peeked event exists");
            debug_assert!(ev.at >= self.now, "time must be monotonic");
            self.now = ev.at;
            (ev.run)(state, self);
            self.executed += 1;
            count += 1;
        }
        // Advance the clock to the horizon even if the queue drained early,
        // so successive run_until calls compose predictably.
        if self.now < until {
            self.now = until;
        }
        count
    }

    /// Run all pending events to completion (including events they spawn).
    pub fn run_to_completion(&mut self, state: &mut S) -> u64 {
        let mut count = 0;
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.at >= self.now);
            self.now = ev.at;
            (ev.run)(state, self);
            self.executed += 1;
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions_roundtrip() {
        let t = SimTime::from_ms(12.5);
        assert_eq!(t.0, 12_500_000);
        assert!((t.as_ms() - 12.5).abs() < 1e-9);
        assert!((SimTime::from_secs(3.0).as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn events_run_in_time_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        engine.schedule_at(SimTime(300), |s: &mut Vec<u32>, _| s.push(3));
        engine.schedule_at(SimTime(100), |s: &mut Vec<u32>, _| s.push(1));
        engine.schedule_at(SimTime(200), |s: &mut Vec<u32>, _| s.push(2));
        engine.run_to_completion(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        for i in 0..10 {
            engine.schedule_at(SimTime(50), move |s: &mut Vec<u32>, _| s.push(i));
        }
        engine.run_to_completion(&mut log);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        engine.schedule_at(
            SimTime(10),
            |_s: &mut Vec<u64>, e: &mut Engine<Vec<u64>>| {
                e.schedule_in(5, |s: &mut Vec<u64>, e2: &mut Engine<Vec<u64>>| {
                    s.push(e2.now().0);
                });
            },
        );
        engine.run_to_completion(&mut log);
        assert_eq!(log, vec![15]);
        assert_eq!(engine.executed(), 2);
    }

    #[test]
    fn run_until_respects_horizon_and_advances_clock() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        engine.schedule_at(SimTime(100), |s: &mut Vec<u32>, _| s.push(1));
        engine.schedule_at(SimTime(1000), |s: &mut Vec<u32>, _| s.push(2));
        let n = engine.run_until(&mut log, SimTime(500));
        assert_eq!(n, 1);
        assert_eq!(log, vec![1]);
        assert_eq!(engine.now(), SimTime(500));
        assert_eq!(engine.pending(), 1);
        engine.run_until(&mut log, SimTime(1000));
        assert_eq!(log, vec![1, 2]);
    }

    #[test]
    fn ten_thousand_event_cascade_is_ordered_and_counted() {
        // Each event schedules the next: a long causal chain exercising
        // heap behaviour under sustained push/pop.
        fn step(n: u64, s: &mut Vec<u64>, e: &mut Engine<Vec<u64>>) {
            s.push(e.now().0);
            if n > 0 {
                e.schedule_in(3, move |s, e| step(n - 1, s, e));
            }
        }
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        engine.schedule_at(SimTime(0), |s: &mut Vec<u64>, e: &mut Engine<Vec<u64>>| {
            step(9_999, s, e)
        });
        engine.run_to_completion(&mut log);
        assert_eq!(log.len(), 10_000);
        assert_eq!(engine.executed(), 10_000);
        assert_eq!(*log.last().unwrap(), 3 * 9_999);
        assert!(log.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn interleaved_run_until_and_scheduling() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        for t in [5u64, 15, 25, 35] {
            engine.schedule_at(SimTime(t), move |s: &mut Vec<u64>, _| s.push(t));
        }
        // Drain in two windows, scheduling more in between.
        engine.run_until(&mut log, SimTime(20));
        engine.schedule_at(SimTime(22), |s: &mut Vec<u64>, _| s.push(22));
        engine.run_until(&mut log, SimTime(100));
        assert_eq!(log, vec![5, 15, 22, 25, 35]);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        engine.schedule_at(
            SimTime(100),
            |_s: &mut Vec<u64>, e: &mut Engine<Vec<u64>>| {
                // Scheduling "in the past" runs at the current time instead.
                e.schedule_at(
                    SimTime(10),
                    |s: &mut Vec<u64>, e2: &mut Engine<Vec<u64>>| {
                        s.push(e2.now().0);
                    },
                );
            },
        );
        engine.run_to_completion(&mut log);
        assert_eq!(log, vec![100]);
    }
}
