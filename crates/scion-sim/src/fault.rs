//! Fault and congestion injection: server behaviours, link outages and
//! time-windowed congestion episodes.
//!
//! The paper's test-suite has to survive servers that are down, servers
//! that answer with errors, and transient congestion that blacks out
//! whole groups of paths (its Fig. 9 shows paths 2_16–2_23 at 100 % loss
//! during one episode). This module is the control surface experiments
//! use to provoke those situations deterministically.

use crate::addr::{IsdAsn, ScionAddr};
use crate::topology::LinkIndex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// How a destination server responds to probes and bandwidth tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum ServerBehavior {
    /// Normal operation.
    #[default]
    Up,
    /// Unreachable: every probe times out (100 % loss).
    Down,
    /// The server responds, but with a malformed/error payload; clients
    /// must treat the measurement as failed rather than crash.
    BadResponse,
    /// Drops each request independently with the given probability.
    Flaky(f64),
}

/// A time window during which a node or link direction is saturated.
/// Packets crossing the congested element during the window are dropped
/// with probability [`CongestionEpisode::severity`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionEpisode {
    pub target: CongestionTarget,
    /// Window start, in network-clock milliseconds.
    pub start_ms: f64,
    /// Window end (exclusive), in network-clock milliseconds.
    pub end_ms: f64,
    /// Drop probability while active (1.0 = total blackout).
    pub severity: f64,
}

impl CongestionEpisode {
    pub fn active_at(&self, t_ms: f64) -> bool {
        t_ms >= self.start_ms && t_ms < self.end_ms
    }
}

/// What a congestion episode saturates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CongestionTarget {
    /// The whole AS: every packet transiting (or terminating in) it.
    Node(IsdAsn),
    /// One link, both directions.
    Link(LinkIndex),
}

/// Mutable fault state of a running network.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    servers: HashMap<ScionAddr, ServerBehavior>,
    episodes: Vec<CongestionEpisode>,
    links_down: HashSet<LinkIndex>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn set_server(&mut self, addr: ScionAddr, behavior: ServerBehavior) {
        self.servers.insert(addr, behavior);
    }

    pub fn server(&self, addr: ScionAddr) -> ServerBehavior {
        self.servers.get(&addr).copied().unwrap_or_default()
    }

    pub fn add_episode(&mut self, ep: CongestionEpisode) {
        self.episodes.push(ep);
    }

    pub fn clear_episodes(&mut self) {
        self.episodes.clear();
    }

    pub fn set_link_down(&mut self, link: LinkIndex, down: bool) {
        if down {
            self.links_down.insert(link);
        } else {
            self.links_down.remove(&link);
        }
    }

    pub fn link_is_down(&self, link: LinkIndex) -> bool {
        self.links_down.contains(&link)
    }

    /// Highest severity among episodes covering `node` at time `t_ms`
    /// (0.0 when none).
    pub fn node_congestion(&self, node: IsdAsn, t_ms: f64) -> f64 {
        self.episodes
            .iter()
            .filter(|e| e.target == CongestionTarget::Node(node) && e.active_at(t_ms))
            .map(|e| e.severity)
            .fold(0.0, f64::max)
    }

    /// Highest severity among episodes covering `link` at time `t_ms`.
    pub fn link_congestion(&self, link: LinkIndex, t_ms: f64) -> f64 {
        self.episodes
            .iter()
            .filter(|e| e.target == CongestionTarget::Link(link) && e.active_at(t_ms))
            .map(|e| e.severity)
            .fold(0.0, f64::max)
    }

    /// Congestion windows `(start_ms, end_ms, severity)` targeting `link`.
    pub fn windows_for_link(&self, link: LinkIndex) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.episodes
            .iter()
            .filter(move |e| e.target == CongestionTarget::Link(link))
            .map(|e| (e.start_ms, e.end_ms, e.severity))
    }

    /// Congestion windows `(start_ms, end_ms, severity)` targeting `node`.
    pub fn windows_for_node(&self, node: IsdAsn) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.episodes
            .iter()
            .filter(move |e| e.target == CongestionTarget::Node(node))
            .map(|e| (e.start_ms, e.end_ms, e.severity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Asn, HostAddr};

    fn ia(isd: u16, c: u16) -> IsdAsn {
        IsdAsn::new(isd, Asn::from_groups(0xffaa, 0, c))
    }

    #[test]
    fn default_server_behavior_is_up() {
        let plan = FaultPlan::new();
        let addr = ScionAddr::new(ia(16, 2), HostAddr::new(1, 2, 3, 4));
        assert_eq!(plan.server(addr), ServerBehavior::Up);
    }

    #[test]
    fn server_behavior_overrides() {
        let mut plan = FaultPlan::new();
        let addr = ScionAddr::new(ia(16, 2), HostAddr::new(1, 2, 3, 4));
        plan.set_server(addr, ServerBehavior::Down);
        assert_eq!(plan.server(addr), ServerBehavior::Down);
        plan.set_server(addr, ServerBehavior::Flaky(0.25));
        assert_eq!(plan.server(addr), ServerBehavior::Flaky(0.25));
    }

    #[test]
    fn episode_window_is_half_open() {
        let ep = CongestionEpisode {
            target: CongestionTarget::Node(ia(16, 7)),
            start_ms: 100.0,
            end_ms: 200.0,
            severity: 1.0,
        };
        assert!(!ep.active_at(99.9));
        assert!(ep.active_at(100.0));
        assert!(ep.active_at(199.9));
        assert!(!ep.active_at(200.0));
    }

    #[test]
    fn node_congestion_takes_max_severity() {
        let mut plan = FaultPlan::new();
        let node = ia(16, 7);
        for sev in [0.4, 0.9, 0.2] {
            plan.add_episode(CongestionEpisode {
                target: CongestionTarget::Node(node),
                start_ms: 0.0,
                end_ms: 1000.0,
                severity: sev,
            });
        }
        assert_eq!(plan.node_congestion(node, 500.0), 0.9);
        assert_eq!(plan.node_congestion(node, 1500.0), 0.0);
        assert_eq!(plan.node_congestion(ia(16, 1), 500.0), 0.0);
    }

    #[test]
    fn link_state_toggles() {
        let mut plan = FaultPlan::new();
        let l = LinkIndex(3);
        assert!(!plan.link_is_down(l));
        plan.set_link_down(l, true);
        assert!(plan.link_is_down(l));
        plan.set_link_down(l, false);
        assert!(!plan.link_is_down(l));
    }
}
