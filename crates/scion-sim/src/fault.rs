//! Fault and congestion injection: server behaviours, link outages and
//! time-windowed congestion episodes.
//!
//! The paper's test-suite has to survive servers that are down, servers
//! that answer with errors, and transient congestion that blacks out
//! whole groups of paths (its Fig. 9 shows paths 2_16–2_23 at 100 % loss
//! during one episode). This module is the control surface experiments
//! use to provoke those situations deterministically.

use crate::addr::{IsdAsn, ScionAddr};
use crate::topology::LinkIndex;
use serde::{json::Value, Deserialize, Serialize};
use std::collections::HashMap;

/// A fault plan that cannot mean anything: probabilities outside [0, 1]
/// (or NaN) would silently clamp or, worse, never drop / always drop.
/// Rejected at construction and at deserialization.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// `what` names the field (e.g. "flaky drop probability"); `value`
    /// is the rejected number (possibly NaN).
    InvalidProbability { what: &'static str, value: f64 },
    /// A congestion window whose bounds are NaN or end < start.
    InvalidWindow { start_ms: f64, end_ms: f64 },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::InvalidProbability { what, value } => {
                write!(f, "{what} must be a finite value in [0, 1], got {value}")
            }
            FaultError::InvalidWindow { start_ms, end_ms } => write!(
                f,
                "congestion window must satisfy start <= end with finite bounds, \
                 got [{start_ms}, {end_ms})"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// Validate a probability-typed field: finite and within [0, 1].
pub fn check_probability(what: &'static str, value: f64) -> Result<(), FaultError> {
    if value.is_nan() || !(0.0..=1.0).contains(&value) {
        return Err(FaultError::InvalidProbability { what, value });
    }
    Ok(())
}

/// How a destination server responds to probes and bandwidth tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub enum ServerBehavior {
    /// Normal operation.
    #[default]
    Up,
    /// Unreachable: every probe times out (100 % loss).
    Down,
    /// The server responds, but with a malformed/error payload; clients
    /// must treat the measurement as failed rather than crash.
    BadResponse,
    /// Drops each request independently with the given probability.
    Flaky(f64),
}

impl ServerBehavior {
    /// Validating constructor for [`ServerBehavior::Flaky`].
    pub fn flaky(p: f64) -> Result<ServerBehavior, FaultError> {
        check_probability("flaky drop probability", p)?;
        Ok(ServerBehavior::Flaky(p))
    }

    /// Reject behaviours whose probability field is out of range.
    pub fn validate(&self) -> Result<(), FaultError> {
        match self {
            ServerBehavior::Flaky(p) => check_probability("flaky drop probability", *p),
            _ => Ok(()),
        }
    }
}

// Manual impl (instead of derive) so a deserialized plan is validated:
// `{"Flaky": 1.5}` must fail to parse, not lurk until the data plane
// rolls dice against it.
impl Deserialize for ServerBehavior {
    fn from_jval(v: &Value) -> Result<Self, String> {
        let b = match v {
            Value::String(s) => match s.as_str() {
                "Up" => ServerBehavior::Up,
                "Down" => ServerBehavior::Down,
                "BadResponse" => ServerBehavior::BadResponse,
                other => return Err(format!("unknown ServerBehavior variant {other}")),
            },
            Value::Object(m) => match m.iter().next() {
                Some((k, payload)) if k == "Flaky" => {
                    ServerBehavior::Flaky(f64::from_jval(payload)?)
                }
                Some((k, _)) => return Err(format!("unknown ServerBehavior variant {k}")),
                None => return Err("empty enum object".to_string()),
            },
            other => return Err(format!("cannot deserialize ServerBehavior from {other:?}")),
        };
        b.validate().map_err(|e| e.to_string())?;
        Ok(b)
    }
}

/// A time window during which a node or link direction is saturated.
/// Packets crossing the congested element during the window are dropped
/// with probability [`CongestionEpisode::severity`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CongestionEpisode {
    pub target: CongestionTarget,
    /// Window start, in network-clock milliseconds.
    pub start_ms: f64,
    /// Window end (exclusive), in network-clock milliseconds.
    pub end_ms: f64,
    /// Drop probability while active (1.0 = total blackout).
    pub severity: f64,
}

impl CongestionEpisode {
    /// Validating constructor: severity within [0, 1], sane window.
    pub fn new(
        target: CongestionTarget,
        start_ms: f64,
        end_ms: f64,
        severity: f64,
    ) -> Result<CongestionEpisode, FaultError> {
        let ep = CongestionEpisode {
            target,
            start_ms,
            end_ms,
            severity,
        };
        ep.validate()?;
        Ok(ep)
    }

    pub fn validate(&self) -> Result<(), FaultError> {
        check_probability("congestion severity", self.severity)?;
        if !self.start_ms.is_finite() || !self.end_ms.is_finite() || self.end_ms < self.start_ms {
            return Err(FaultError::InvalidWindow {
                start_ms: self.start_ms,
                end_ms: self.end_ms,
            });
        }
        Ok(())
    }

    pub fn active_at(&self, t_ms: f64) -> bool {
        t_ms >= self.start_ms && t_ms < self.end_ms
    }
}

// Manual impl so `"severity": NaN` / out-of-range values are rejected at
// the parse boundary, mirroring the derived field-by-field shape.
impl Deserialize for CongestionEpisode {
    fn from_jval(v: &Value) -> Result<Self, String> {
        let obj = v
            .as_object()
            .ok_or_else(|| format!("expected object for CongestionEpisode, got {v:?}"))?;
        let field = |name: &str| {
            obj.get(name)
                .ok_or_else(|| format!("missing field {name} in CongestionEpisode"))
        };
        let ep = CongestionEpisode {
            target: CongestionTarget::from_jval(field("target")?)?,
            start_ms: f64::from_jval(field("start_ms")?)?,
            end_ms: f64::from_jval(field("end_ms")?)?,
            severity: f64::from_jval(field("severity")?)?,
        };
        ep.validate().map_err(|e| e.to_string())?;
        Ok(ep)
    }
}

/// What a congestion episode saturates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CongestionTarget {
    /// The whole AS: every packet transiting (or terminating in) it.
    Node(IsdAsn),
    /// One link, both directions.
    Link(LinkIndex),
}

/// Mutable fault state of a running network.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    servers: HashMap<ScionAddr, ServerBehavior>,
    episodes: Vec<CongestionEpisode>,
    /// Down-link bitset indexed by `LinkIndex` (one bit per link,
    /// grown on demand) — link state flips every chaos flap transition,
    /// so membership must be a shift and a mask, not a hash.
    links_down: Vec<u64>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn set_server(&mut self, addr: ScionAddr, behavior: ServerBehavior) {
        self.servers.insert(addr, behavior);
    }

    pub fn server(&self, addr: ScionAddr) -> ServerBehavior {
        self.servers.get(&addr).copied().unwrap_or_default()
    }

    pub fn add_episode(&mut self, ep: CongestionEpisode) {
        self.episodes.push(ep);
    }

    pub fn clear_episodes(&mut self) {
        self.episodes.clear();
    }

    /// Drop episodes whose window already ended at `now_ms`. Long chaos
    /// schedules add and retire many episodes; pruning keeps the
    /// congestion scans O(live episodes) instead of O(history).
    pub fn prune_expired(&mut self, now_ms: f64) {
        self.episodes.retain(|e| e.end_ms > now_ms);
    }

    pub fn set_link_down(&mut self, link: LinkIndex, down: bool) {
        let (word, bit) = (link.0 as usize / 64, link.0 % 64);
        if down {
            if word >= self.links_down.len() {
                self.links_down.resize(word + 1, 0);
            }
            self.links_down[word] |= 1 << bit;
        } else if let Some(w) = self.links_down.get_mut(word) {
            *w &= !(1 << bit);
        }
    }

    pub fn link_is_down(&self, link: LinkIndex) -> bool {
        self.links_down
            .get(link.0 as usize / 64)
            .is_some_and(|w| w & (1 << (link.0 % 64)) != 0)
    }

    /// Highest severity among episodes covering `node` at time `t_ms`
    /// (0.0 when none).
    pub fn node_congestion(&self, node: IsdAsn, t_ms: f64) -> f64 {
        self.episodes
            .iter()
            .filter(|e| e.target == CongestionTarget::Node(node) && e.active_at(t_ms))
            .map(|e| e.severity)
            .fold(0.0, f64::max)
    }

    /// Highest severity among episodes covering `link` at time `t_ms`.
    pub fn link_congestion(&self, link: LinkIndex, t_ms: f64) -> f64 {
        self.episodes
            .iter()
            .filter(|e| e.target == CongestionTarget::Link(link) && e.active_at(t_ms))
            .map(|e| e.severity)
            .fold(0.0, f64::max)
    }

    /// Congestion windows `(start_ms, end_ms, severity)` targeting `link`.
    pub fn windows_for_link(&self, link: LinkIndex) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.episodes
            .iter()
            .filter(move |e| e.target == CongestionTarget::Link(link))
            .map(|e| (e.start_ms, e.end_ms, e.severity))
    }

    /// Congestion windows `(start_ms, end_ms, severity)` targeting `node`.
    pub fn windows_for_node(&self, node: IsdAsn) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.episodes
            .iter()
            .filter(move |e| e.target == CongestionTarget::Node(node))
            .map(|e| (e.start_ms, e.end_ms, e.severity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Asn, HostAddr};

    fn ia(isd: u16, c: u16) -> IsdAsn {
        IsdAsn::new(isd, Asn::from_groups(0xffaa, 0, c))
    }

    #[test]
    fn default_server_behavior_is_up() {
        let plan = FaultPlan::new();
        let addr = ScionAddr::new(ia(16, 2), HostAddr::new(1, 2, 3, 4));
        assert_eq!(plan.server(addr), ServerBehavior::Up);
    }

    #[test]
    fn server_behavior_overrides() {
        let mut plan = FaultPlan::new();
        let addr = ScionAddr::new(ia(16, 2), HostAddr::new(1, 2, 3, 4));
        plan.set_server(addr, ServerBehavior::Down);
        assert_eq!(plan.server(addr), ServerBehavior::Down);
        plan.set_server(addr, ServerBehavior::Flaky(0.25));
        assert_eq!(plan.server(addr), ServerBehavior::Flaky(0.25));
    }

    #[test]
    fn episode_window_is_half_open() {
        let ep = CongestionEpisode {
            target: CongestionTarget::Node(ia(16, 7)),
            start_ms: 100.0,
            end_ms: 200.0,
            severity: 1.0,
        };
        assert!(!ep.active_at(99.9));
        assert!(ep.active_at(100.0));
        assert!(ep.active_at(199.9));
        assert!(!ep.active_at(200.0));
    }

    #[test]
    fn node_congestion_takes_max_severity() {
        let mut plan = FaultPlan::new();
        let node = ia(16, 7);
        for sev in [0.4, 0.9, 0.2] {
            plan.add_episode(CongestionEpisode {
                target: CongestionTarget::Node(node),
                start_ms: 0.0,
                end_ms: 1000.0,
                severity: sev,
            });
        }
        assert_eq!(plan.node_congestion(node, 500.0), 0.9);
        assert_eq!(plan.node_congestion(node, 1500.0), 0.0);
        assert_eq!(plan.node_congestion(ia(16, 1), 500.0), 0.0);
    }

    #[test]
    fn flaky_probability_is_validated_at_construction() {
        assert_eq!(ServerBehavior::flaky(0.25), Ok(ServerBehavior::Flaky(0.25)));
        assert!(ServerBehavior::flaky(0.0).is_ok());
        assert!(ServerBehavior::flaky(1.0).is_ok());
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = ServerBehavior::flaky(bad).unwrap_err();
            assert!(
                matches!(err, FaultError::InvalidProbability { .. }),
                "{bad} must be rejected"
            );
            assert!(err.to_string().contains("[0, 1]"), "{err}");
        }
    }

    #[test]
    fn flaky_probability_is_validated_at_deserialization() {
        let ok: ServerBehavior = serde_json::from_str("{\"Flaky\": 0.5}").unwrap();
        assert_eq!(ok, ServerBehavior::Flaky(0.5));
        let ok: ServerBehavior = serde_json::from_str("\"Down\"").unwrap();
        assert_eq!(ok, ServerBehavior::Down);
        for bad in ["{\"Flaky\": 1.5}", "{\"Flaky\": -0.2}", "{\"Flaky\": null}"] {
            let err = serde_json::from_str::<ServerBehavior>(bad).unwrap_err();
            assert!(err.to_string().contains("[0, 1]"), "{bad}: {err}");
        }
        // Round-trip of a valid behaviour is unchanged by the manual impl.
        let json = serde_json::to_string(&ServerBehavior::Flaky(0.25)).unwrap();
        let back: ServerBehavior = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ServerBehavior::Flaky(0.25));
    }

    #[test]
    fn episode_severity_is_validated_at_construction() {
        let target = CongestionTarget::Node(ia(16, 7));
        assert!(CongestionEpisode::new(target, 0.0, 100.0, 0.8).is_ok());
        for bad in [-0.5, 2.0, f64::NAN] {
            assert!(matches!(
                CongestionEpisode::new(target, 0.0, 100.0, bad),
                Err(FaultError::InvalidProbability { .. })
            ));
        }
        // Inverted or NaN windows are typed errors too.
        assert!(matches!(
            CongestionEpisode::new(target, 200.0, 100.0, 0.5),
            Err(FaultError::InvalidWindow { .. })
        ));
        assert!(matches!(
            CongestionEpisode::new(target, f64::NAN, 100.0, 0.5),
            Err(FaultError::InvalidWindow { .. })
        ));
    }

    #[test]
    fn episode_severity_is_validated_at_deserialization() {
        let ok = "{\"target\": {\"Link\": 3}, \"start_ms\": 0.0, \
                  \"end_ms\": 50.0, \"severity\": 1.0}";
        let ep: CongestionEpisode = serde_json::from_str(ok).unwrap();
        assert_eq!(ep.target, CongestionTarget::Link(LinkIndex(3)));
        let bad = ok.replace("1.0", "1.01");
        let err = serde_json::from_str::<CongestionEpisode>(&bad).unwrap_err();
        assert!(err.to_string().contains("congestion severity"), "{err}");
        // Round-trip through the derived Serialize shape.
        let json = serde_json::to_string(&ep).unwrap();
        let back: CongestionEpisode = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ep);
    }

    #[test]
    fn expired_episodes_are_pruned() {
        let mut plan = FaultPlan::new();
        let node = ia(16, 7);
        for (start, end) in [(0.0, 100.0), (50.0, 500.0), (400.0, 900.0)] {
            plan.add_episode(
                CongestionEpisode::new(CongestionTarget::Node(node), start, end, 1.0).unwrap(),
            );
        }
        plan.prune_expired(450.0);
        assert_eq!(plan.node_congestion(node, 450.0), 1.0);
        assert_eq!(plan.windows_for_node(node).count(), 2);
        plan.prune_expired(1000.0);
        assert_eq!(plan.windows_for_node(node).count(), 0);
    }

    #[test]
    fn link_state_toggles() {
        let mut plan = FaultPlan::new();
        let l = LinkIndex(3);
        assert!(!plan.link_is_down(l));
        plan.set_link_down(l, true);
        assert!(plan.link_is_down(l));
        plan.set_link_down(l, false);
        assert!(!plan.link_is_down(l));
    }
}
