//! Geographic model: AS locations, great-circle distances and
//! speed-of-light propagation delays.
//!
//! The paper's central latency finding is that *physical distance between
//! hops dominates latency* (more than hop count or ISD membership). To make
//! that an emergent property of the simulation rather than a hard-coded
//! outcome, every AS carries a real-world coordinate and link propagation
//! delay is derived from the great-circle distance at an effective signal
//! speed typical of long-haul fiber.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometers (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Effective propagation speed in fiber, km per millisecond.
///
/// Light in fiber travels at roughly 2/3 c ≈ 200 km/ms; real WAN routes
/// are not geodesics, so we use a slightly lower effective speed to absorb
/// route stretch. This calibration is what places the Europe↔US-East RTT
/// near the familiar ~80 ms mark.
pub const FIBER_KM_PER_MS: f64 = 170.0;

/// A geographic coordinate (degrees) plus human-readable placement,
/// attached to every AS in the topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoLocation {
    pub lat: f64,
    pub lon: f64,
    /// City name as shown on the SCIONLab map (e.g. "Magdeburg").
    pub city: String,
    /// ISO-ish country label used for sovereignty constraints
    /// (e.g. "Germany", "United States", "South Korea").
    pub country: String,
}

impl GeoLocation {
    pub fn new(lat: f64, lon: f64, city: &str, country: &str) -> GeoLocation {
        GeoLocation {
            lat,
            lon,
            city: city.to_string(),
            country: country.to_string(),
        }
    }

    /// Great-circle distance to `other` in kilometers (haversine formula).
    pub fn distance_km(&self, other: &GeoLocation) -> f64 {
        haversine_km(self.lat, self.lon, other.lat, other.lon)
    }

    /// One-way propagation delay to `other` in milliseconds, assuming the
    /// effective fiber speed [`FIBER_KM_PER_MS`] plus a small fixed
    /// per-link equipment latency.
    pub fn propagation_ms(&self, other: &GeoLocation) -> f64 {
        propagation_delay_ms(self.distance_km(other))
    }
}

/// Haversine great-circle distance between two (lat, lon) points, in km.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lon2 - lon1).to_radians();
    let a = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
}

/// One-way propagation delay for a link spanning `distance_km`, in ms.
///
/// A constant 0.15 ms floor models local switching/serialization even for
/// co-located ASes (two VMs in the same data center still observe sub-ms,
/// nonzero RTTs on SCIONLab).
pub fn propagation_delay_ms(distance_km: f64) -> f64 {
    0.15 + distance_km / FIBER_KM_PER_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zurich() -> GeoLocation {
        GeoLocation::new(47.3769, 8.5417, "Zurich", "Switzerland")
    }
    fn virginia() -> GeoLocation {
        GeoLocation::new(38.9, -77.4, "Ashburn", "United States")
    }
    fn singapore() -> GeoLocation {
        GeoLocation::new(1.3521, 103.8198, "Singapore", "Singapore")
    }

    #[test]
    fn haversine_known_distances() {
        // Zurich -> Ashburn is about 6,600 km.
        let d = zurich().distance_km(&virginia());
        assert!((6200.0..7000.0).contains(&d), "got {d}");
        // Zurich -> Singapore is about 10,300 km.
        let d = zurich().distance_km(&singapore());
        assert!((9900.0..10800.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_is_symmetric_and_zero_on_self() {
        let a = zurich();
        let b = singapore();
        let ab = a.distance_km(&b);
        let ba = b.distance_km(&a);
        assert!((ab - ba).abs() < 1e-9);
        assert!(a.distance_km(&a) < 1e-9);
    }

    #[test]
    fn transatlantic_one_way_delay_is_plausible() {
        // One-way Europe -> US East should land in the 30..50 ms window,
        // giving the familiar ~80 ms RTT.
        let ms = zurich().propagation_ms(&virginia());
        assert!((30.0..50.0).contains(&ms), "got {ms}");
    }

    #[test]
    fn colocated_links_have_nonzero_floor() {
        let ms = propagation_delay_ms(0.0);
        assert!(ms > 0.0 && ms < 1.0);
    }

    #[test]
    fn antimeridian_crossing_takes_the_short_way() {
        // Fiji (179°E) to Samoa (-172°W): ~1,150 km across the
        // antimeridian, not ~38,000 km the long way round.
        let d = haversine_km(-17.7, 178.8, -13.8, -171.8);
        assert!((900.0..1500.0).contains(&d), "got {d}");
    }

    #[test]
    fn poles_and_hemispheres() {
        // Pole to pole is half the circumference.
        let d = haversine_km(90.0, 0.0, -90.0, 0.0);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
        // Longitude is irrelevant at the pole.
        let a = haversine_km(90.0, 0.0, 47.0, 8.0);
        let b = haversine_km(90.0, 123.0, 47.0, 8.0);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn delay_monotonic_in_distance() {
        let mut prev = 0.0;
        for km in [0.0, 10.0, 100.0, 1000.0, 10000.0] {
            let d = propagation_delay_ms(km);
            assert!(d > prev);
            prev = d;
        }
    }
}
