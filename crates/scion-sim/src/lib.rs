//! # scion-sim — a deterministic SCION network simulator
//!
//! This crate is the substrate for reproducing *"Evaluation of SCION for
//! User-driven Path Control: a Usability Study"* (Battipaglia et al.,
//! SC-W 2023) without access to the SCIONLab testbed. It provides:
//!
//! * **Addressing** ([`addr`]): ISD/ASN/ISD-AS/host formats with exact
//!   SCIONLab textual round-tripping (`16-ffaa:0:1002,[172.31.43.7]`).
//! * **Topology** ([`topology`]): validated AS graphs with per-direction
//!   link attributes, plus the calibrated 35-AS SCIONLab instance
//!   ([`topology::scionlab`]).
//! * **Control plane** ([`beacon`], [`segments`], [`pathserver`]):
//!   PCB propagation with chained hop-field MACs, segment registration
//!   and up×core×down path combination — the machinery behind
//!   `scion showpaths`.
//! * **Data plane** ([`dataplane`], [`des`]): SCMP probes on a
//!   discrete-event engine and flow-level bandwidth tests with pps-bound
//!   routers and congestion-biased loss.
//! * **Faults** ([`fault`]): server behaviours, link outages and
//!   time-windowed congestion episodes.
//! * **Chaos** ([`chaos`]): declarative, seeded fault schedules (link
//!   flaps, AS outages, congestion waves, flaky-server windows)
//!   compiled onto the network clock so faults fire as time advances.
//! * **Façade** ([`net::ScionNetwork`]): the object applications use —
//!   `paths` / `ping` / `traceroute` / `bwtest` with a monotonically
//!   advancing network clock.
//!
//! Everything is deterministic for a fixed seed.
//!
//! ```
//! use scion_sim::net::ScionNetwork;
//! use scion_sim::topology::scionlab::{AWS_IRELAND, MY_AS};
//!
//! let net = ScionNetwork::scionlab(42);
//! let paths = net.paths(MY_AS, AWS_IRELAND, 40);
//! assert_eq!(paths[0].hop_count(), 6);
//! ```

pub mod addr;
pub mod beacon;
pub mod chaos;
pub mod crypto;
pub mod dataplane;
pub mod des;
pub mod fault;
pub mod geo;
pub mod net;
pub mod path;
pub mod pathserver;
pub mod policy;
pub mod segments;
pub mod topology;

pub use addr::{Asn, HostAddr, IfaceId, Isd, IsdAsn, ScionAddr};
pub use chaos::{ChaosError, ChaosEvent, ChaosSchedule};
pub use net::{BwtestOutcome, NetError, ScionNetwork, TraceHop};
pub use path::{PathHop, PathStatus, ScionPath};
