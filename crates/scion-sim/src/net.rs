//! [`ScionNetwork`]: the façade tying topology, control plane, data
//! plane and fault state together. This is the object end-host tools
//! (`scion-tools`) and the measurement suite (`upin-core`) talk to.
//!
//! A network carries a monotonically advancing *network clock* (in ms):
//! every operation consumes realistic wall time (a 30-probe ping at
//! 100 ms intervals advances ~3 s), which is what lets time-windowed
//! congestion episodes black out exactly the measurements that run
//! inside the window — the mechanism behind the paper's Fig. 9.

use crate::addr::{IsdAsn, ScionAddr};
use crate::beacon::{BeaconConfig, KeyProvider};
use crate::chaos::{ChaosError, ChaosEvent, ChaosSchedule};
use crate::dataplane::flows::{bwtest, FlowOutcome, FlowParams};
use crate::dataplane::scmp::{ping, probe_prefix, ProbeOptions, ProbeOutcome};
use crate::dataplane::{compile_path, compile_wire, header_bytes, CompiledPath};
use crate::fault::{CongestionEpisode, FaultPlan, ServerBehavior};
use crate::path::{PathDigest, PathHop, PathStatus, ScionPath};
use crate::pathserver::{PathError, PathServer};
use crate::topology::{LinkIndex, Topology};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use upin_telemetry::Recorder;

/// Errors surfaced to end-host applications.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// The requested destination AS or server does not exist.
    UnknownDestination(ScionAddr),
    /// The path failed validation (adjacency, valley, MAC...).
    InvalidPath(PathError),
    /// The destination server is up but answers garbage; applications
    /// must handle this without crashing (paper §4.1.2, "Error
    /// Messages").
    BadResponse,
    /// The destination did not answer at all within the test window.
    Timeout,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownDestination(a) => write!(f, "unknown destination {a}"),
            NetError::InvalidPath(e) => write!(f, "invalid path: {e}"),
            NetError::BadResponse => write!(f, "server returned an error response"),
            NetError::Timeout => write!(f, "destination timed out"),
        }
    }
}

impl std::error::Error for NetError {}

/// Result of a full bandwidth test (both directions).
#[derive(Debug, Clone, PartialEq)]
pub struct BwtestOutcome {
    /// Client → server direction.
    pub cs: FlowOutcome,
    /// Server → client direction.
    pub sc: FlowOutcome,
}

/// Per-hop traceroute measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHop {
    pub ia: IsdAsn,
    /// RTT to this hop's border router, ms; `None` = no answer.
    pub rtt_ms: Option<f64>,
}

/// Per-route facts that depend only on the immutable control plane:
/// the validation verdict (structure + MAC chain) and the resolved
/// egress link of every non-terminal hop. Computed once per distinct
/// route and shared by all forks.
#[derive(Debug)]
struct RouteInfo {
    validated: Result<(), PathError>,
    /// `links[i]` = egress link of `hops[i]`; `None` when any hop fails
    /// to resolve (such a route is never up and never compiles).
    links: Option<Vec<LinkIndex>>,
}

impl RouteInfo {
    fn build(topo: &Topology, pathserver: &PathServer, path: &ScionPath) -> RouteInfo {
        RouteInfo {
            validated: pathserver.validate(topo, path),
            links: resolve_links(topo, path),
        }
    }
}

/// Egress link of every non-terminal hop; `None` when any hop fails to
/// resolve (such a route is never up and never compiles).
fn resolve_links(topo: &Topology, path: &ScionPath) -> Option<Vec<LinkIndex>> {
    path.hops
        .iter()
        .take(path.hops.len().saturating_sub(1))
        .map(|h| {
            let idx = topo.index_of(h.ia)?;
            topo.link_at_iface(idx, h.egress).map(|(li, _)| li)
        })
        .collect()
}

/// Liveness verdict for a route with pre-resolved egress links: every
/// link up and below blackout congestion, every transited AS likewise.
fn links_up(
    faults: &FaultPlan,
    links: Option<&[LinkIndex]>,
    hops: &[PathHop],
    now_ms: f64,
) -> bool {
    let Some(links) = links else {
        return false;
    };
    links
        .iter()
        .all(|&li| !faults.link_is_down(li) && faults.link_congestion(li, now_ms) < 1.0)
        && hops
            .iter()
            .all(|h| faults.node_congestion(h.ia, now_ms) < 1.0)
}

/// Egress links of each ranked path, index-aligned with the memoized
/// ranked list of the same `(src, dst)` key.
type RankedLinks = Arc<Vec<Option<Vec<LinkIndex>>>>;

/// A compile-cache entry: the compiled path plus the fault epoch it was
/// built under (a hit is valid iff the tag matches the reader's epoch).
type CompiledEntry = (u64, Arc<CompiledPath>);

/// Control-plane state shared (via `Arc`) between a network and every
/// fork taken from it. Everything in here is either immutable after
/// construction or a cache whose entries are fork-agnostic, which is
/// what makes [`ScionNetwork::fork`] O(1) in the topology size.
struct NetShared {
    topo: Topology,
    pathserver: PathServer,
    /// Validation/link-resolution cache keyed by path digest.
    routes: Mutex<HashMap<PathDigest, Arc<RouteInfo>>>,
    /// Egress links of every ranked path — the liveness fill of a
    /// repeated `paths()` call walks this instead of hashing each
    /// path's digest again.
    ranked_links: Mutex<HashMap<(IsdAsn, IsdAsn), RankedLinks>>,
    /// Compiled-path cache keyed by (digest, destination), tagged with
    /// the fault epoch the entry was compiled under.
    compiled: Mutex<HashMap<(PathDigest, Option<ScionAddr>), CompiledEntry>>,
    /// Source of globally unique fault-epoch tags: every fault mutation
    /// on any network sharing this state takes a fresh value, so stale
    /// compile-cache entries can never be mistaken for current ones —
    /// even across diverging parent/fork fault plans.
    epochs: AtomicU64,
    /// Whether the (construction-time) beacon-cap drop count has been
    /// reported to a recorder yet — once per shared control plane, so
    /// parallel forks don't multiply the counter.
    beacon_stats_flushed: AtomicBool,
}

impl NetShared {
    fn next_epoch(&self) -> u64 {
        self.epochs.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// A network's mutable fault state plus the epoch tag of its last
/// mutation. Tag and plan live under one lock so a cache entry can
/// never be stored under an epoch older than the data it was built
/// from.
#[derive(Clone)]
struct FaultState {
    plan: FaultPlan,
    epoch: u64,
}

/// An installed chaos schedule's replay position: the compiled event
/// list (shared with forks — replaying never mutates it) plus the index
/// of the next transition to apply. Forks clone the cursor, so a fork
/// continues the schedule from exactly where its parent stood.
#[derive(Clone, Default)]
struct ChaosRunner {
    events: Arc<Vec<ChaosEvent>>,
    cursor: usize,
}

/// The simulated SCION network.
pub struct ScionNetwork {
    shared: Arc<NetShared>,
    faults: Mutex<FaultState>,
    chaos: Mutex<ChaosRunner>,
    /// Bit pattern of the next armed transition's `at_ms`
    /// (`f64::INFINITY` when none) — lets `advance_ms` skip the chaos
    /// lock entirely between transitions.
    chaos_next_due: AtomicU64,
    clock_ms: Mutex<f64>,
    seed: u64,
    op_counter: Mutex<u64>,
    /// Telemetry sink. Only commutative `u64` counters are recorded
    /// here — forks run on worker threads, and counter addition is the
    /// one signal whose aggregate is order-independent.
    recorder: Arc<dyn Recorder>,
    /// `false` routes every lookup through the uncached reference
    /// implementations (the determinism oracle and benchmark baseline).
    caching: bool,
}

impl ScionNetwork {
    /// Build a network over an arbitrary topology with default beaconing.
    pub fn new(topo: Topology, seed: u64) -> ScionNetwork {
        ScionNetwork::with_beacon_config(topo, seed, &BeaconConfig::default())
    }

    /// Build a network with an explicit beacon configuration — the knob
    /// behind `--beacon-cap`, which is what makes 1000-AS topologies
    /// tractable (see `BeaconConfig::beacons_per_pair`).
    pub fn with_beacon_config(topo: Topology, seed: u64, cfg: &BeaconConfig) -> ScionNetwork {
        let keys = KeyProvider::new(seed ^ 0x5c10_ab5e_c2e7_5eed);
        let pathserver = PathServer::new(&topo, keys, cfg);
        ScionNetwork {
            shared: Arc::new(NetShared {
                topo,
                pathserver,
                routes: Mutex::new(HashMap::new()),
                ranked_links: Mutex::new(HashMap::new()),
                compiled: Mutex::new(HashMap::new()),
                epochs: AtomicU64::new(0),
                beacon_stats_flushed: AtomicBool::new(false),
            }),
            faults: Mutex::new(FaultState {
                plan: FaultPlan::new(),
                epoch: 0,
            }),
            chaos: Mutex::new(ChaosRunner::default()),
            chaos_next_due: AtomicU64::new(f64::INFINITY.to_bits()),
            clock_ms: Mutex::new(0.0),
            seed,
            op_counter: Mutex::new(0),
            recorder: upin_telemetry::noop(),
            caching: true,
        }
    }

    /// Enable or disable the control-plane caches for this network
    /// (forks inherit the setting). With caching off every `paths`,
    /// `authorize` and compile goes through the uncached reference
    /// path — observable results are identical by construction, which
    /// the property suite pins.
    pub fn set_caching(&mut self, on: bool) {
        self.caching = on;
    }

    /// Whether this network and `other` share one control plane
    /// (topology, beacon store, caches) — true exactly for forks.
    pub fn shares_control_plane(&self, other: &ScionNetwork) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Attach a telemetry recorder. Forks inherit it, so counters from
    /// parallel campaign workers aggregate into the same sink.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// The recorder this network reports into (no-op by default).
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// The standard experimental network: SCIONLab with `MY_AS` attached
    /// to ETHZ-AP.
    pub fn scionlab(seed: u64) -> ScionNetwork {
        ScionNetwork::new(crate::topology::scionlab::scionlab_topology(), seed)
    }

    /// An independent copy of this network for one unit of campaign work:
    /// same topology, path server (so MACs stay valid across the fork) and
    /// a snapshot of the current fault plan and clock, but its own RNG
    /// stream derived from `salt` and a fresh operation counter.
    ///
    /// Two forks with the same salt taken from the same network state
    /// replay identical random draws regardless of what any *other* fork
    /// does in between — the property that makes a parallel measurement
    /// campaign bit-identical to a sequential one.
    pub fn fork(&self, salt: u64) -> ScionNetwork {
        ScionNetwork {
            // The control plane is shared, not cloned: forking costs a
            // refcount bump plus a snapshot of the (small) fault plan
            // and clock, independent of topology size.
            shared: Arc::clone(&self.shared),
            faults: Mutex::new(self.faults.lock().clone()),
            chaos: Mutex::new(self.chaos.lock().clone()),
            chaos_next_due: AtomicU64::new(self.chaos_next_due.load(Ordering::Relaxed)),
            clock_ms: Mutex::new(self.now_ms()),
            seed: splitmix(self.seed ^ splitmix(salt)),
            op_counter: Mutex::new(0),
            recorder: self.recorder.clone(),
            caching: self.caching,
        }
    }

    /// One deterministic draw in `[0, 1)` from this network's seeded
    /// stream (consumes one operation slot, like any other op).
    pub fn jitter_unit(&self) -> f64 {
        self.op_rng().gen::<f64>()
    }

    pub fn topology(&self) -> &Topology {
        &self.shared.topo
    }

    pub fn path_server(&self) -> &PathServer {
        &self.shared.pathserver
    }

    /// Current network clock in milliseconds.
    pub fn now_ms(&self) -> f64 {
        *self.clock_ms.lock()
    }

    /// Advance the network clock (idle time between operations), then
    /// fire any installed chaos transitions the clock just passed. The
    /// due-check is a single relaxed atomic load, so a network with no
    /// imminent transition pays nothing beyond the clock bump.
    pub fn advance_ms(&self, ms: f64) {
        let now = {
            let mut clock = self.clock_ms.lock();
            *clock += ms.max(0.0);
            *clock
        };
        if now >= f64::from_bits(self.chaos_next_due.load(Ordering::Relaxed)) {
            self.apply_due_chaos(now);
        }
    }

    // ---- chaos schedules -------------------------------------------

    /// Compile `schedule` against this network's topology and arm it:
    /// from now on every clock advance applies the transitions it
    /// passes, exactly as if `set_link_down`/`add_congestion`/
    /// `set_server_behavior` had been called by hand at those instants
    /// (including the fault-epoch bump). Replaces any prior schedule.
    /// Returns the number of compiled transitions.
    pub fn install_chaos(&self, schedule: &ChaosSchedule) -> Result<usize, ChaosError> {
        let events = schedule.compile(self.topology())?;
        let n = events.len();
        {
            let mut chaos = self.chaos.lock();
            chaos.events = Arc::new(events);
            chaos.cursor = 0;
        }
        // Transitions scheduled at or before the current clock fire
        // immediately (installing at t=5s applies everything ≤ 5s).
        self.apply_due_chaos(self.now_ms());
        Ok(n)
    }

    /// The full compiled transition list of the installed schedule
    /// (empty when none is installed) — the byte-identical trace
    /// artifact; render with [`crate::chaos::render_trace`].
    pub fn chaos_events(&self) -> Arc<Vec<ChaosEvent>> {
        Arc::clone(&self.chaos.lock().events)
    }

    /// How many of the compiled transitions have fired on this network.
    pub fn chaos_applied(&self) -> usize {
        self.chaos.lock().cursor
    }

    /// Apply every armed transition whose time the clock has reached,
    /// as one batch: the fault lock is taken once and the epoch bumped
    /// once per drain, since consumers only ever compare epochs for
    /// (in)equality — what matters is that the state after the drain
    /// carries a fresh tag, not how many tags the drain burned.
    /// Lock discipline: never called with the clock, fault or chaos
    /// lock held; takes chaos → (clock read) → faults per batch, which
    /// cannot cycle with `paths()`'s faults → clock order because the
    /// clock lock is only ever held instantaneously.
    fn apply_due_chaos(&self, now: f64) {
        let mut chaos = self.chaos.lock();
        if chaos.cursor >= chaos.events.len() {
            self.chaos_next_due
                .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
            return;
        }
        let events = Arc::clone(&chaos.events);
        let mut fired = 0u64;
        if events[chaos.cursor].at_ms <= now {
            let mut f = self.faults.lock();
            while chaos.cursor < events.len() && events[chaos.cursor].at_ms <= now {
                let ev = &events[chaos.cursor];
                ev.action.apply(&mut f.plan, ev.at_ms);
                chaos.cursor += 1;
                fired += 1;
            }
            f.epoch = self.shared.next_epoch();
        }
        let next = events
            .get(chaos.cursor)
            .map_or(f64::INFINITY, |ev| ev.at_ms);
        self.chaos_next_due.store(next.to_bits(), Ordering::Relaxed);
        if fired > 0 {
            self.recorder.add("sim.chaos.transitions", fired);
        }
    }

    /// The epoch tag of this network's last fault mutation (scheduled
    /// or hand-placed). Consumers that cache liveness decisions compare
    /// this against the epoch they cached under — the cheap "did
    /// anything change?" probe behind session failover.
    pub fn fault_epoch(&self) -> u64 {
        self.faults.lock().epoch
    }

    /// Liveness of a single route under the current fault state, without
    /// advancing the clock or touching the path server — the probe a
    /// failover session runs against its cached candidates.
    pub fn path_is_up(&self, path: &ScionPath) -> bool {
        let faults = self.faults.lock();
        let now = *self.clock_ms.lock();
        self.route_is_up(&faults.plan, path, now)
    }

    // ---- fault injection -------------------------------------------
    //
    // Every mutation stamps this network's fault state with a fresh
    // globally unique epoch, invalidating any compile-cache entry built
    // under the previous state. Plan and epoch change under one lock.

    pub fn set_server_behavior(&self, addr: ScionAddr, behavior: ServerBehavior) {
        let mut f = self.faults.lock();
        f.plan.set_server(addr, behavior);
        f.epoch = self.shared.next_epoch();
    }

    pub fn add_congestion(&self, episode: CongestionEpisode) {
        let mut f = self.faults.lock();
        f.plan.add_episode(episode);
        f.epoch = self.shared.next_epoch();
    }

    pub fn clear_congestion(&self) {
        let mut f = self.faults.lock();
        f.plan.clear_episodes();
        f.epoch = self.shared.next_epoch();
    }

    pub fn set_link_down(&self, link: LinkIndex, down: bool) {
        let mut f = self.faults.lock();
        f.plan.set_link_down(link, down);
        f.epoch = self.shared.next_epoch();
    }

    // ---- control plane ----------------------------------------------

    /// Paths from `src` to `dst`, ranked by hop count, capped at `max`,
    /// with liveness status filled in from the current fault state
    /// (mirrors `scion showpaths -m <max>`).
    ///
    /// The ranked prefix is memoized per `(src, dst)` and forced lazily:
    /// a capped request only ever pays for the hop-count levels needed
    /// to cover it, and only the liveness statuses are recomputed per
    /// call — they are the one fault-dependent part.
    pub fn paths(&self, src: IsdAsn, dst: IsdAsn, max: usize) -> Vec<ScionPath> {
        self.flush_beacon_stats();
        let mut paths;
        if self.caching && max > 0 && src != dst {
            let (full, hit, forced) =
                self.shared
                    .pathserver
                    .ranked_prefix(&self.shared.topo, src, dst, max);
            self.recorder.add(
                if hit {
                    "sim.pathcache.hit"
                } else {
                    "sim.pathcache.miss"
                },
                1,
            );
            if forced > 0 {
                self.recorder.add("sim.pathserver.lazy_forced", forced);
            }
            let links = self.ranked_links(src, dst, &full);
            paths = full.iter().take(max).cloned().collect::<Vec<ScionPath>>();
            let faults = self.faults.lock();
            let now = self.now_ms();
            for (p, ls) in paths.iter_mut().zip(links.iter()) {
                p.status = if links_up(&faults.plan, ls.as_deref(), &p.hops, now) {
                    PathStatus::Alive
                } else {
                    PathStatus::Timeout
                };
            }
        } else {
            paths = self
                .shared
                .pathserver
                .query_uncached(&self.shared.topo, src, dst, max);
            let faults = self.faults.lock();
            let now = self.now_ms();
            for p in &mut paths {
                p.status = if self.route_is_up(&faults.plan, p, now) {
                    PathStatus::Alive
                } else {
                    PathStatus::Timeout
                };
            }
        }
        // showpaths costs of the order of a second of wall time.
        self.advance_ms(800.0);
        self.recorder.add("sim.showpaths_ops", 1);
        paths
    }

    /// Egress links of the ranked `(src, dst)` prefix, memoized aligned
    /// with it. The prefix only grows (and never reorders), so a cached
    /// list is extended in place when a deeper prefix shows up.
    /// Compute-under-lock, like every shared cache here.
    fn ranked_links(&self, src: IsdAsn, dst: IsdAsn, full: &[ScionPath]) -> RankedLinks {
        let mut cache = self.shared.ranked_links.lock();
        let entry = cache.entry((src, dst)).or_default();
        if entry.len() < full.len() {
            let mut v = (**entry).clone();
            v.extend(
                full[v.len()..]
                    .iter()
                    .map(|p| resolve_links(&self.shared.topo, p)),
            );
            *entry = Arc::new(v);
        }
        entry.clone()
    }

    /// Report the construction-time beacon-cap drop count into the
    /// recorder — once per shared control plane, and only when there is
    /// both a live recorder and something to report.
    fn flush_beacon_stats(&self) {
        if !self.recorder.enabled() {
            return;
        }
        let capped = self.shared.pathserver.beacon_store().capped_count();
        if capped == 0 {
            return;
        }
        if !self
            .shared
            .beacon_stats_flushed
            .swap(true, Ordering::Relaxed)
        {
            self.recorder.add("sim.beacon.capped", capped);
        }
    }

    /// Re-attach metadata/MACs to a bare route (`--sequence` handling).
    pub fn authorize(&self, route: &ScionPath) -> Result<ScionPath, NetError> {
        self.flush_beacon_stats();
        let topo = &self.shared.topo;
        let found = if self.caching {
            match (route.src(), route.dst()) {
                (Some(src), Some(dst)) => {
                    let (found, hit, forced) =
                        self.shared.pathserver.find_route(topo, src, dst, route);
                    self.recorder.add(
                        if hit {
                            "sim.pathcache.hit"
                        } else {
                            "sim.pathcache.miss"
                        },
                        1,
                    );
                    if forced > 0 {
                        self.recorder.add("sim.pathserver.lazy_forced", forced);
                    }
                    found
                }
                _ => None,
            }
        } else {
            match (route.src(), route.dst()) {
                (Some(src), Some(dst)) => self
                    .shared
                    .pathserver
                    .query_uncached(topo, src, dst, usize::MAX)
                    .into_iter()
                    .find(|p| p.same_route(route)),
                _ => None,
            }
        };
        found.ok_or(NetError::InvalidPath(PathError::BadMac))
    }

    /// Fault-independent facts about a route (validation verdict, egress
    /// links), computed once per distinct route and memoized in the
    /// shared control plane. Compute-under-lock: concurrent callers for
    /// the same digest observe exactly one build between them.
    fn route_info(&self, path: &ScionPath) -> Arc<RouteInfo> {
        let digest = path.digest();
        let mut routes = self.shared.routes.lock();
        if let Some(info) = routes.get(&digest) {
            return info.clone();
        }
        let info = Arc::new(RouteInfo::build(
            &self.shared.topo,
            &self.shared.pathserver,
            path,
        ));
        routes.insert(digest, info.clone());
        info
    }

    fn route_is_up(&self, faults: &FaultPlan, path: &ScionPath, now_ms: f64) -> bool {
        if self.caching {
            // Egress links resolve identically every call; only their
            // down/congested state varies with the fault plan.
            let info = self.route_info(path);
            return links_up(faults, info.links.as_deref(), &path.hops, now_ms);
        } else {
            let topo = &self.shared.topo;
            for i in 0..path.hops.len().saturating_sub(1) {
                let Some(idx) = topo.index_of(path.hops[i].ia) else {
                    return false;
                };
                let Some((li, _)) = topo.link_at_iface(idx, path.hops[i].egress) else {
                    return false;
                };
                if faults.link_is_down(li) || faults.link_congestion(li, now_ms) >= 1.0 {
                    return false;
                }
            }
        }
        path.hops
            .iter()
            .all(|h| faults.node_congestion(h.ia, now_ms) < 1.0)
    }

    // ---- data plane --------------------------------------------------

    /// Validate + compile a path against the current fault state.
    ///
    /// Cached flavour: the validation verdict comes from the route-info
    /// cache (skipping the MAC chain recomputation), and the compiled
    /// wire hops are memoized per `(digest, destination)` tagged with
    /// the fault epoch they were built under — a cache hit is valid iff
    /// the tag matches this network's current epoch.
    fn compile(
        &self,
        path: &ScionPath,
        dst: Option<ScionAddr>,
    ) -> Result<Arc<CompiledPath>, NetError> {
        let topo = &self.shared.topo;
        if !self.caching {
            self.shared
                .pathserver
                .validate(topo, path)
                .map_err(NetError::InvalidPath)?;
            let faults = self.faults.lock();
            let server = match dst {
                Some(addr) => {
                    if topo.server_as(addr).is_none() {
                        return Err(NetError::UnknownDestination(addr));
                    }
                    faults.plan.server(addr)
                }
                None => ServerBehavior::Up,
            };
            return compile_path(topo, &faults.plan, path, server)
                .map(Arc::new)
                .map_err(NetError::InvalidPath);
        }
        let info = self.route_info(path);
        info.validated.clone().map_err(NetError::InvalidPath)?;
        let digest = path.digest();
        let faults = self.faults.lock();
        let server = match dst {
            Some(addr) => {
                if topo.server_as(addr).is_none() {
                    return Err(NetError::UnknownDestination(addr));
                }
                faults.plan.server(addr)
            }
            None => ServerBehavior::Up,
        };
        // Compute under the compiled lock (fault lock still held, so the
        // epoch cannot move underneath us): each (digest, dst, epoch)
        // misses exactly once globally, sequential or parallel.
        let mut compiled = self.shared.compiled.lock();
        if let Some((tag, c)) = compiled.get_mut(&(digest, dst)) {
            if *tag == faults.epoch {
                self.recorder.add("sim.compile_cache.hit", 1);
                return Ok(c.clone());
            }
            // Stale tag, but the mutation may not touch this route:
            // re-verify the fault-dependent inputs and re-tag on a
            // match, so chaos transitions elsewhere don't force a
            // recompile of every active session's path.
            if c.still_valid(&faults.plan, path, server) {
                *tag = faults.epoch;
                self.recorder.add("sim.compile_cache.refresh", 1);
                return Ok(c.clone());
            }
        }
        let c = compile_wire(topo, &faults.plan, path, server)
            .map(Arc::new)
            .map_err(NetError::InvalidPath)?;
        compiled.insert((digest, dst), (faults.epoch, c.clone()));
        self.recorder.add("sim.compile_cache.miss", 1);
        Ok(c)
    }

    fn op_rng(&self) -> StdRng {
        let mut ctr = self.op_counter.lock();
        *ctr += 1;
        StdRng::seed_from_u64(self.seed ^ (*ctr).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Telemetry for one data-plane operation: the op counter, packets
    /// forwarded (one count per hop a packet traverses) and per-AS hop
    /// counters. Counters only — see the `recorder` field note.
    fn record_op(&self, op: &str, path: &ScionPath, packets: u64) {
        let rec = &self.recorder;
        rec.add(op, 1);
        rec.add(
            "sim.packets_forwarded",
            packets.saturating_mul(path.hop_count() as u64),
        );
        if rec.enabled() {
            for hop in &path.hops {
                rec.add(&format!("sim.hop.{}", hop.ia), packets);
            }
        }
    }
}

/// SplitMix64 finalizer: decorrelates fork seeds even for adjacent salts.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ScionNetwork {
    /// `scion ping`: SCMP echoes over an explicit path to a server.
    pub fn ping(
        &self,
        path: &ScionPath,
        dst: ScionAddr,
        opts: &ProbeOptions,
    ) -> Result<ProbeOutcome, NetError> {
        if path.dst() != Some(dst.ia) {
            return Err(NetError::UnknownDestination(dst));
        }
        let compiled = self.compile(path, Some(dst))?;
        let start = self.now_ms();
        let out = ping(&compiled, opts, start, self.op_rng());
        // The campaign occupies count × interval plus the last RTT.
        self.advance_ms(opts.count as f64 * opts.interval_ms + 300.0);
        self.record_op("sim.ping_ops", path, opts.count as u64);
        Ok(out)
    }

    /// `scion traceroute`: probe each border router along the path.
    pub fn traceroute(&self, path: &ScionPath) -> Result<Vec<TraceHop>, NetError> {
        let compiled = self.compile(path, None)?;
        let start = self.now_ms();
        let opts = ProbeOptions {
            count: 1,
            interval_ms: 0.0,
            payload_bytes: 8,
            timeout_ms: 2000.0,
        };
        let mut out = Vec::with_capacity(path.hops.len());
        out.push(TraceHop {
            ia: path.hops[0].ia,
            rtt_ms: Some(0.05),
        });
        for (i, hop) in path.hops.iter().enumerate().skip(1) {
            let probe = probe_prefix(&compiled, i, &opts, start, self.op_rng());
            out.push(TraceHop {
                ia: hop.ia,
                rtt_ms: probe.rtts_ms.first().copied().flatten(),
            });
        }
        self.advance_ms(1000.0);
        self.record_op("sim.traceroute_ops", path, path.hops.len() as u64);
        Ok(out)
    }

    /// `scion-bwtestclient`: a bandwidth test in both directions.
    pub fn bwtest(
        &self,
        path: &ScionPath,
        dst: ScionAddr,
        cs: &FlowParams,
        sc: &FlowParams,
    ) -> Result<BwtestOutcome, NetError> {
        if path.dst() != Some(dst.ia) {
            return Err(NetError::UnknownDestination(dst));
        }
        let compiled = self.compile(path, Some(dst))?;
        let start = self.now_ms();
        let header = header_bytes(path.hop_count());
        let mut rng = self.op_rng();
        let result = bwtest(&compiled, cs, sc, header, start, &mut rng);
        self.advance_ms((cs.duration_s + sc.duration_s) * 1000.0 + 500.0);
        // Offered load in packets, both directions.
        let offered = |p: &FlowParams| {
            (p.target_mbps * p.duration_s * 1e6 / (p.packet_bytes as f64 * 8.0)) as u64
        };
        self.record_op("sim.bwtest_ops", path, offered(cs) + offered(sc));
        match result {
            Some((cs_out, sc_out)) => Ok(BwtestOutcome {
                cs: cs_out,
                sc: sc_out,
            }),
            None => match compiled.server {
                ServerBehavior::BadResponse => Err(NetError::BadResponse),
                _ => Err(NetError::Timeout),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CongestionTarget;
    use crate::topology::scionlab::*;

    fn net() -> ScionNetwork {
        ScionNetwork::scionlab(7)
    }

    fn ireland() -> ScionAddr {
        paper_destinations()[1]
    }

    #[test]
    fn paths_to_ireland_have_paper_shape() {
        let n = net();
        let paths = n.paths(MY_AS, AWS_IRELAND, 40);
        assert!(!paths.is_empty());
        let min = paths[0].hop_count();
        assert_eq!(min, 6, "Ireland needs 6 hops from MY_AS");
        // Ranked by hop count.
        for w in paths.windows(2) {
            assert!(w[0].hop_count() <= w[1].hop_count());
        }
        // All alive in a fault-free network.
        assert!(paths.iter().all(|p| p.status == PathStatus::Alive));
    }

    #[test]
    fn ping_over_discovered_path_measures_geography() {
        let n = net();
        let paths = n.paths(MY_AS, AWS_IRELAND, 40);
        let eu = &paths[0];
        let out = n.ping(eu, ireland(), &ProbeOptions::default()).unwrap();
        assert!(out.received() >= 28);
        let rtt = out.avg_rtt_ms().unwrap();
        assert!((15.0..60.0).contains(&rtt), "EU path RTT {rtt}");
        // A Singapore-detour path must be far slower.
        let sg = paths
            .iter()
            .find(|p| p.hops.iter().any(|h| h.ia == AWS_SINGAPORE))
            .expect("a Singapore detour exists within min+1 hops");
        let out_sg = n.ping(sg, ireland(), &ProbeOptions::default()).unwrap();
        let rtt_sg = out_sg.avg_rtt_ms().unwrap();
        assert!(
            rtt_sg > rtt + 150.0,
            "Singapore detour {rtt_sg} vs EU {rtt}"
        );
    }

    #[test]
    fn forged_sequence_is_rejected_until_authorized() {
        let n = net();
        let paths = n.paths(MY_AS, AWS_IRELAND, 5);
        let bare = ScionPath::from_sequence(&paths[0].sequence()).unwrap();
        // Without MACs the data plane refuses it.
        let err = n.ping(&bare, ireland(), &ProbeOptions::default());
        assert!(matches!(err, Err(NetError::InvalidPath(_))));
        // Authorization against the path server re-attaches MACs.
        let authorized = n.authorize(&bare).unwrap();
        assert!(n
            .ping(&authorized, ireland(), &ProbeOptions::default())
            .is_ok());
    }

    #[test]
    fn down_server_times_out_and_flaky_drops() {
        let n = net();
        let paths = n.paths(MY_AS, AWS_IRELAND, 1);
        n.set_server_behavior(ireland(), ServerBehavior::Down);
        let out = n
            .ping(&paths[0], ireland(), &ProbeOptions::default())
            .unwrap();
        assert_eq!(out.received(), 0);
        n.set_server_behavior(ireland(), ServerBehavior::Up);
        let out = n
            .ping(&paths[0], ireland(), &ProbeOptions::default())
            .unwrap();
        assert!(out.received() > 25);
    }

    #[test]
    fn bad_response_server_fails_bwtest_but_answers_ping() {
        let n = net();
        let paths = n.paths(MY_AS, AWS_IRELAND, 1);
        n.set_server_behavior(ireland(), ServerBehavior::BadResponse);
        let params = FlowParams {
            duration_s: 3.0,
            packet_bytes: 1400,
            target_mbps: 12.0,
        };
        let res = n.bwtest(&paths[0], ireland(), &params, &params);
        assert_eq!(res.unwrap_err(), NetError::BadResponse);
        let out = n
            .ping(&paths[0], ireland(), &ProbeOptions::default())
            .unwrap();
        assert!(out.received() > 25, "SCMP still answers");
    }

    #[test]
    fn node_congestion_blacks_out_paths_in_window() {
        let n = net();
        let paths = n.paths(MY_AS, AWS_IRELAND, 1);
        let start = n.now_ms();
        n.add_congestion(CongestionEpisode {
            target: CongestionTarget::Node(AWS_FRANKFURT),
            start_ms: start,
            end_ms: start + 60_000.0,
            severity: 1.0,
        });
        let out = n
            .ping(&paths[0], ireland(), &ProbeOptions::default())
            .unwrap();
        assert_eq!(out.received(), 0, "every Ireland path crosses Frankfurt");
        // After the window the path works again.
        n.advance_ms(120_000.0);
        let out = n
            .ping(&paths[0], ireland(), &ProbeOptions::default())
            .unwrap();
        assert!(out.received() > 25);
    }

    #[test]
    fn clock_advances_with_operations() {
        let n = net();
        let t0 = n.now_ms();
        let paths = n.paths(MY_AS, AWS_IRELAND, 1);
        let t1 = n.now_ms();
        assert!(t1 > t0);
        n.ping(&paths[0], ireland(), &ProbeOptions::default())
            .unwrap();
        assert!(n.now_ms() >= t1 + 3000.0, "30 probes × 100 ms");
    }

    #[test]
    fn bwtest_runs_end_to_end() {
        let n = net();
        let paths = n.paths(MY_AS, AWS_IRELAND, 1);
        let params = FlowParams {
            duration_s: 3.0,
            packet_bytes: 1400,
            target_mbps: 12.0,
        };
        let out = n.bwtest(&paths[0], ireland(), &params, &params).unwrap();
        assert!(out.cs.achieved_mbps > 5.0, "cs {}", out.cs.achieved_mbps);
        assert!(out.sc.achieved_mbps > 5.0, "sc {}", out.sc.achieved_mbps);
    }

    #[test]
    fn peering_shortcut_paths_are_constructed_and_forward() {
        use crate::topology::scionlab::{GEANT_AP, TU_DELFT};
        let n = net();
        // ETHZ-AP peers with GEANT: MY_AS reaches GEANT in 3 hops.
        let paths = n.paths(MY_AS, GEANT_AP, 40);
        assert_eq!(paths[0].hop_count(), 3, "{}", paths[0]);
        assert_eq!(paths[0].hops[1].ia, crate::topology::scionlab::ETHZ_AP);
        // And Delft in 4, continuing down past the peering crossing.
        let paths = n.paths(MY_AS, TU_DELFT, 40);
        assert_eq!(paths[0].hop_count(), 4, "{}", paths[0]);
        assert!(paths[0].hops.iter().any(|h| h.ia == GEANT_AP));
        // The peering path carries valid MACs and actually forwards.
        let addr =
            crate::addr::ScionAddr::new(GEANT_AP, crate::addr::HostAddr::new(62, 40, 111, 66));
        let out = n
            .ping(
                &n.paths(MY_AS, GEANT_AP, 1)[0],
                addr,
                &ProbeOptions::default(),
            )
            .unwrap();
        assert!(out.received() >= 28);
        // Its RTT is far below the 5-hop route through the cores.
        let rtt = out.avg_rtt_ms().unwrap();
        assert!(rtt < 15.0, "peering shortcut RTT {rtt}");
    }

    #[test]
    fn core_after_peering_is_a_valley_violation() {
        use crate::pathserver::{validate_structure, PathError};
        let n = net();
        // Hand-build: MY_AS -> ETHZ-AP ~peer~ GEANT -> (up!) OVGU core.
        // Upward after peering must be rejected.
        let geant = crate::topology::scionlab::GEANT_AP;
        let mut hops = n.paths(MY_AS, geant, 1)[0].hops.clone();
        let topo = n.topology();
        let geant_idx = topo.index_of(geant).unwrap();
        let (_, up_link) = topo
            .links_of(geant_idx)
            .find(|(_, l)| l.kind == crate::topology::LinkKind::Parent && l.b == geant_idx)
            .expect("GEANT has a parent");
        let core_idx = up_link.peer_of(geant_idx).unwrap();
        hops.last_mut().unwrap().egress = up_link.iface_of(geant_idx).unwrap();
        hops.push(crate::path::PathHop::new(
            topo.node(core_idx).ia,
            up_link.iface_of(core_idx).unwrap(),
            crate::addr::IfaceId::NONE,
        ));
        let forged = ScionPath {
            hops,
            mtu: 0,
            expected_latency_ms: 0.0,
            status: crate::path::PathStatus::Unknown,
            macs: vec![],
        };
        assert!(matches!(
            validate_structure(topo, &forged),
            Err(PathError::Valley(_))
        ));
    }

    #[test]
    fn forks_with_same_salt_replay_identical_draws() {
        let n = net();
        n.set_server_behavior(ireland(), ServerBehavior::Flaky(0.5));
        let paths = n.paths(MY_AS, AWS_IRELAND, 1);
        let a = n.fork(3);
        let b = n.fork(3);
        // Interleave unrelated work on one fork's sibling: `a`'s draws
        // must not change.
        let _ = b.jitter_unit();
        let out_a = a
            .ping(&paths[0], ireland(), &ProbeOptions::default())
            .unwrap();
        let c = n.fork(3);
        let out_c = c
            .ping(&paths[0], ireland(), &ProbeOptions::default())
            .unwrap();
        assert_eq!(out_a, out_c, "same salt, same state, same outcome");
        assert_eq!(a.now_ms(), c.now_ms());
        // A different salt yields an independent stream.
        let d = n.fork(4);
        assert_ne!(a.jitter_unit(), d.jitter_unit());
    }

    #[test]
    fn fork_snapshots_clock_and_faults_without_sharing() {
        let n = net();
        n.advance_ms(5_000.0);
        let f = n.fork(1);
        assert_eq!(f.now_ms(), n.now_ms());
        // Advancing the fork leaves the parent untouched.
        f.advance_ms(1_000.0);
        assert_eq!(n.now_ms(), 5_000.0);
        // Fault changes after the fork do not leak into it.
        n.set_server_behavior(ireland(), ServerBehavior::Down);
        let paths = f.paths(MY_AS, AWS_IRELAND, 1);
        let out = f
            .ping(&paths[0], ireland(), &ProbeOptions::default())
            .unwrap();
        assert!(out.received() > 25, "fork still sees the server up");
    }

    #[test]
    fn chaos_schedule_fires_as_the_clock_advances() {
        use crate::chaos::{ChaosSchedule, Dwell, LinkFlap};
        let n = net();
        let mut s = ChaosSchedule::new(9, 30_000.0);
        s.flaps.push(LinkFlap {
            a: MY_AS,
            b: ETHZ_AP,
            first_down_ms: 10_000.0,
            down: Dwell::fixed(5_000.0),
            up: Dwell::fixed(60_000.0),
        });
        let installed = n.install_chaos(&s).unwrap();
        assert_eq!(installed, 2, "one down + one up transition");
        assert_eq!(n.chaos_applied(), 0);
        let epoch0 = n.fault_epoch();

        let path = n.paths(MY_AS, AWS_IRELAND, 1).remove(0); // clock → 800 ms
        assert!(n.path_is_up(&path));

        // Cross the down transition: the uplink (hence every path) dies
        // and the fault epoch moves.
        n.advance_ms(10_000.0);
        assert_eq!(n.chaos_applied(), 1);
        assert!(n.fault_epoch() > epoch0);
        assert!(!n.path_is_up(&path));
        assert_eq!(
            n.paths(MY_AS, AWS_IRELAND, 1)[0].status,
            PathStatus::Timeout
        );

        // Cross the heal transition: liveness recovers automatically.
        n.advance_ms(10_000.0);
        assert_eq!(n.chaos_applied(), 2);
        assert!(n.path_is_up(&path));
    }

    #[test]
    fn chaos_installation_applies_already_due_transitions() {
        use crate::chaos::{AsOutage, ChaosSchedule};
        let n = net();
        n.advance_ms(20_000.0);
        let mut s = ChaosSchedule::new(1, 60_000.0);
        s.outages.push(AsOutage {
            node: AWS_IRELAND,
            start_ms: 5_000.0,
            duration_ms: 40_000.0, // still active at 20 s
        });
        n.install_chaos(&s).unwrap();
        assert_eq!(n.chaos_applied(), 1, "the start transition is due");
        let path = n.paths(MY_AS, AWS_IRELAND, 1).remove(0);
        assert!(!n.path_is_up(&path), "installed mid-outage");
    }

    #[test]
    fn forks_continue_the_schedule_deterministically() {
        use crate::chaos::{ChaosSchedule, Dwell, LinkFlap};
        let mk = || {
            let n = net();
            let mut s = ChaosSchedule::new(3, 120_000.0);
            s.flaps.push(LinkFlap {
                a: MY_AS,
                b: ETHZ_AP,
                first_down_ms: 2_000.0,
                down: Dwell::uniform(1_000.0, 4_000.0),
                up: Dwell::uniform(5_000.0, 15_000.0),
            });
            n.install_chaos(&s).unwrap();
            n.advance_ms(1_500.0);
            n
        };
        let (a, b) = (mk(), mk());
        assert_eq!(*a.chaos_events(), *b.chaos_events(), "same compiled trace");

        // A fork picks up mid-schedule and replays the identical tail.
        let fa = a.fork(42);
        let fb = b.fork(42);
        let mut ups = Vec::new();
        for f in [&fa, &fb] {
            let path = f.paths(MY_AS, AWS_IRELAND, 1).remove(0);
            let mut states = Vec::new();
            for _ in 0..40 {
                f.advance_ms(997.0);
                states.push(f.path_is_up(&path));
            }
            ups.push(states);
        }
        assert_eq!(ups[0], ups[1]);
        assert!(ups[0].contains(&false), "the flap was observed");
        assert!(ups[0].contains(&true), "and so was a healthy phase");
        assert_eq!(fa.chaos_applied(), fb.chaos_applied());
        // The parent's cursor is unaffected by its fork's progress
        // (still before the first transition at 2 s).
        assert_eq!(a.chaos_applied(), 0);
    }

    #[test]
    fn unknown_destination_is_reported() {
        let n = net();
        let paths = n.paths(MY_AS, AWS_IRELAND, 1);
        let bogus = ScionAddr::new(AWS_IRELAND, crate::addr::HostAddr::new(10, 9, 9, 9));
        assert!(matches!(
            n.ping(&paths[0], bogus, &ProbeOptions::default()),
            Err(NetError::UnknownDestination(_))
        ));
        // Path/destination AS mismatch is also rejected.
        let virginia = paper_destinations()[2];
        assert!(matches!(
            n.ping(&paths[0], virginia, &ProbeOptions::default()),
            Err(NetError::UnknownDestination(_))
        ));
    }
}
