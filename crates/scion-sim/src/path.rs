//! End-to-end SCION paths: hop sequences, hop-predicate strings and
//! path metadata (`scion showpaths --extended` fields).

use crate::addr::{AddrParseError, IfaceId, IsdAsn};
use crate::crypto::MacTag;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

/// One transited AS on a path, with the ingress interface the packet
/// arrives on and the egress interface it leaves through. Interface id 0
/// ([`IfaceId::NONE`]) marks the missing side at the two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathHop {
    pub ia: IsdAsn,
    pub ingress: IfaceId,
    pub egress: IfaceId,
}

impl PathHop {
    pub fn new(ia: IsdAsn, ingress: IfaceId, egress: IfaceId) -> PathHop {
        PathHop {
            ia,
            ingress,
            egress,
        }
    }
}

impl fmt::Display for PathHop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Canonical hop-predicate form used by `--sequence`:
        // `17-ffaa:0:1107#2,5` (ingress,egress).
        write!(f, "{}#{},{}", self.ia, self.ingress, self.egress)
    }
}

impl FromStr for PathHop {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ia, ifs) = s
            .split_once('#')
            .ok_or_else(|| AddrParseError::BadHost(s.to_string()))?;
        let ia: IsdAsn = ia.parse()?;
        let (ig, eg) = ifs
            .split_once(',')
            .ok_or_else(|| AddrParseError::BadHost(s.to_string()))?;
        let parse_if = |t: &str| -> Result<IfaceId, AddrParseError> {
            t.parse::<u16>()
                .map(IfaceId)
                .map_err(|_| AddrParseError::BadHost(s.to_string()))
        };
        Ok(PathHop {
            ia,
            ingress: parse_if(ig)?,
            egress: parse_if(eg)?,
        })
    }
}

/// Liveness of a path as probed by `showpaths` (the `--extended` "Status"
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathStatus {
    Alive,
    Timeout,
    /// Not probed (showpaths without status probing).
    Unknown,
}

impl fmt::Display for PathStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathStatus::Alive => write!(f, "alive"),
            PathStatus::Timeout => write!(f, "timeout"),
            PathStatus::Unknown => write!(f, "unknown"),
        }
    }
}

/// A complete forwarding path between two ASes, as handed out by the path
/// server and accepted by the data plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScionPath {
    /// Transited ASes in order, source first, destination last.
    pub hops: Vec<PathHop>,
    /// Path MTU: minimum of all link MTUs.
    pub mtu: u32,
    /// Sum of one-way link propagation delays (the "Latency" hint that
    /// `showpaths --extended` reports when metadata is available).
    pub expected_latency_ms: f64,
    /// Liveness at path-server query time.
    pub status: PathStatus,
    /// Chained hop-field MACs, one per hop, attached by the path server.
    /// The data plane recomputes and checks these; a path parsed from a
    /// bare sequence string has no MACs and must be re-authorized against
    /// a path server before it can forward packets.
    #[serde(default)]
    pub macs: Vec<MacTag>,
}

impl ScionPath {
    /// Number of ASes on the path (the paper's "hop count"; e.g. the
    /// 6-hop and 7-hop classes of Fig. 5).
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Source AS.
    pub fn src(&self) -> Option<IsdAsn> {
        self.hops.first().map(|h| h.ia)
    }

    /// Destination AS.
    pub fn dst(&self) -> Option<IsdAsn> {
        self.hops.last().map(|h| h.ia)
    }

    /// The ordered set of ISDs the path traverses (deduplicated,
    /// order-preserving) — stored with each measurement in the paper's DB.
    pub fn isd_set(&self) -> Vec<u16> {
        let mut out: Vec<u16> = Vec::new();
        for h in &self.hops {
            if out.last() != Some(&h.ia.isd.0) {
                out.push(h.ia.isd.0);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether any AS appears twice (invalid path).
    pub fn has_loop(&self) -> bool {
        for (i, h) in self.hops.iter().enumerate() {
            if self.hops[i + 1..].iter().any(|o| o.ia == h.ia) {
                return true;
            }
        }
        false
    }

    /// Canonical hop-predicate sequence string, the exact format passed to
    /// `scion ping --sequence '...'` in the paper's test-suite.
    pub fn sequence(&self) -> String {
        let mut s = String::new();
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(&h.to_string());
        }
        s
    }

    /// Parse a hop-predicate sequence back into an (unmetadata'd) path.
    /// MTU/latency/status are not carried by the sequence format, so they
    /// are filled with neutral defaults; resolve against a path server to
    /// re-attach metadata.
    pub fn from_sequence(s: &str) -> Result<ScionPath, AddrParseError> {
        let hops = s
            .split_whitespace()
            .map(|h| h.parse::<PathHop>())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ScionPath {
            hops,
            mtu: 0,
            expected_latency_ms: 0.0,
            status: PathStatus::Unknown,
            macs: Vec::new(),
        })
    }

    /// Structural equality on hop sequence only (ignores metadata), used
    /// to match database paths against freshly discovered ones.
    pub fn same_route(&self, other: &ScionPath) -> bool {
        self.hops == other.hops
    }

    /// Cheap 128-bit digest over the hop sequence and the MAC chain —
    /// the cache key for validation/compile caches. Two differently
    /// seeded splitmix lanes, folded in one traversal, make accidental
    /// collisions over realistic path sets negligible; it runs on every
    /// cached compile and liveness probe, so it must cost nanoseconds,
    /// not a keyed-hash pass.
    pub fn digest(&self) -> PathDigest {
        #[inline]
        fn mix(h: u64, v: u64) -> u64 {
            let mut x = (h ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x ^= x >> 29;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^ (x >> 32)
        }
        let mut a = 0x7061_7468u64;
        let mut b = 0xd19e_57edu64;
        for hop in &self.hops {
            let ia = ((hop.ia.isd.0 as u64) << 48) ^ hop.ia.asn.0;
            let ifaces = ((hop.ingress.0 as u64) << 16) | hop.egress.0 as u64;
            a = mix(mix(a, ia), ifaces);
            b = mix(mix(b, ifaces), ia);
        }
        for m in &self.macs {
            a = mix(a, m.0);
            b = mix(b, !m.0);
        }
        // Fold the lengths in so `hops=[x], macs=[]` and `hops=[]`,
        // `macs=[x']` style boundary shifts cannot alias.
        a = mix(a, (self.hops.len() as u64) << 32 | self.macs.len() as u64);
        b = mix(b, (self.macs.len() as u64) << 32 | self.hops.len() as u64);
        (a, b)
    }
}

/// Digest of a path's identity (hops + MACs); see [`ScionPath::digest`].
pub type PathDigest = (u64, u64);

/// Deterministic 64-bit key of a hop tuple — the dedup key the path
/// server uses instead of building sequence strings per candidate.
pub fn route_key(hops: &[PathHop]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    hops.hash(&mut h);
    h.finish()
}

/// Fixed-capacity `fmt::Write` sink; errors instead of spilling.
struct StackBuf<const N: usize> {
    buf: [u8; N],
    len: usize,
}

impl<const N: usize> StackBuf<N> {
    fn new() -> StackBuf<N> {
        StackBuf {
            buf: [0; N],
            len: 0,
        }
    }

    fn bytes(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

impl<const N: usize> fmt::Write for StackBuf<N> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let b = s.as_bytes();
        if self.len + b.len() > N {
            return Err(fmt::Error);
        }
        self.buf[self.len..self.len + b.len()].copy_from_slice(b);
        self.len += b.len();
        Ok(())
    }
}

/// Compare two hops by their rendered hop-predicate strings without
/// allocating. Falls back to heap strings in the (sizing-impossible)
/// event a rendering overflows the stack buffer.
fn hop_display_cmp(a: &PathHop, b: &PathHop) -> Ordering {
    use fmt::Write;
    let mut ba = StackBuf::<48>::new();
    let mut bb = StackBuf::<48>::new();
    match (write!(ba, "{a}"), write!(bb, "{b}")) {
        (Ok(()), Ok(())) => ba.bytes().cmp(bb.bytes()),
        _ => a.to_string().cmp(&b.to_string()),
    }
}

/// Order two paths exactly as comparing their [`ScionPath::sequence`]
/// strings would, hop by hop and allocation-free.
///
/// Equivalence holds because the separator `' '` (0x20) sorts below
/// every byte a rendered hop can contain (`#` 0x23, `,` 0x2c, `-` 0x2d,
/// `:` 0x3a, digits, hex letters): whenever one side's next hop string
/// is a strict prefix of the other's, or one path is a strict hop
/// prefix of the other, the joined-string comparison also resolves in
/// favour of the shorter side.
pub fn sequence_cmp(a: &ScionPath, b: &ScionPath) -> Ordering {
    for (ha, hb) in a.hops.iter().zip(&b.hops) {
        if ha == hb {
            continue;
        }
        let ord = hop_display_cmp(ha, hb);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.hops.len().cmp(&b.hops.len())
}

impl fmt::Display for ScionPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // showpaths-like rendering: `A 2>1 B 4>3 C`.
        for (i, h) in self.hops.iter().enumerate() {
            if i == 0 {
                write!(f, "{} {}", h.ia, h.egress)?;
            } else if i == self.hops.len() - 1 {
                write!(f, ">{} {}", h.ingress, h.ia)?;
            } else {
                write!(f, ">{} {} {}", h.ingress, h.ia, h.egress)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Asn;

    fn ia(isd: u16, c: u16) -> IsdAsn {
        IsdAsn::new(isd, Asn::from_groups(0xffaa, 0, c))
    }

    fn sample_path() -> ScionPath {
        ScionPath {
            hops: vec![
                PathHop::new(ia(17, 0xeaf), IfaceId::NONE, IfaceId(1)),
                PathHop::new(ia(17, 0x1107), IfaceId(5), IfaceId(2)),
                PathHop::new(ia(17, 0x1101), IfaceId(3), IfaceId(4)),
                PathHop::new(ia(16, 0x1002), IfaceId(9), IfaceId::NONE),
            ],
            mtu: 1472,
            expected_latency_ms: 21.5,
            status: PathStatus::Alive,
            macs: Vec::new(),
        }
    }

    #[test]
    fn hop_predicate_roundtrip() {
        let h = PathHop::new(ia(17, 0x1107), IfaceId(2), IfaceId(5));
        assert_eq!(h.to_string(), "17-ffaa:0:1107#2,5");
        assert_eq!("17-ffaa:0:1107#2,5".parse::<PathHop>().unwrap(), h);
    }

    #[test]
    fn hop_predicate_rejects_malformed() {
        for s in [
            "17-ffaa:0:1107",
            "17-ffaa:0:1107#2",
            "17-ffaa:0:1107#a,b",
            "#1,2",
        ] {
            assert!(s.parse::<PathHop>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn sequence_roundtrip() {
        let p = sample_path();
        let parsed = ScionPath::from_sequence(&p.sequence()).unwrap();
        assert!(parsed.same_route(&p));
    }

    #[test]
    fn hop_count_counts_ases() {
        assert_eq!(sample_path().hop_count(), 4);
    }

    #[test]
    fn isd_set_is_sorted_and_deduped() {
        assert_eq!(sample_path().isd_set(), vec![16, 17]);
    }

    #[test]
    fn loop_detection() {
        let mut p = sample_path();
        assert!(!p.has_loop());
        p.hops
            .push(PathHop::new(ia(17, 0x1107), IfaceId(1), IfaceId::NONE));
        assert!(p.has_loop());
    }

    #[test]
    fn display_shows_interface_chain() {
        let s = sample_path().to_string();
        assert!(s.starts_with("17-ffaa:0:eaf 1>5 17-ffaa:0:1107"), "{s}");
        assert!(s.ends_with(">9 16-ffaa:0:1002"), "{s}");
    }

    #[test]
    fn sequence_cmp_matches_string_comparison() {
        let base = sample_path();
        let mut shorter = base.clone();
        shorter.hops.pop();
        let mut other_iface = base.clone();
        other_iface.hops[1].egress = IfaceId(23); // "2" vs "23": prefix case
        let mut other_as = base.clone();
        other_as.hops[2].ia = ia(17, 0x1102);
        let paths = [base, shorter, other_iface, other_as];
        for a in &paths {
            for b in &paths {
                assert_eq!(
                    sequence_cmp(a, b),
                    a.sequence().cmp(&b.sequence()),
                    "{} vs {}",
                    a.sequence(),
                    b.sequence()
                );
            }
        }
    }

    #[test]
    fn digest_tracks_hops_and_macs() {
        let p = sample_path();
        assert_eq!(p.digest(), p.digest());
        let mut moved = p.clone();
        moved.hops[1].egress = IfaceId(9);
        assert_ne!(p.digest(), moved.digest());
        let mut tagged = p.clone();
        tagged.macs = vec![MacTag(1); tagged.hops.len()];
        assert_ne!(p.digest(), tagged.digest());
        // Metadata does not participate: same route, same digest.
        let mut remeta = p.clone();
        remeta.mtu = 9000;
        remeta.expected_latency_ms = 1.0;
        remeta.status = PathStatus::Timeout;
        assert_eq!(p.digest(), remeta.digest());
    }

    #[test]
    fn src_dst_accessors() {
        let p = sample_path();
        assert_eq!(p.src(), Some(ia(17, 0xeaf)));
        assert_eq!(p.dst(), Some(ia(16, 0x1002)));
        let empty = ScionPath {
            hops: vec![],
            mtu: 0,
            expected_latency_ms: 0.0,
            status: PathStatus::Unknown,
            macs: Vec::new(),
        };
        assert_eq!(empty.src(), None);
    }
}
