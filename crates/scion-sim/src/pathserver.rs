//! Path server: combines beaconed segments into end-to-end forwarding
//! paths, attaches metadata (MTU, expected latency) and hop-field MACs,
//! and validates paths presented by end hosts.
//!
//! This implements the lookup contract behind `scion showpaths`: paths
//! are the up×core×down combinations of registered segments (plus
//! same-ISD shortcuts), deduplicated, loop-filtered and ranked by hop
//! count — the ranking the paper relies on when it retains only paths
//! with at most `min_hops + 1` hops.

use crate::addr::{IfaceId, IsdAsn};
use crate::beacon::{run_beaconing, BeaconConfig, BeaconStore, KeyProvider};
use crate::crypto::MacTag;
use crate::path::{route_key, sequence_cmp, PathHop, PathStatus, ScionPath};
use crate::segments::{hop_mac, Segment};
use crate::topology::{LinkKind, Topology};
use parking_lot::Mutex;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Info-field constant binding data-plane path MACs (distinct from
/// beacon-time segment MACs).
const PATH_INFO: u64 = 0x70617468;

/// Errors from path validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The hop sequence revisits an AS.
    Loop,
    /// An egress interface does not connect to the next hop's ingress.
    BrokenAdjacency(usize),
    /// The path violates valley-freedom (goes down then up again).
    Valley(usize),
    /// An unknown AS appears on the path.
    UnknownAs(IsdAsn),
    /// The MAC chain is missing or does not verify.
    BadMac,
    /// The path is empty or malformed at its endpoints.
    Malformed,
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Loop => write!(f, "path revisits an AS"),
            PathError::BrokenAdjacency(i) => write!(f, "hops {i} and {} are not adjacent", i + 1),
            PathError::Valley(i) => write!(f, "valley violation at hop {i}"),
            PathError::UnknownAs(ia) => write!(f, "unknown AS {ia} on path"),
            PathError::BadMac => write!(f, "hop-field MAC verification failed"),
            PathError::Malformed => write!(f, "malformed path"),
        }
    }
}

impl std::error::Error for PathError {}

/// One `(src, dst)` entry of the ranked cache: the ranked prefix forced
/// so far, the dedup set behind it, and the generator for the remaining
/// hop-count levels (`None` once exhausted).
#[derive(Debug)]
struct LazyRanked {
    paths: Arc<Vec<ScionPath>>,
    seen: HashSet<u64>,
    gen: Option<CombineGen>,
}

impl LazyRanked {
    fn new(gen: CombineGen) -> LazyRanked {
        LazyRanked {
            paths: Arc::new(Vec::new()),
            seen: HashSet::new(),
            gen: Some(gen),
        }
    }
}

/// Lazy (up, core, down) combination state for one `(src, dst)` pair.
///
/// A *level* is a hop count: forcing level L emits exactly the candidate
/// paths of L hops, each level internally sorted by (latency, sequence).
/// Since the exhaustive ranking orders by hop count first, forcing
/// levels in ascending order grows a prefix that is byte-identical to
/// the exhaustive list — without ever materializing the up×core×down
/// cross product. Only the up×down pairs (and their shortcut/peering
/// splices, bounded by pair count × segment length²) are enumerated up
/// front; the core dimension, the one that explodes with topology size,
/// stays a per-level store lookup.
#[derive(Debug)]
struct CombineGen {
    pairs: Vec<PairGen>,
    /// Shortcut and peering hop lists, bucketed by hop count and handed
    /// out when their level is forced.
    extras: HashMap<usize, Vec<Vec<PathHop>>>,
    next_level: usize,
    max_level: usize,
}

/// One (up, down) segment choice. `up`/`down` are `None` at core
/// endpoints; segment clones are refcount bumps (interned hop chains).
#[derive(Debug)]
struct PairGen {
    up: Option<Segment>,
    down: Option<Segment>,
    /// Core-segment store key, when the two core endpoints differ.
    core_key: Option<(IsdAsn, IsdAsn)>,
    /// Hop count of the direct join (shared core AS), when they don't.
    direct_level: Option<usize>,
    /// Sum of the present up/down segment lengths, and how many of the
    /// two are present: a core segment of length L joins into a path of
    /// `base + L - present` hops (each junction AS is shared).
    base: usize,
    present: usize,
}

/// The path server for one simulated network.
///
/// In real SCION the path server *is* a cache over beaconed segments;
/// this one additionally memoizes a lazily-extended ranked path prefix
/// per `(src, dst)` pair ([`PathServer::ranked_prefix`]). Segments are
/// immutable after beaconing, so cached entries never need invalidation
/// — liveness against the mutable fault state is the network's per-call
/// concern, not the path server's.
#[derive(Debug)]
pub struct PathServer {
    store: Arc<BeaconStore>,
    keys: KeyProvider,
    /// Memoized ranked prefixes, shared across network forks. Lookups
    /// compute under the lock so each level of each pair is forced
    /// exactly once globally, keeping cache-counter totals identical
    /// between sequential and parallel campaigns.
    ranked_cache: Mutex<HashMap<(IsdAsn, IsdAsn), LazyRanked>>,
}

impl PathServer {
    /// Run beaconing over `topo` and index the resulting segments.
    pub fn new(topo: &Topology, keys: KeyProvider, cfg: &BeaconConfig) -> PathServer {
        PathServer {
            store: Arc::new(run_beaconing(topo, &keys, cfg)),
            keys,
            ranked_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The immutable segment store (shared by every fork of a network).
    pub fn beacon_store(&self) -> &Arc<BeaconStore> {
        &self.store
    }

    /// Segment statistics (diagnostics).
    pub fn segment_counts(&self) -> (usize, usize) {
        (
            self.store.num_core_segments(),
            self.store.num_down_segments(),
        )
    }

    /// The ranked path prefix for `(src, dst)`, forced to hold at least
    /// `k` paths (or everything, if fewer exist). Returns the prefix,
    /// whether the pair's entry pre-existed in the memoization cache,
    /// and how many hop-count levels this call newly forced.
    ///
    /// The prefix only ever grows, and every prefix of it is
    /// byte-identical to the same slice of the exhaustive ranking —
    /// callers that need the first k paths never pay for the rest.
    pub fn ranked_prefix(
        &self,
        topo: &Topology,
        src: IsdAsn,
        dst: IsdAsn,
        k: usize,
    ) -> (Arc<Vec<ScionPath>>, bool, u64) {
        if src == dst {
            return (Arc::new(Vec::new()), true, 0);
        }
        // Compute under the lock: concurrent callers for the same pair
        // must observe exactly one miss (and one forcing of each level)
        // between them.
        let mut cache = self.ranked_cache.lock();
        let (hit, entry) = match cache.entry((src, dst)) {
            Entry::Occupied(e) => (true, e.into_mut()),
            Entry::Vacant(v) => (
                false,
                v.insert(LazyRanked::new(self.combine_gen(topo, src, dst))),
            ),
        };
        let mut forced = 0u64;
        while entry.paths.len() < k && self.force_level(topo, entry) {
            forced += 1;
        }
        (entry.paths.clone(), hit, forced)
    }

    /// The full ranked path list for `(src, dst)` plus whether its cache
    /// entry pre-existed. Forces every level.
    pub fn ranked(&self, topo: &Topology, src: IsdAsn, dst: IsdAsn) -> (Arc<Vec<ScionPath>>, bool) {
        let (full, hit, _) = self.ranked_prefix(topo, src, dst, usize::MAX);
        (full, hit)
    }

    /// All end-to-end paths from `src` to `dst`, ranked by hop count then
    /// expected latency, capped at `max`. Mirrors `scion showpaths -m`.
    pub fn query(&self, topo: &Topology, src: IsdAsn, dst: IsdAsn, max: usize) -> Vec<ScionPath> {
        if max == 0 {
            return Vec::new();
        }
        let (prefix, _, _) = self.ranked_prefix(topo, src, dst, max);
        prefix.iter().take(max).cloned().collect()
    }

    /// Reference implementation of [`PathServer::query`] that bypasses
    /// the memoization cache entirely — the oracle cached lookups are
    /// tested against, and the baseline the benchmarks compare to.
    pub fn query_uncached(
        &self,
        topo: &Topology,
        src: IsdAsn,
        dst: IsdAsn,
        max: usize,
    ) -> Vec<ScionPath> {
        if src == dst || max == 0 {
            return Vec::new();
        }
        let mut out = self.enumerate(topo, src, dst);
        out.truncate(max);
        out
    }

    /// Enumerate and rank every path from `src` to `dst` (uncapped).
    fn enumerate(&self, topo: &Topology, src: IsdAsn, dst: IsdAsn) -> Vec<ScionPath> {
        let src_core = is_core(topo, src);
        let dst_core = is_core(topo, dst);

        let ups: Vec<Option<&Segment>> = if src_core {
            vec![None]
        } else {
            match self.store.down.get(&src) {
                Some(v) => v.iter().map(Some).collect(),
                None => return Vec::new(),
            }
        };
        let downs: Vec<Option<&Segment>> = if dst_core {
            vec![None]
        } else {
            match self.store.down.get(&dst) {
                Some(v) => v.iter().map(Some).collect(),
                None => return Vec::new(),
            }
        };

        let mut seen: HashSet<u64> = HashSet::new();
        let mut out: Vec<ScionPath> = Vec::new();
        for up in &ups {
            let cs = up.map_or(src, |s| s.first_ia());
            for down in &downs {
                let cd = down.map_or(dst, |s| s.first_ia());
                if cs == cd {
                    self.push_candidate(topo, *up, None, *down, &mut seen, &mut out);
                } else if let Some(cores) = self.store.core.get(&(cs, cd)) {
                    for cseg in cores {
                        self.push_candidate(topo, *up, Some(cseg), *down, &mut seen, &mut out);
                    }
                }
                // Same-ISD shortcut: splice at a common non-core AS.
                if let (Some(us), Some(ds)) = (up, down) {
                    if us.first_ia().isd == ds.first_ia().isd {
                        for p in shortcut_candidates(us, ds) {
                            self.finish_candidate(topo, p, &mut seen, &mut out);
                        }
                    }
                    // Peering: cross a peering link from an AS on the up
                    // segment to an AS on the down segment (possibly in a
                    // different ISD), skipping the core entirely.
                    for p in peering_candidates(topo, us, ds) {
                        self.finish_candidate(topo, p, &mut seen, &mut out);
                    }
                }
            }
        }
        // `total_cmp`, not `partial_cmp().expect(..)`: a degenerate
        // (e.g. generated) topology can yield a NaN expected latency,
        // which must rank last within its hop-count class, not abort.
        out.sort_by(|a, b| {
            a.hop_count()
                .cmp(&b.hop_count())
                .then_with(|| a.expected_latency_ms.total_cmp(&b.expected_latency_ms))
                .then_with(|| sequence_cmp(a, b))
        });
        out
    }

    /// Build the lazy combination generator for `(src, dst)`: the
    /// up×down pairs, their shortcut/peering splices bucketed by hop
    /// count, and the level bounds. The core dimension is *not*
    /// expanded here — it stays a store lookup per forced level.
    fn combine_gen(&self, topo: &Topology, src: IsdAsn, dst: IsdAsn) -> CombineGen {
        let mut gen = CombineGen {
            pairs: Vec::new(),
            extras: HashMap::new(),
            next_level: 2,
            max_level: 1, // empty until a pair raises it
        };
        let src_core = is_core(topo, src);
        let dst_core = is_core(topo, dst);
        let ups: Vec<Option<&Segment>> = if src_core {
            vec![None]
        } else {
            match self.store.down.get(&src) {
                Some(v) => v.iter().map(Some).collect(),
                None => return gen,
            }
        };
        let downs: Vec<Option<&Segment>> = if dst_core {
            vec![None]
        } else {
            match self.store.down.get(&dst) {
                Some(v) => v.iter().map(Some).collect(),
                None => return gen,
            }
        };

        for up in &ups {
            let cs = up.map_or(src, |s| s.first_ia());
            for down in &downs {
                let cd = down.map_or(dst, |s| s.first_ia());
                let base = up.map_or(0, |s| s.len()) + down.map_or(0, |s| s.len());
                let present = up.is_some() as usize + down.is_some() as usize;
                let (core_key, direct_level) = if cs == cd {
                    let lvl = base + 1 - present;
                    gen.max_level = gen.max_level.max(lvl);
                    (None, Some(lvl))
                } else {
                    match self.store.core.get(&(cs, cd)) {
                        Some(cores) if !cores.is_empty() => {
                            let lmax = cores.iter().map(Segment::len).max().unwrap_or(0);
                            gen.max_level = gen.max_level.max(base + lmax - present);
                            (Some((cs, cd)), None)
                        }
                        _ => (None, None),
                    }
                };
                if let (Some(us), Some(ds)) = (up, down) {
                    // Same-ISD shortcut: splice at a common non-core AS.
                    if us.first_ia().isd == ds.first_ia().isd {
                        for hops in shortcut_candidates(us, ds) {
                            gen.max_level = gen.max_level.max(hops.len());
                            gen.extras.entry(hops.len()).or_default().push(hops);
                        }
                    }
                    // Peering: cross a peering link from an AS on the up
                    // segment to an AS on the down segment (possibly in a
                    // different ISD), skipping the core entirely.
                    for hops in peering_candidates(topo, us, ds) {
                        gen.max_level = gen.max_level.max(hops.len());
                        gen.extras.entry(hops.len()).or_default().push(hops);
                    }
                }
                if core_key.is_some() || direct_level.is_some() {
                    gen.pairs.push(PairGen {
                        up: up.cloned(),
                        down: down.cloned(),
                        core_key,
                        direct_level,
                        base,
                        present,
                    });
                }
            }
        }
        gen
    }

    /// Force one more hop-count level of `entry`: generate every
    /// candidate of exactly that hop count, dedup against everything
    /// already emitted, sort the batch by (latency, sequence) and append
    /// it to the prefix. Returns `false` once the generator is spent.
    fn force_level(&self, topo: &Topology, entry: &mut LazyRanked) -> bool {
        if entry
            .gen
            .as_ref()
            .is_none_or(|g| g.next_level > g.max_level)
        {
            entry.gen = None;
            return false;
        }
        let gen = entry.gen.as_mut().expect("checked above");
        let lv = gen.next_level;
        gen.next_level += 1;
        let mut candidates: Vec<Vec<PathHop>> = Vec::new();
        for pair in &gen.pairs {
            if pair.direct_level == Some(lv) {
                if let Some(hops) = join_segments(pair.up.as_ref(), None, pair.down.as_ref()) {
                    candidates.push(hops);
                }
            }
            if let Some(key) = pair.core_key {
                // A path of `lv` hops needs a core segment of exactly
                // `lv - base + present` ASes (junctions are shared).
                let need = lv + pair.present;
                if need > pair.base {
                    let need_len = need - pair.base;
                    if need_len >= 2 {
                        if let Some(cores) = self.store.core.get(&key) {
                            for cseg in cores.iter().filter(|c| c.len() == need_len) {
                                if let Some(hops) =
                                    join_segments(pair.up.as_ref(), Some(cseg), pair.down.as_ref())
                                {
                                    candidates.push(hops);
                                }
                            }
                        }
                    }
                }
            }
        }
        if let Some(extra) = gen.extras.remove(&lv) {
            candidates.extend(extra);
        }

        let mut batch: Vec<ScionPath> = Vec::new();
        for hops in candidates {
            debug_assert_eq!(hops.len(), lv, "level generates its own hop count");
            if let Some(mut path) = self.build_path(topo, hops) {
                if entry.seen.insert(route_key(&path.hops)) {
                    path.macs = self.mac_chain(&path);
                    debug_assert!(
                        self.validate(topo, &path).is_ok(),
                        "constructed path must validate"
                    );
                    batch.push(path);
                }
            }
        }
        if !batch.is_empty() {
            // Within one level the exhaustive ranking orders by latency
            // then sequence (hop counts are all equal) — same comparator,
            // so every forced prefix matches the exhaustive reference.
            batch.sort_by(|a, b| {
                a.expected_latency_ms
                    .total_cmp(&b.expected_latency_ms)
                    .then_with(|| sequence_cmp(a, b))
            });
            Arc::make_mut(&mut entry.paths).extend(batch);
        }
        true
    }

    /// Scan the ranked prefix for a path with `route`'s hop sequence,
    /// forcing further levels only while no match has appeared. Returns
    /// the match (if any), whether the pair's cache entry pre-existed,
    /// and how many levels this call newly forced.
    pub fn find_route(
        &self,
        topo: &Topology,
        src: IsdAsn,
        dst: IsdAsn,
        route: &ScionPath,
    ) -> (Option<ScionPath>, bool, u64) {
        if src == dst {
            return (None, true, 0);
        }
        let mut cache = self.ranked_cache.lock();
        let (hit, entry) = match cache.entry((src, dst)) {
            Entry::Occupied(e) => (true, e.into_mut()),
            Entry::Vacant(v) => (
                false,
                v.insert(LazyRanked::new(self.combine_gen(topo, src, dst))),
            ),
        };
        let mut forced = 0u64;
        let mut scanned = 0usize;
        loop {
            if let Some(p) = entry.paths[scanned..].iter().find(|p| p.same_route(route)) {
                return (Some(p.clone()), hit, forced);
            }
            scanned = entry.paths.len();
            if !self.force_level(topo, entry) {
                return (None, hit, forced);
            }
            forced += 1;
        }
    }

    /// Re-attach metadata and MACs to a bare route (e.g. parsed from a
    /// `--sequence` string). Returns `None` if the route is not one the
    /// control plane would construct. Serves from the ranked cache and
    /// stops at the first level that yields the route instead of
    /// materializing the full enumeration.
    pub fn authorize(&self, topo: &Topology, route: &ScionPath) -> Option<ScionPath> {
        let (src, dst) = (route.src()?, route.dst()?);
        self.find_route(topo, src, dst, route).0
    }

    /// Validate a path exactly as a chain of border routers would:
    /// structure, adjacency, valley-freedom, and the MAC chain.
    pub fn validate(&self, topo: &Topology, path: &ScionPath) -> Result<(), PathError> {
        validate_structure(topo, path)?;
        if path.macs.len() != path.hops.len() {
            return Err(PathError::BadMac);
        }
        let mut prev = MacTag(0);
        for (h, mac) in path.hops.iter().zip(&path.macs) {
            let expect = hop_mac(
                &self.keys.key(h.ia),
                PATH_INFO,
                h.ia,
                h.ingress,
                h.egress,
                prev,
            );
            if expect != *mac {
                return Err(PathError::BadMac);
            }
            prev = *mac;
        }
        Ok(())
    }

    fn push_candidate(
        &self,
        topo: &Topology,
        up: Option<&Segment>,
        core: Option<&Segment>,
        down: Option<&Segment>,
        seen: &mut HashSet<u64>,
        out: &mut Vec<ScionPath>,
    ) {
        if let Some(hops) = join_segments(up, core, down) {
            self.finish_candidate(topo, hops, seen, out);
        }
    }

    fn finish_candidate(
        &self,
        topo: &Topology,
        hops: Vec<PathHop>,
        seen: &mut HashSet<u64>,
        out: &mut Vec<ScionPath>,
    ) {
        let Some(mut path) = self.build_path(topo, hops) else {
            return;
        };
        if !seen.insert(route_key(&path.hops)) {
            return;
        }
        path.macs = self.mac_chain(&path);
        debug_assert!(
            self.validate(topo, &path).is_ok(),
            "constructed path must validate"
        );
        out.push(path);
    }

    /// Turn a candidate hop list into a metadata-complete path (no MACs
    /// yet). `None` if the candidate is degenerate or fails validation.
    fn build_path(&self, topo: &Topology, hops: Vec<PathHop>) -> Option<ScionPath> {
        let mut path = ScionPath {
            hops,
            mtu: 0,
            expected_latency_ms: 0.0,
            status: PathStatus::Alive,
            macs: Vec::new(),
        };
        if path.hops.len() < 2 || path.has_loop() {
            return None;
        }
        attach_metadata(topo, &mut path).ok()?;
        Some(path)
    }

    fn mac_chain(&self, path: &ScionPath) -> Vec<MacTag> {
        let mut macs = Vec::with_capacity(path.hops.len());
        let mut prev = MacTag(0);
        for h in &path.hops {
            let m = hop_mac(
                &self.keys.key(h.ia),
                PATH_INFO,
                h.ia,
                h.ingress,
                h.egress,
                prev,
            );
            macs.push(m);
            prev = m;
        }
        macs
    }
}

fn is_core(topo: &Topology, ia: IsdAsn) -> bool {
    topo.index_of(ia)
        .map(|i| topo.node(i).kind.is_core())
        .unwrap_or(false)
}

/// Merge up (reversed), core (forward) and down (forward) segments into a
/// hop list. Returns `None` for structurally impossible joins.
fn join_segments(
    up: Option<&Segment>,
    core: Option<&Segment>,
    down: Option<&Segment>,
) -> Option<Vec<PathHop>> {
    let mut hops: Vec<PathHop> = Vec::new();

    if let Some(us) = up {
        // Travel leaf -> core: iterate beacon hops in reverse.
        for (k, h) in us.hops.iter().enumerate().rev() {
            let ingress = if k == us.hops.len() - 1 {
                IfaceId::NONE
            } else {
                h.out_if
            };
            // Beacon in_if is the interface toward the parent = our egress
            // when traveling upward; the core's in_if is NONE.
            hops.push(PathHop::new(h.ia, ingress, h.in_if));
        }
    }

    if let Some(cs) = core {
        append_forward(&mut hops, cs)?;
    }

    if let Some(ds) = down {
        append_forward(&mut hops, ds)?;
    } else if let Some(last) = hops.last_mut() {
        last.egress = IfaceId::NONE;
    }

    if hops.is_empty() {
        return None;
    }
    Some(hops)
}

/// Append a beacon-direction segment, merging its first AS with the
/// current last hop (which must be the same AS, or the hop list empty).
fn append_forward(hops: &mut Vec<PathHop>, seg: &Segment) -> Option<()> {
    let mut iter = seg.hops.iter();
    let first = iter.next()?;
    match hops.last_mut() {
        Some(last) => {
            if last.ia != first.ia {
                return None;
            }
            last.egress = first.out_if;
        }
        None => {
            hops.push(PathHop::new(first.ia, IfaceId::NONE, first.out_if));
        }
    }
    for h in iter {
        hops.push(PathHop::new(h.ia, h.in_if, h.out_if));
    }
    // Terminal AS of the segment ends the (sub)path until a later append
    // overwrites its egress.
    if let Some(last) = hops.last_mut() {
        if last.egress == IfaceId::NONE || seg.hops.last().map(|h| h.out_if) == Some(IfaceId::NONE)
        {
            last.egress = IfaceId::NONE;
        }
    }
    Some(())
}

/// Same-ISD shortcuts: for every AS common to the up and down segments,
/// splice `src -> X` (from the up segment) with `X -> dst` (from the down
/// segment), skipping the core entirely.
fn shortcut_candidates(us: &Segment, ds: &Segment) -> Vec<Vec<PathHop>> {
    let mut out = Vec::new();
    for (i, uh) in us.hops.iter().enumerate() {
        if i == 0 {
            continue; // crossing at the core is the regular join
        }
        for (j, dh) in ds.hops.iter().enumerate() {
            if j == 0 || uh.ia != dh.ia {
                continue;
            }
            // Travel src = us.last -> ... -> us[i] = X, then ds[j] -> dst.
            let mut hops: Vec<PathHop> = Vec::new();
            for (k, h) in us.hops.iter().enumerate().rev() {
                if k < i {
                    break;
                }
                let ingress = if k == us.hops.len() - 1 {
                    IfaceId::NONE
                } else {
                    h.out_if
                };
                hops.push(PathHop::new(h.ia, ingress, h.in_if));
            }
            // hops.last() is X arriving from below; leave via ds[j].out_if.
            if let Some(x) = hops.last_mut() {
                x.egress = dh.out_if;
            }
            for h in &ds.hops[j + 1..] {
                hops.push(PathHop::new(h.ia, h.in_if, h.out_if));
            }
            if let Some(last) = hops.last_mut() {
                last.egress = IfaceId::NONE;
            }
            out.push(hops);
        }
    }
    out
}

/// Peering combination: for every AS `X` on the up segment with a
/// peering link to an AS `Y` on the down segment, build
/// `src → X —peer→ Y → dst`. This is SCION's peering-shortcut path
/// construction; the valley check enforces at most one peering crossing.
fn peering_candidates(topo: &Topology, us: &Segment, ds: &Segment) -> Vec<Vec<PathHop>> {
    let mut out = Vec::new();
    for (i, uh) in us.hops.iter().enumerate() {
        let Some(x_idx) = topo.index_of(uh.ia) else {
            continue;
        };
        for (j, dh) in ds.hops.iter().enumerate() {
            let Some(y_idx) = topo.index_of(dh.ia) else {
                continue;
            };
            for (_, link) in topo.links_of(x_idx) {
                if link.kind != LinkKind::Peering || link.peer_of(x_idx) != Some(y_idx) {
                    continue;
                }
                // Travel src = us.last -> ... -> us[i] = X.
                let mut hops: Vec<PathHop> = Vec::new();
                for (k, h) in us.hops.iter().enumerate().rev() {
                    if k < i {
                        break;
                    }
                    let ingress = if k == us.hops.len() - 1 {
                        IfaceId::NONE
                    } else {
                        h.out_if
                    };
                    hops.push(PathHop::new(h.ia, ingress, h.in_if));
                }
                // Cross the peering link.
                if let Some(x) = hops.last_mut() {
                    x.egress = link.iface_of(x_idx).expect("peering endpoint");
                }
                let y_in = link.iface_of(y_idx).expect("peering endpoint");
                let y_out = if j == ds.hops.len() - 1 {
                    IfaceId::NONE
                } else {
                    dh.out_if
                };
                hops.push(PathHop::new(dh.ia, y_in, y_out));
                // Continue down the rest of the down segment.
                for h in &ds.hops[j + 1..] {
                    hops.push(PathHop::new(h.ia, h.in_if, h.out_if));
                }
                if let Some(last) = hops.last_mut() {
                    last.egress = IfaceId::NONE;
                }
                out.push(hops);
            }
        }
    }
    out
}

/// Resolve each hop's egress link, check adjacency and valley-freedom,
/// and fill in MTU and expected latency.
fn attach_metadata(topo: &Topology, path: &mut ScionPath) -> Result<(), PathError> {
    validate_structure(topo, path)?;
    let mut mtu = u32::MAX;
    let mut latency = 0.0;
    for i in 0..path.hops.len() - 1 {
        let idx = topo
            .index_of(path.hops[i].ia)
            .ok_or(PathError::UnknownAs(path.hops[i].ia))?;
        let (_, link) = topo
            .link_at_iface(idx, path.hops[i].egress)
            .ok_or(PathError::BrokenAdjacency(i))?;
        mtu = mtu.min(link.mtu);
        latency += link.propagation_ms;
    }
    path.mtu = if mtu == u32::MAX { 0 } else { mtu };
    path.expected_latency_ms = latency;
    Ok(())
}

/// Structural validation: endpoint interfaces, adjacency, loops and
/// valley-freedom (up transitions may not follow core or down ones).
pub fn validate_structure(topo: &Topology, path: &ScionPath) -> Result<(), PathError> {
    if path.hops.len() < 2 {
        return Err(PathError::Malformed);
    }
    let first = &path.hops[0];
    let last = &path.hops[path.hops.len() - 1];
    if !first.ingress.is_none() || !last.egress.is_none() {
        return Err(PathError::Malformed);
    }
    if path.has_loop() {
        return Err(PathError::Loop);
    }

    // Phase machine: 0 = up, 1 = core, 2 = peering, 3 = down.
    // SCION's segment structure admits: up* (core* | peer?) down*.
    // A peering link may be crossed at most once, directly from the up
    // phase (it replaces the core segment); no core link may follow it.
    let mut phase = 0u8;
    for i in 0..path.hops.len() - 1 {
        let cur = &path.hops[i];
        let nxt = &path.hops[i + 1];
        let idx = topo.index_of(cur.ia).ok_or(PathError::UnknownAs(cur.ia))?;
        let nidx = topo.index_of(nxt.ia).ok_or(PathError::UnknownAs(nxt.ia))?;
        let (_, link) = topo
            .link_at_iface(idx, cur.egress)
            .ok_or(PathError::BrokenAdjacency(i))?;
        if link.peer_of(idx) != Some(nidx) || link.iface_of(nidx) != Some(nxt.ingress) {
            return Err(PathError::BrokenAdjacency(i));
        }
        phase = match link.kind {
            LinkKind::Parent if link.b == idx => {
                // child -> parent: upward, only before any turn.
                if phase != 0 {
                    return Err(PathError::Valley(i));
                }
                0
            }
            LinkKind::Core => {
                if phase > 1 {
                    return Err(PathError::Valley(i));
                }
                1
            }
            LinkKind::Peering => {
                if phase != 0 {
                    return Err(PathError::Valley(i));
                }
                2
            }
            LinkKind::Parent => 3, // parent -> child: downward, always ok.
        };
    }
    Ok(())
}
