//! Path policies: SCION's ACL-style path filtering language.
//!
//! Real SCION end hosts filter candidate paths with ordered
//! allow/deny rules over hop predicates (the `pathpol` package). This
//! implements the ACL core of that language:
//!
//! ```text
//! +                 allow everything (default-accept terminator)
//! - 16              deny any path touching ISD 16
//! + 16-ffaa:0:1002  allow paths touching this AS
//! - 0               deny everything (default-deny terminator)
//! ```
//!
//! A path is evaluated against the rules in order: the first rule whose
//! pattern matches *any hop* of the path decides. A trailing `+`/`- 0`
//! decides paths no rule matched; without a terminator the default is
//! deny (as in SCION).
//!
//! ```
//! use scion_sim::policy::Acl;
//! let acl: Acl = "- 16-ffaa:0:1004\n+".parse().unwrap();
//! ```

use crate::addr::{Asn, IsdAsn};
use crate::path::ScionPath;
use std::fmt;
use std::str::FromStr;

/// A hop pattern: ISD and ASN each either a wildcard or pinned.
/// `0` / `0-0` match anything, `16` any AS of ISD 16, `16-ffaa:0:1002`
/// exactly one AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopPattern {
    pub isd: Option<u16>,
    pub asn: Option<Asn>,
}

impl HopPattern {
    /// The match-anything pattern.
    pub const ANY: HopPattern = HopPattern {
        isd: None,
        asn: None,
    };

    pub fn matches(&self, ia: IsdAsn) -> bool {
        self.isd.is_none_or(|isd| isd == ia.isd.0) && self.asn.is_none_or(|asn| asn == ia.asn)
    }
}

impl fmt::Display for HopPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.isd, self.asn) {
            (None, None) => write!(f, "0"),
            (Some(isd), None) => write!(f, "{isd}"),
            (Some(isd), Some(asn)) => write!(f, "{isd}-{asn}"),
            (None, Some(asn)) => write!(f, "0-{asn}"),
        }
    }
}

impl FromStr for HopPattern {
    type Err = PolicyParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(PolicyParseError(format!("empty hop pattern in {s:?}")));
        }
        match s.split_once('-') {
            None => {
                let isd: u16 = s
                    .parse()
                    .map_err(|_| PolicyParseError(format!("bad ISD in pattern {s:?}")))?;
                Ok(HopPattern {
                    isd: (isd != 0).then_some(isd),
                    asn: None,
                })
            }
            Some((isd, asn)) => {
                let isd: u16 = isd
                    .parse()
                    .map_err(|_| PolicyParseError(format!("bad ISD in pattern {s:?}")))?;
                let asn: Asn = asn
                    .parse()
                    .map_err(|_| PolicyParseError(format!("bad ASN in pattern {s:?}")))?;
                Ok(HopPattern {
                    isd: (isd != 0).then_some(isd),
                    asn: (asn.0 != 0).then_some(asn),
                })
            }
        }
    }
}

/// Allow or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    Allow,
    Deny,
}

/// One ACL entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AclRule {
    pub action: Action,
    pub pattern: HopPattern,
}

impl fmt::Display for AclRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = match self.action {
            Action::Allow => '+',
            Action::Deny => '-',
        };
        if self.pattern == HopPattern::ANY {
            write!(f, "{sign}")
        } else {
            write!(f, "{sign} {}", self.pattern)
        }
    }
}

/// Parse error for policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyParseError(pub String);

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy parse error: {}", self.0)
    }
}

impl std::error::Error for PolicyParseError {}

/// An ordered ACL. Parsed from newline- or comma-separated rules.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Acl {
    pub rules: Vec<AclRule>,
}

impl Acl {
    /// The decision for one path: first rule whose pattern matches any
    /// hop wins; unmatched paths are denied (SCION's default).
    pub fn decide(&self, path: &ScionPath) -> Action {
        for rule in &self.rules {
            if rule.pattern == HopPattern::ANY
                || path.hops.iter().any(|h| rule.pattern.matches(h.ia))
            {
                return rule.action;
            }
        }
        Action::Deny
    }

    /// Keep only the allowed paths, preserving order.
    pub fn filter(&self, paths: Vec<ScionPath>) -> Vec<ScionPath> {
        paths
            .into_iter()
            .filter(|p| self.decide(p) == Action::Allow)
            .collect()
    }
}

impl fmt::Display for Acl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

impl FromStr for Acl {
    type Err = PolicyParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut rules = Vec::new();
        for raw in s.split(['\n', ',']) {
            let raw = raw.trim();
            if raw.is_empty() || raw.starts_with('#') {
                continue;
            }
            let (action, rest) = match raw.chars().next() {
                Some('+') => (Action::Allow, &raw[1..]),
                Some('-') => (Action::Deny, &raw[1..]),
                _ => {
                    return Err(PolicyParseError(format!(
                        "rule must start with '+' or '-': {raw:?}"
                    )))
                }
            };
            let rest = rest.trim();
            let pattern = if rest.is_empty() {
                HopPattern::ANY
            } else {
                rest.parse()?
            };
            rules.push(AclRule { action, pattern });
        }
        if rules.is_empty() {
            return Err(PolicyParseError("empty policy".into()));
        }
        Ok(Acl { rules })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::ScionNetwork;
    use crate::topology::scionlab::{AWS_IRELAND, AWS_OHIO, AWS_SINGAPORE, MY_AS};

    fn paths() -> Vec<ScionPath> {
        ScionNetwork::scionlab(44).paths(MY_AS, AWS_IRELAND, 40)
    }

    #[test]
    fn hop_pattern_parsing_and_wildcards() {
        let any: HopPattern = "0".parse().unwrap();
        assert_eq!(any, HopPattern::ANY);
        assert!(any.matches(AWS_IRELAND));

        let isd: HopPattern = "16".parse().unwrap();
        assert!(isd.matches(AWS_IRELAND));
        assert!(!isd.matches(MY_AS));

        let exact: HopPattern = "16-ffaa:0:1004".parse().unwrap();
        assert!(exact.matches(AWS_SINGAPORE));
        assert!(!exact.matches(AWS_IRELAND));

        assert!("".parse::<HopPattern>().is_err());
        assert!("x".parse::<HopPattern>().is_err());
        assert!("16-xyz".parse::<HopPattern>().is_err());
    }

    #[test]
    fn acl_roundtrip_display_parse() {
        let acl: Acl = "- 16-ffaa:0:1004\n- 16-ffaa:0:1007\n+".parse().unwrap();
        assert_eq!(acl.rules.len(), 3);
        let text = acl.to_string();
        let back: Acl = text.parse().unwrap();
        assert_eq!(acl, back);
    }

    #[test]
    fn comma_separated_and_comments() {
        let acl: Acl = "# drop Singapore detours\n- 16-ffaa:0:1004, +"
            .parse()
            .unwrap();
        assert_eq!(acl.rules.len(), 2);
    }

    #[test]
    fn first_match_wins() {
        // Allow Singapore explicitly before denying ISD 16: Singapore
        // paths survive, other AWS paths die.
        let acl: Acl = "+ 16-ffaa:0:1004\n- 16\n+".parse().unwrap();
        let kept = acl.filter(paths());
        assert!(!kept.is_empty());
        assert!(kept
            .iter()
            .all(|p| p.hops.iter().any(|h| h.ia == AWS_SINGAPORE)));
    }

    #[test]
    fn default_is_deny_without_terminator() {
        let acl: Acl = "- 16-ffaa:0:1004".parse().unwrap();
        // No path avoids matching... paths not touching Singapore match
        // no rule -> denied; Singapore paths match the deny.
        assert!(acl.filter(paths()).is_empty());
    }

    #[test]
    fn deny_detours_keep_the_rest() {
        let acl: Acl = "- 16-ffaa:0:1004\n- 16-ffaa:0:1007\n+".parse().unwrap();
        let all = paths();
        let kept = acl.filter(all.clone());
        assert!(!kept.is_empty());
        assert!(kept.len() < all.len());
        for p in &kept {
            assert!(!p
                .hops
                .iter()
                .any(|h| h.ia == AWS_SINGAPORE || h.ia == AWS_OHIO));
        }
    }

    #[test]
    fn isd_wide_deny() {
        let acl: Acl = "- 18\n+".parse().unwrap();
        let kept = acl.filter(paths());
        assert!(!kept.is_empty());
        assert!(kept.iter().all(|p| !p.isd_set().contains(&18)));
    }

    #[test]
    fn malformed_policies_rejected() {
        assert!("".parse::<Acl>().is_err());
        assert!("allow all".parse::<Acl>().is_err());
        assert!("+ 16-".parse::<Acl>().is_err());
    }
}
