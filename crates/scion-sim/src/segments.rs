//! Path-construction beacon segments: info fields, hop entries with
//! chained MACs, and segment verification.
//!
//! A path-construction beacon (PCB) records the chain of ASes it
//! traversed. Each AS appends a hop entry carrying the ingress interface
//! the beacon arrived on, the egress interface it was propagated out of,
//! and a MAC computed with the AS's forwarding key over the entry and the
//! previous hop's MAC. Chaining means an adversary cannot splice, reorder
//! or truncate-and-extend segments without a key.

use crate::addr::{IfaceId, IsdAsn};
use crate::crypto::{keyed_mac, MacTag, SymmetricKey};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which role a registered segment plays in path construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Core AS → leaf AS, used reversed as an up-segment by the leaf.
    Down,
    /// Core AS → core AS across the core graph.
    Core,
}

/// One AS's entry in a segment. Interfaces are relative to the beacon's
/// direction of travel: `in_if` is where the beacon entered this AS
/// (NONE at the originating core) and `out_if` is where it was propagated
/// onward (NONE at the last AS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HopEntry {
    pub ia: IsdAsn,
    pub in_if: IfaceId,
    pub out_if: IfaceId,
    pub mac: MacTag,
}

/// A beacon segment: an origin timestamp/nonce plus the chain of hops.
///
/// The hop chain is interned behind an `Arc`: cloning a segment (the
/// beacon store registers each kept beacon and keeps propagating it;
/// the path server holds candidate lists) bumps a refcount instead of
/// duplicating the chain, so store memory scales with the number of
/// *distinct* chains, not with how often they are referenced.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    pub kind: SegmentKind,
    /// Info-field nonce binding all MACs of this segment together.
    pub info: u64,
    pub hops: Arc<[HopEntry]>,
}

/// Compute the MAC for one hop entry chained on `prev`.
pub fn hop_mac(
    key: &SymmetricKey,
    info: u64,
    ia: IsdAsn,
    in_if: IfaceId,
    out_if: IfaceId,
    prev: MacTag,
) -> MacTag {
    let mut buf = [0u8; 32];
    buf[..8].copy_from_slice(&info.to_le_bytes());
    buf[8..10].copy_from_slice(&ia.isd.0.to_le_bytes());
    buf[10..18].copy_from_slice(&ia.asn.0.to_le_bytes());
    buf[18..20].copy_from_slice(&in_if.0.to_le_bytes());
    buf[20..22].copy_from_slice(&out_if.0.to_le_bytes());
    buf[22..30].copy_from_slice(&prev.0.to_le_bytes());
    keyed_mac(key, &buf)
}

impl Segment {
    /// Start a new segment at an originating AS.
    pub fn originate(kind: SegmentKind, info: u64, ia: IsdAsn, key: &SymmetricKey) -> Segment {
        let mac = hop_mac(key, info, ia, IfaceId::NONE, IfaceId::NONE, MacTag(0));
        Segment {
            kind,
            info,
            hops: Arc::from(vec![HopEntry {
                ia,
                in_if: IfaceId::NONE,
                out_if: IfaceId::NONE,
                mac,
            }]),
        }
    }

    /// Extend the segment: fix the current last hop's egress interface
    /// (re-MACing it) and append the next AS with its ingress interface.
    ///
    /// `last_key` is the key of the current last AS, `next_key` of the AS
    /// being appended.
    pub fn extend(
        &self,
        out_if: IfaceId,
        last_key: &SymmetricKey,
        next_ia: IsdAsn,
        next_in_if: IfaceId,
        next_key: &SymmetricKey,
    ) -> Segment {
        // One exact-sized allocation: the clone-then-push alternative
        // copies the hop vector and then reallocates it to grow.
        let mut hops = Vec::with_capacity(self.hops.len() + 1);
        hops.extend_from_slice(&self.hops);
        let last_idx = hops.len() - 1;
        let prev_mac = if last_idx == 0 {
            MacTag(0)
        } else {
            hops[last_idx - 1].mac
        };
        let last = &mut hops[last_idx];
        last.out_if = out_if;
        last.mac = hop_mac(last_key, self.info, last.ia, last.in_if, out_if, prev_mac);
        let chained = last.mac;
        hops.push(HopEntry {
            ia: next_ia,
            in_if: next_in_if,
            out_if: IfaceId::NONE,
            mac: hop_mac(
                next_key,
                self.info,
                next_ia,
                next_in_if,
                IfaceId::NONE,
                chained,
            ),
        });
        Segment {
            kind: self.kind,
            info: self.info,
            hops: Arc::from(hops),
        }
    }

    /// First (originating) AS of the segment.
    pub fn first_ia(&self) -> IsdAsn {
        self.hops[0].ia
    }

    /// Last AS of the segment.
    pub fn last_ia(&self) -> IsdAsn {
        self.hops[self.hops.len() - 1].ia
    }

    /// Number of ASes in the segment.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Replace the hop chain wholesale (re-interning it). Only
    /// meaningful for tests that need to forge tampered segments; honest
    /// construction goes through [`Segment::originate`]/[`Segment::extend`].
    pub fn with_hops(&self, hops: Vec<HopEntry>) -> Segment {
        Segment {
            kind: self.kind,
            info: self.info,
            hops: Arc::from(hops),
        }
    }

    /// Whether the segment visits any AS twice.
    pub fn has_loop(&self) -> bool {
        for (i, h) in self.hops.iter().enumerate() {
            if self.hops[i + 1..].iter().any(|o| o.ia == h.ia) {
                return true;
            }
        }
        false
    }

    /// Verify the segment: endpoint structure plus the full MAC chain.
    ///
    /// The structural check (origin has no ingress, terminal has no
    /// egress) is what defeats raw truncation: a chopped segment's new
    /// last hop still carries the egress interface its MAC was computed
    /// over, so it cannot masquerade as a terminal hop.
    pub fn verify<F>(&self, mut key_of: F) -> bool
    where
        F: FnMut(IsdAsn) -> SymmetricKey,
    {
        match (self.hops.first(), self.hops.last()) {
            (Some(f), Some(l)) if f.in_if.is_none() && l.out_if.is_none() => {}
            _ => return false,
        }
        let mut prev = MacTag(0);
        for h in self.hops.iter() {
            let expect = hop_mac(&key_of(h.ia), self.info, h.ia, h.in_if, h.out_if, prev);
            if expect != h.mac {
                return false;
            }
            prev = h.mac;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Asn;

    fn ia(isd: u16, c: u16) -> IsdAsn {
        IsdAsn::new(isd, Asn::from_groups(0xffaa, 0, c))
    }

    fn key(ia_: IsdAsn) -> SymmetricKey {
        SymmetricKey::derive(1234, ia_)
    }

    fn three_hop_segment() -> Segment {
        let (a, b, c) = (ia(17, 1), ia(17, 2), ia(17, 3));
        Segment::originate(SegmentKind::Down, 42, a, &key(a))
            .extend(IfaceId(1), &key(a), b, IfaceId(1), &key(b))
            .extend(IfaceId(2), &key(b), c, IfaceId(1), &key(c))
    }

    #[test]
    fn originate_and_extend_build_expected_shape() {
        let seg = three_hop_segment();
        assert_eq!(seg.len(), 3);
        assert_eq!(seg.first_ia(), ia(17, 1));
        assert_eq!(seg.last_ia(), ia(17, 3));
        assert_eq!(seg.hops[0].in_if, IfaceId::NONE);
        assert_eq!(seg.hops[0].out_if, IfaceId(1));
        assert_eq!(seg.hops[1].in_if, IfaceId(1));
        assert_eq!(seg.hops[1].out_if, IfaceId(2));
        assert_eq!(seg.hops[2].out_if, IfaceId::NONE);
    }

    #[test]
    fn verify_accepts_honest_chain() {
        assert!(three_hop_segment().verify(key));
    }

    #[test]
    fn verify_rejects_tampered_interface() {
        let seg = three_hop_segment();
        let mut hops = seg.hops.to_vec();
        hops[1].out_if = IfaceId(9);
        assert!(!seg.with_hops(hops).verify(key));
    }

    #[test]
    fn verify_rejects_spliced_hop() {
        let seg = three_hop_segment();
        // Replace the middle AS wholesale with an entry MAC'd standalone
        // (not chained): detection relies on the chain.
        let evil = ia(19, 99);
        let mut hops = seg.hops.to_vec();
        hops[1] = HopEntry {
            ia: evil,
            in_if: IfaceId(1),
            out_if: IfaceId(2),
            mac: hop_mac(
                &key(evil),
                seg.info,
                evil,
                IfaceId(1),
                IfaceId(2),
                MacTag(0),
            ),
        };
        assert!(!seg.with_hops(hops).verify(key));
    }

    #[test]
    fn verify_rejects_wrong_info_field() {
        let mut seg = three_hop_segment();
        seg.info ^= 1;
        assert!(!seg.verify(key));
    }

    #[test]
    fn truncation_of_suffix_still_verifies_prefix_chain() {
        // Dropping trailing hops leaves a valid chain only if the new last
        // hop's out_if/MAC are re-issued; raw truncation breaks it because
        // the last hop's MAC covers its (now wrong) egress interface.
        let seg = three_hop_segment();
        let mut hops = seg.hops.to_vec();
        hops.pop();
        assert!(
            !seg.with_hops(hops).verify(key),
            "raw truncation must not verify"
        );
    }

    #[test]
    fn loop_detection() {
        let seg = three_hop_segment();
        assert!(!seg.has_loop());
        let (a, c) = (ia(17, 1), ia(17, 3));
        let looped = seg.extend(IfaceId(5), &key(c), a, IfaceId(9), &key(a));
        assert!(looped.has_loop());
    }
}
