//! Network topology: ASes, inter-AS links with per-direction attributes,
//! and a validated builder.
//!
//! The topology is the static substrate under both the control plane
//! (beaconing discovers segments over parent/core links) and the data
//! plane (links carry capacity, propagation delay, loss and MTU).
//! [`scionlab`] instantiates the 35-AS SCIONLab-like topology used by all
//! experiments.

pub mod random;
pub mod render;
pub mod scionlab;

use crate::addr::{HostAddr, IfaceId, IsdAsn, ScionAddr};
use crate::geo::GeoLocation;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense index of an AS inside a [`Topology`]. Using a small copyable
/// index (rather than the 8-byte+ `IsdAsn`) keeps adjacency structures and
/// per-packet state compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsIndex(pub u32);

/// Dense index of a link inside a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkIndex(pub u32);

/// Role of an AS in the SCIONLab topology (the three node classes of the
/// paper's Fig. 1, plus the experimenter's own AS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsKind {
    /// Root of trust of its ISD; signs certificates, originates beacons.
    Core,
    /// Standard infrastructure AS.
    NonCore,
    /// Attachment point: accepts user ASes.
    AttachmentPoint,
    /// A user-created AS attached to an attachment point (e.g. `MY_AS#1`).
    User,
}

impl AsKind {
    pub fn is_core(self) -> bool {
        matches!(self, AsKind::Core)
    }
}

/// A measurable end host inside an AS (a bwtest/SCMP responder).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    pub host: HostAddr,
    /// Human-readable label (e.g. "AWS Ireland").
    pub name: String,
}

/// An autonomous system node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsNode {
    pub ia: IsdAsn,
    pub kind: AsKind,
    /// Display name matching SCIONLab map labels (e.g. "ETHZ-AP").
    pub name: String,
    /// Operating organization, used for operator-exclusion constraints.
    pub operator: String,
    pub location: GeoLocation,
    pub servers: Vec<Server>,
}

impl AsNode {
    /// Full SCION addresses of all servers housed in this AS.
    pub fn server_addrs(&self) -> impl Iterator<Item = ScionAddr> + '_ {
        self.servers
            .iter()
            .map(move |s| ScionAddr::new(self.ia, s.host))
    }
}

/// Business relationship of a link, which constrains beacon propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Core link between two core ASes (possibly across ISDs).
    Core,
    /// Parent→child link: endpoint `a` is the parent (closer to the core).
    /// Always intra-ISD in this model.
    Parent,
    /// Peering link between non-core ASes. Modeled and validated, but the
    /// path server does not construct peering-shortcut paths (documented
    /// limitation matching the experiments, which never observe them).
    Peering,
}

/// Transmission attributes of one direction of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirAttrs {
    /// Capacity in megabits per second.
    pub capacity_mbps: f64,
    /// Residual random loss probability (0..1) independent of congestion.
    pub base_loss: f64,
    /// Jitter scale in milliseconds (half-width of a uniform perturbation
    /// applied per packet).
    pub jitter_ms: f64,
    /// Steady background utilization of the direction (0..1), consuming
    /// capacity before foreground traffic.
    pub background_util: f64,
    /// Forwarding rate limit in packets per second (`None` = uncapped).
    /// Models software border routers on small VMs, which are pps-bound
    /// long before they are bps-bound for small packets.
    pub pps_cap: Option<f64>,
}

impl DirAttrs {
    pub fn new(capacity_mbps: f64) -> DirAttrs {
        DirAttrs {
            capacity_mbps,
            base_loss: 0.0,
            jitter_ms: 0.05,
            background_util: 0.0,
            pps_cap: None,
        }
    }

    pub fn with_loss(mut self, p: f64) -> DirAttrs {
        self.base_loss = p;
        self
    }

    pub fn with_jitter(mut self, ms: f64) -> DirAttrs {
        self.jitter_ms = ms;
        self
    }

    pub fn with_background(mut self, util: f64) -> DirAttrs {
        self.background_util = util;
        self
    }

    pub fn with_pps_cap(mut self, pps: f64) -> DirAttrs {
        self.pps_cap = Some(pps);
        self
    }
}

/// An inter-AS link. Interface ids are assigned by the builder and are
/// unique within each endpoint AS, mirroring SCION hop predicates like
/// `17-ffaa:0:1107#2`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    pub a: AsIndex,
    pub a_if: IfaceId,
    pub b: AsIndex,
    pub b_if: IfaceId,
    pub kind: LinkKind,
    /// One-way propagation delay in ms (same both ways).
    pub propagation_ms: f64,
    /// Maximum transmission unit in bytes (same both ways).
    pub mtu: u32,
    /// Attributes of the a→b direction.
    pub ab: DirAttrs,
    /// Attributes of the b→a direction.
    pub ba: DirAttrs,
}

impl Link {
    /// The other endpoint, given one endpoint index.
    pub fn peer_of(&self, idx: AsIndex) -> Option<AsIndex> {
        if idx == self.a {
            Some(self.b)
        } else if idx == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Directional attributes when sending *from* `idx`.
    pub fn attrs_from(&self, idx: AsIndex) -> Option<&DirAttrs> {
        if idx == self.a {
            Some(&self.ab)
        } else if idx == self.b {
            Some(&self.ba)
        } else {
            None
        }
    }

    /// Interface id on the side of `idx`.
    pub fn iface_of(&self, idx: AsIndex) -> Option<IfaceId> {
        if idx == self.a {
            Some(self.a_if)
        } else if idx == self.b {
            Some(self.b_if)
        } else {
            None
        }
    }
}

/// Errors detected while building or validating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    DuplicateAs(IsdAsn),
    UnknownAs(IsdAsn),
    SelfLink(IsdAsn),
    /// Core links must connect two core ASes.
    CoreLinkNonCore(IsdAsn, IsdAsn),
    /// Parent links must stay within one ISD.
    CrossIsdParent(IsdAsn, IsdAsn),
    /// A core AS may not be the child end of a parent link.
    CoreAsChild(IsdAsn),
    /// Every non-core AS must reach a core AS of its ISD via parent links.
    NoUpwardPath(IsdAsn),
    /// An ISD has no core AS at all.
    IsdWithoutCore(u16),
    DuplicateServer(ScionAddr),
    /// Structurally invalid serialized form.
    Malformed(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateAs(ia) => write!(f, "duplicate AS {ia}"),
            TopologyError::UnknownAs(ia) => write!(f, "unknown AS {ia}"),
            TopologyError::SelfLink(ia) => write!(f, "self link at {ia}"),
            TopologyError::CoreLinkNonCore(a, b) => {
                write!(f, "core link between non-core ASes {a} and {b}")
            }
            TopologyError::CrossIsdParent(a, b) => {
                write!(f, "parent link crossing ISDs: {a} -> {b}")
            }
            TopologyError::CoreAsChild(ia) => write!(f, "core AS {ia} as child of a parent link"),
            TopologyError::NoUpwardPath(ia) => {
                write!(f, "AS {ia} has no upward path to a core of its ISD")
            }
            TopologyError::IsdWithoutCore(isd) => write!(f, "ISD {isd} has no core AS"),
            TopologyError::DuplicateServer(a) => write!(f, "duplicate server address {a}"),
            TopologyError::Malformed(m) => write!(f, "malformed topology: {m}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated, immutable network topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    ases: Vec<AsNode>,
    links: Vec<Link>,
    #[serde(skip)]
    by_ia: HashMap<IsdAsn, AsIndex>,
    /// links_of[as] = link indices incident to that AS.
    #[serde(skip)]
    adjacency: Vec<Vec<LinkIndex>>,
    /// iface_map[as][iface] = the link attached there; O(1) egress
    /// resolution on the per-hop hot paths (validation, compilation,
    /// liveness probing).
    #[serde(skip)]
    iface_map: Vec<HashMap<IfaceId, LinkIndex>>,
}

impl Topology {
    pub fn num_ases(&self) -> usize {
        self.ases.len()
    }

    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    pub fn ases(&self) -> impl Iterator<Item = (AsIndex, &AsNode)> {
        self.ases
            .iter()
            .enumerate()
            .map(|(i, n)| (AsIndex(i as u32), n))
    }

    pub fn links(&self) -> impl Iterator<Item = (LinkIndex, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkIndex(i as u32), l))
    }

    pub fn node(&self, idx: AsIndex) -> &AsNode {
        &self.ases[idx.0 as usize]
    }

    pub fn link(&self, idx: LinkIndex) -> &Link {
        &self.links[idx.0 as usize]
    }

    pub fn index_of(&self, ia: IsdAsn) -> Option<AsIndex> {
        self.by_ia.get(&ia).copied()
    }

    /// Links incident to `idx`.
    pub fn links_of(&self, idx: AsIndex) -> impl Iterator<Item = (LinkIndex, &Link)> {
        self.adjacency[idx.0 as usize]
            .iter()
            .map(move |&li| (li, self.link(li)))
    }

    /// Resolve the link attached to interface `iface` of AS `idx`.
    pub fn link_at_iface(&self, idx: AsIndex, iface: IfaceId) -> Option<(LinkIndex, &Link)> {
        let li = *self.iface_map.get(idx.0 as usize)?.get(&iface)?;
        Some((li, self.link(li)))
    }

    /// All ISD numbers present.
    pub fn isds(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self.ases.iter().map(|n| n.ia.isd.0).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Core ASes of one ISD.
    pub fn cores_of_isd(&self, isd: u16) -> Vec<AsIndex> {
        self.ases()
            .filter(|(_, n)| n.ia.isd.0 == isd && n.kind.is_core())
            .map(|(i, _)| i)
            .collect()
    }

    /// All server addresses across the network, in AS order.
    pub fn all_servers(&self) -> Vec<ScionAddr> {
        self.ases
            .iter()
            .flat_map(|n| n.server_addrs().collect::<Vec<_>>())
            .collect()
    }

    /// Locate the AS index housing a server address.
    pub fn server_as(&self, addr: ScionAddr) -> Option<AsIndex> {
        let idx = self.index_of(addr.ia)?;
        self.node(idx)
            .servers
            .iter()
            .any(|s| s.host == addr.host)
            .then_some(idx)
    }

    /// Serialize to a JSON document (the simulator's equivalent of a
    /// SCION `topology.json` deployment file).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("topology serializes")
    }

    /// Load a topology from its JSON form, rebuilding derived indexes
    /// and re-running full validation.
    pub fn from_json_str(s: &str) -> Result<Topology, TopologyError> {
        let mut topo: Topology =
            serde_json::from_str(s).map_err(|e| TopologyError::Malformed(e.to_string()))?;
        topo.reindex();
        topo.validate()?;
        Ok(topo)
    }

    /// Re-run the builder's global invariants on this topology (used
    /// after deserialization, where arbitrary JSON could encode an
    /// invalid graph).
    pub fn validate(&self) -> Result<(), TopologyError> {
        for isd in self.isds() {
            if self.cores_of_isd(isd).is_empty() {
                return Err(TopologyError::IsdWithoutCore(isd));
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            let n = self.ases.len() as u32;
            if l.a.0 >= n || l.b.0 >= n || l.a == l.b {
                return Err(TopologyError::Malformed(format!("link {i} endpoints")));
            }
            let (na, nb) = (self.node(l.a), self.node(l.b));
            match l.kind {
                LinkKind::Core => {
                    if !na.kind.is_core() || !nb.kind.is_core() {
                        return Err(TopologyError::CoreLinkNonCore(na.ia, nb.ia));
                    }
                }
                LinkKind::Parent => {
                    if na.ia.isd != nb.ia.isd {
                        return Err(TopologyError::CrossIsdParent(na.ia, nb.ia));
                    }
                    if nb.kind.is_core() {
                        return Err(TopologyError::CoreAsChild(nb.ia));
                    }
                }
                LinkKind::Peering => {}
            }
        }
        for (idx, node) in self.ases() {
            if !node.kind.is_core() && !reaches_core_upward(self, idx) {
                return Err(TopologyError::NoUpwardPath(node.ia));
            }
        }
        // Unique IAs and unique iface ids per AS.
        let mut seen = std::collections::HashSet::new();
        for n in &self.ases {
            if !seen.insert(n.ia) {
                return Err(TopologyError::DuplicateAs(n.ia));
            }
        }
        for (idx, _) in self.ases() {
            let mut ifaces = std::collections::HashSet::new();
            for (_, l) in self.links_of(idx) {
                let iface = l.iface_of(idx).expect("incident");
                if !ifaces.insert(iface) {
                    return Err(TopologyError::Malformed(format!(
                        "duplicate interface {iface} at {}",
                        self.node(idx).ia
                    )));
                }
            }
        }
        Ok(())
    }

    /// Rebuild the derived lookup structures (used after deserialization).
    pub fn reindex(&mut self) {
        self.by_ia = self
            .ases
            .iter()
            .enumerate()
            .map(|(i, n)| (n.ia, AsIndex(i as u32)))
            .collect();
        self.adjacency = vec![Vec::new(); self.ases.len()];
        self.iface_map = vec![HashMap::new(); self.ases.len()];
        for (i, l) in self.links.iter().enumerate() {
            self.adjacency[l.a.0 as usize].push(LinkIndex(i as u32));
            self.adjacency[l.b.0 as usize].push(LinkIndex(i as u32));
            self.iface_map[l.a.0 as usize].insert(l.a_if, LinkIndex(i as u32));
            self.iface_map[l.b.0 as usize].insert(l.b_if, LinkIndex(i as u32));
        }
    }
}

/// Incremental topology builder; `build` runs full validation.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    ases: Vec<AsNode>,
    links: Vec<Link>,
    by_ia: HashMap<IsdAsn, AsIndex>,
    next_iface: Vec<u16>,
}

impl TopologyBuilder {
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Register an AS. Fails on duplicate ISD-AS identifiers.
    pub fn add_as(
        &mut self,
        ia: IsdAsn,
        kind: AsKind,
        name: &str,
        operator: &str,
        location: GeoLocation,
    ) -> Result<AsIndex, TopologyError> {
        if self.by_ia.contains_key(&ia) {
            return Err(TopologyError::DuplicateAs(ia));
        }
        let idx = AsIndex(self.ases.len() as u32);
        self.ases.push(AsNode {
            ia,
            kind,
            name: name.to_string(),
            operator: operator.to_string(),
            location,
            servers: Vec::new(),
        });
        self.by_ia.insert(ia, idx);
        self.next_iface.push(1);
        Ok(idx)
    }

    /// Add a measurable server to an AS.
    pub fn add_server(
        &mut self,
        ia: IsdAsn,
        host: HostAddr,
        name: &str,
    ) -> Result<(), TopologyError> {
        let idx = *self.by_ia.get(&ia).ok_or(TopologyError::UnknownAs(ia))?;
        let addr = ScionAddr::new(ia, host);
        let dup = self
            .ases
            .iter()
            .any(|n| n.ia == ia && n.servers.iter().any(|s| s.host == host));
        if dup {
            return Err(TopologyError::DuplicateServer(addr));
        }
        self.ases[idx.0 as usize].servers.push(Server {
            host,
            name: name.to_string(),
        });
        Ok(())
    }

    /// Connect two ASes. For [`LinkKind::Parent`], `a` is the parent.
    /// Propagation delay is derived from the endpoints' geography; other
    /// attributes come from the caller. Returns the new link's index.
    pub fn add_link(
        &mut self,
        a: IsdAsn,
        b: IsdAsn,
        kind: LinkKind,
        mtu: u32,
        ab: DirAttrs,
        ba: DirAttrs,
    ) -> Result<LinkIndex, TopologyError> {
        let ai = *self.by_ia.get(&a).ok_or(TopologyError::UnknownAs(a))?;
        let bi = *self.by_ia.get(&b).ok_or(TopologyError::UnknownAs(b))?;
        if ai == bi {
            return Err(TopologyError::SelfLink(a));
        }
        let (na, nb) = (&self.ases[ai.0 as usize], &self.ases[bi.0 as usize]);
        match kind {
            LinkKind::Core => {
                if !na.kind.is_core() || !nb.kind.is_core() {
                    return Err(TopologyError::CoreLinkNonCore(a, b));
                }
            }
            LinkKind::Parent => {
                if a.isd != b.isd {
                    return Err(TopologyError::CrossIsdParent(a, b));
                }
                if nb.kind.is_core() {
                    return Err(TopologyError::CoreAsChild(b));
                }
            }
            LinkKind::Peering => {}
        }
        let propagation_ms = na.location.propagation_ms(&nb.location);
        let a_if = IfaceId(self.next_iface[ai.0 as usize]);
        self.next_iface[ai.0 as usize] += 1;
        let b_if = IfaceId(self.next_iface[bi.0 as usize]);
        self.next_iface[bi.0 as usize] += 1;
        let idx = LinkIndex(self.links.len() as u32);
        self.links.push(Link {
            a: ai,
            a_if,
            b: bi,
            b_if,
            kind,
            propagation_ms,
            mtu,
            ab,
            ba,
        });
        Ok(idx)
    }

    /// Validate global invariants and freeze the topology.
    pub fn build(self) -> Result<Topology, TopologyError> {
        // Every ISD must have a core.
        let mut isds: Vec<u16> = self.ases.iter().map(|n| n.ia.isd.0).collect();
        isds.sort_unstable();
        isds.dedup();
        for isd in &isds {
            if !self
                .ases
                .iter()
                .any(|n| n.ia.isd.0 == *isd && n.kind.is_core())
            {
                return Err(TopologyError::IsdWithoutCore(*isd));
            }
        }
        let mut topo = Topology {
            ases: self.ases,
            links: self.links,
            by_ia: HashMap::new(),
            adjacency: Vec::new(),
            iface_map: Vec::new(),
        };
        topo.reindex();
        // Every non-core AS reaches a core of its ISD walking child→parent.
        for (idx, node) in topo.ases() {
            if node.kind.is_core() {
                continue;
            }
            if !reaches_core_upward(&topo, idx) {
                return Err(TopologyError::NoUpwardPath(node.ia));
            }
        }
        Ok(topo)
    }
}

/// BFS from `start` following parent links upward (child→parent) within
/// the ISD, checking that some core AS is reachable.
fn reaches_core_upward(topo: &Topology, start: AsIndex) -> bool {
    let mut seen = vec![false; topo.num_ases()];
    let mut stack = vec![start];
    seen[start.0 as usize] = true;
    while let Some(cur) = stack.pop() {
        if topo.node(cur).kind.is_core() {
            return true;
        }
        for (_, link) in topo.links_of(cur) {
            // Upward means: we are the child end (`b`) of a Parent link.
            if link.kind == LinkKind::Parent && link.b == cur {
                let parent = link.a;
                if !seen[parent.0 as usize] {
                    seen[parent.0 as usize] = true;
                    stack.push(parent);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Asn;

    fn ia(isd: u16, c: u16) -> IsdAsn {
        IsdAsn::new(isd, Asn::from_groups(0xffaa, 0, c))
    }

    fn geo() -> GeoLocation {
        GeoLocation::new(47.4, 8.5, "Zurich", "Switzerland")
    }

    fn two_as_builder() -> TopologyBuilder {
        let mut b = TopologyBuilder::new();
        b.add_as(ia(17, 1), AsKind::Core, "core", "ETH", geo())
            .unwrap();
        b.add_as(ia(17, 2), AsKind::NonCore, "leaf", "ETH", geo())
            .unwrap();
        b
    }

    #[test]
    fn duplicate_as_rejected() {
        let mut b = two_as_builder();
        assert_eq!(
            b.add_as(ia(17, 1), AsKind::NonCore, "dup", "x", geo()),
            Err(TopologyError::DuplicateAs(ia(17, 1)))
        );
    }

    #[test]
    fn self_link_rejected() {
        let mut b = two_as_builder();
        let e = b.add_link(
            ia(17, 1),
            ia(17, 1),
            LinkKind::Core,
            1472,
            DirAttrs::new(1000.0),
            DirAttrs::new(1000.0),
        );
        assert_eq!(e, Err(TopologyError::SelfLink(ia(17, 1))));
    }

    #[test]
    fn core_link_requires_core_endpoints() {
        let mut b = two_as_builder();
        let e = b.add_link(
            ia(17, 1),
            ia(17, 2),
            LinkKind::Core,
            1472,
            DirAttrs::new(1000.0),
            DirAttrs::new(1000.0),
        );
        assert_eq!(e, Err(TopologyError::CoreLinkNonCore(ia(17, 1), ia(17, 2))));
    }

    #[test]
    fn parent_link_must_stay_in_isd() {
        let mut b = two_as_builder();
        b.add_as(ia(19, 9), AsKind::NonCore, "other", "x", geo())
            .unwrap();
        let e = b.add_link(
            ia(17, 1),
            ia(19, 9),
            LinkKind::Parent,
            1472,
            DirAttrs::new(1000.0),
            DirAttrs::new(1000.0),
        );
        assert_eq!(e, Err(TopologyError::CrossIsdParent(ia(17, 1), ia(19, 9))));
    }

    #[test]
    fn core_cannot_be_child() {
        let mut b = two_as_builder();
        let e = b.add_link(
            ia(17, 2),
            ia(17, 1),
            LinkKind::Parent,
            1472,
            DirAttrs::new(1000.0),
            DirAttrs::new(1000.0),
        );
        assert_eq!(e, Err(TopologyError::CoreAsChild(ia(17, 1))));
    }

    #[test]
    fn orphan_leaf_fails_validation() {
        let b = two_as_builder();
        // leaf has no parent link at all.
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::NoUpwardPath(ia(17, 2))
        );
    }

    #[test]
    fn isd_without_core_fails() {
        let mut b = TopologyBuilder::new();
        b.add_as(ia(99, 1), AsKind::NonCore, "lonely", "x", geo())
            .unwrap();
        assert_eq!(b.build().unwrap_err(), TopologyError::IsdWithoutCore(99));
    }

    #[test]
    fn valid_topology_builds_with_ifaces_assigned() {
        let mut b = two_as_builder();
        b.add_link(
            ia(17, 1),
            ia(17, 2),
            LinkKind::Parent,
            1472,
            DirAttrs::new(1000.0),
            DirAttrs::new(500.0),
        )
        .unwrap();
        b.add_server(ia(17, 2), HostAddr::new(10, 0, 0, 1), "leaf-server")
            .unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.num_ases(), 2);
        assert_eq!(t.num_links(), 1);
        let (_, link) = t.links().next().unwrap();
        assert_eq!(link.a_if, IfaceId(1));
        assert_eq!(link.b_if, IfaceId(1));
        let leaf = t.index_of(ia(17, 2)).unwrap();
        assert_eq!(t.link_at_iface(leaf, IfaceId(1)).unwrap().1, link);
        assert_eq!(t.all_servers().len(), 1);
        assert_eq!(
            t.server_as(ScionAddr::new(ia(17, 2), HostAddr::new(10, 0, 0, 1))),
            Some(leaf)
        );
        // Unknown server host resolves to None even though the AS exists.
        assert_eq!(
            t.server_as(ScionAddr::new(ia(17, 2), HostAddr::new(10, 0, 0, 99))),
            None
        );
    }

    #[test]
    fn duplicate_server_rejected() {
        let mut b = two_as_builder();
        b.add_server(ia(17, 2), HostAddr::new(10, 0, 0, 1), "s1")
            .unwrap();
        assert!(matches!(
            b.add_server(ia(17, 2), HostAddr::new(10, 0, 0, 1), "s2"),
            Err(TopologyError::DuplicateServer(_))
        ));
    }

    #[test]
    fn json_roundtrip_preserves_topology() {
        let t = crate::topology::scionlab::scionlab_topology();
        let json = t.to_json_string();
        let back = Topology::from_json_str(&json).unwrap();
        assert_eq!(t, back);
        // The reloaded topology is fully functional.
        assert_eq!(back.all_servers().len(), 21);
        let my = back.index_of("17-ffaa:1:eaf".parse().unwrap()).unwrap();
        assert_eq!(back.links_of(my).count(), 1);
    }

    #[test]
    fn from_json_rejects_invalid_graphs() {
        assert!(matches!(
            Topology::from_json_str("{not json"),
            Err(TopologyError::Malformed(_))
        ));
        // Valid JSON, invalid graph: tamper a core link to touch a leaf.
        let t = crate::topology::scionlab::scionlab_topology();
        let mut v: serde_json::Value = serde_json::from_str(&t.to_json_string()).unwrap();
        v["links"][0]["kind"] = serde_json::json!("Parent");
        // Core link 0 connects two cores; as Parent it makes a core a
        // child, which validation must reject.
        let err = Topology::from_json_str(&v.to_string()).unwrap_err();
        assert!(matches!(err, TopologyError::CoreAsChild(_)), "{err}");
    }

    #[test]
    fn directional_attrs_resolve_by_endpoint() {
        let mut b = two_as_builder();
        b.add_link(
            ia(17, 1),
            ia(17, 2),
            LinkKind::Parent,
            1472,
            DirAttrs::new(1000.0),
            DirAttrs::new(250.0),
        )
        .unwrap();
        let t = b.build().unwrap();
        let core = t.index_of(ia(17, 1)).unwrap();
        let leaf = t.index_of(ia(17, 2)).unwrap();
        let (_, link) = t.links().next().unwrap();
        assert_eq!(link.attrs_from(core).unwrap().capacity_mbps, 1000.0);
        assert_eq!(link.attrs_from(leaf).unwrap().capacity_mbps, 250.0);
        assert_eq!(link.peer_of(core), Some(leaf));
        assert_eq!(link.peer_of(leaf), Some(core));
        assert_eq!(link.peer_of(AsIndex(77)), None);
    }
}
