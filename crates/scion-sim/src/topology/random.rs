//! Seeded random topology generation.
//!
//! The paper's portability requirement (§4.1.3) is that the suite works
//! "on all the SCION-based networks, with minimal modifications". The
//! SCIONLab replica is one network; this module generates arbitrarily
//! many valid ones — multi-ISD graphs with core meshes, intra-ISD
//! parent DAGs, optional peering links and servers — so property tests
//! can drive the whole stack (beaconing, path server, tools, suite)
//! over networks it was never tuned for.

use crate::addr::{Asn, HostAddr, IsdAsn};
use crate::geo::GeoLocation;
use crate::topology::{AsKind, DirAttrs, LinkKind, Topology, TopologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters of a generated network.
#[derive(Debug, Clone)]
pub struct RandomTopologyConfig {
    /// Number of ISDs (≥ 1).
    pub isds: usize,
    /// ASes per ISD, inclusive range (min ≥ 2 so every ISD has a leaf).
    pub ases_per_isd: (usize, usize),
    /// Core ASes per ISD, inclusive range (min ≥ 1).
    pub cores_per_isd: (usize, usize),
    /// Probability of an extra (redundancy) parent link per non-core AS.
    pub extra_parent_prob: f64,
    /// Probability that a pair of non-core ASes in different ISDs gets a
    /// peering link (sampled over a bounded number of pairs).
    pub peering_prob: f64,
    /// Probability an AS hosts a measurable server.
    pub server_prob: f64,
}

impl Default for RandomTopologyConfig {
    fn default() -> Self {
        RandomTopologyConfig {
            isds: 3,
            ases_per_isd: (3, 6),
            cores_per_isd: (1, 2),
            extra_parent_prob: 0.4,
            peering_prob: 0.15,
            server_prob: 0.6,
        }
    }
}

/// Generate a valid topology from a seed. The same (seed, config) pair
/// always yields the same network. The first non-core AS of ISD 1 plays
/// the "user AS" role (returned second).
pub fn random_topology(seed: u64, cfg: &RandomTopologyConfig) -> (Topology, IsdAsn) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7090_1093);
    let mut b = TopologyBuilder::new();
    let mut cores: Vec<Vec<IsdAsn>> = Vec::new();
    let mut leaves: Vec<Vec<IsdAsn>> = Vec::new();

    let attrs = |rng: &mut StdRng| {
        DirAttrs::new(rng.gen_range(100.0..5000.0))
            .with_loss(rng.gen_range(0.0..0.005))
            .with_jitter(rng.gen_range(0.05..2.0))
            .with_background(rng.gen_range(0.0..0.6))
    };

    for isd in 0..cfg.isds {
        let isd_num = 10 + isd as u16;
        let n_ases = rng.gen_range(cfg.ases_per_isd.0..=cfg.ases_per_isd.1);
        let n_cores = rng
            .gen_range(cfg.cores_per_isd.0..=cfg.cores_per_isd.1)
            .min(n_ases - 1);
        let mut isd_cores = Vec::new();
        let mut isd_leaves = Vec::new();
        for a in 0..n_ases {
            let ia = IsdAsn::new(isd_num, Asn::from_groups(0xffaa, isd as u16, a as u16 + 1));
            let kind = if a < n_cores {
                AsKind::Core
            } else {
                AsKind::NonCore
            };
            let geo = GeoLocation::new(
                rng.gen_range(-60.0..70.0),
                rng.gen_range(-180.0..180.0),
                &format!("city-{isd_num}-{a}"),
                &format!("country-{}", rng.gen_range(0..8)),
            );
            b.add_as(
                ia,
                kind,
                &format!("as-{ia}"),
                &format!("op-{}", rng.gen_range(0..5)),
                geo,
            )
            .expect("unique ids by construction");
            if kind == AsKind::Core {
                isd_cores.push(ia);
            } else {
                isd_leaves.push(ia);
                if rng.gen_bool(cfg.server_prob) {
                    let host = HostAddr::new(10, isd as u8, a as u8, 1);
                    b.add_server(ia, host, &format!("server-{ia}"))
                        .expect("unique hosts by construction");
                }
            }
        }

        // Intra-ISD core mesh (when multiple cores).
        for i in 0..isd_cores.len() {
            for j in i + 1..isd_cores.len() {
                b.add_link(
                    isd_cores[i],
                    isd_cores[j],
                    LinkKind::Core,
                    1472,
                    attrs(&mut rng),
                    attrs(&mut rng),
                )
                .expect("valid core link");
            }
        }
        // Parent DAG: each leaf gets a parent among cores and earlier
        // leaves (guaranteeing an upward path), plus optional extras.
        for (li, leaf) in isd_leaves.iter().enumerate() {
            let parent = if li == 0 || rng.gen_bool(0.7) {
                isd_cores[rng.gen_range(0..isd_cores.len())]
            } else {
                isd_leaves[rng.gen_range(0..li)]
            };
            b.add_link(
                parent,
                *leaf,
                LinkKind::Parent,
                1472,
                attrs(&mut rng),
                attrs(&mut rng),
            )
            .expect("valid parent link");
            if rng.gen_bool(cfg.extra_parent_prob) {
                let extra = isd_cores[rng.gen_range(0..isd_cores.len())];
                // A second link to the same parent is fine (parallel
                // links are allowed); a distinct parent adds diversity.
                if extra != parent {
                    b.add_link(
                        extra,
                        *leaf,
                        LinkKind::Parent,
                        1472,
                        attrs(&mut rng),
                        attrs(&mut rng),
                    )
                    .expect("valid parent link");
                }
            }
        }
        cores.push(isd_cores);
        leaves.push(isd_leaves);
    }

    // Inter-ISD core connectivity: a ring over ISDs plus random chords,
    // which keeps every ISD reachable.
    for i in 0..cfg.isds {
        let j = (i + 1) % cfg.isds;
        if i == j {
            continue;
        }
        let a = cores[i][0];
        let c = cores[j][0];
        b.add_link(a, c, LinkKind::Core, 1460, attrs(&mut rng), attrs(&mut rng))
            .expect("valid inter-ISD core link");
    }
    for _ in 0..cfg.isds {
        let i = rng.gen_range(0..cfg.isds);
        let j = rng.gen_range(0..cfg.isds);
        if i == j {
            continue;
        }
        let a = cores[i][rng.gen_range(0..cores[i].len())];
        let c = cores[j][rng.gen_range(0..cores[j].len())];
        if a != c {
            // Duplicate core links are allowed (parallel links).
            b.add_link(a, c, LinkKind::Core, 1460, attrs(&mut rng), attrs(&mut rng))
                .expect("valid chord");
        }
    }

    // Sparse peering between non-core ASes of different ISDs.
    for i in 0..cfg.isds {
        for j in i + 1..cfg.isds {
            if leaves[i].is_empty() || leaves[j].is_empty() {
                continue;
            }
            if rng.gen_bool(cfg.peering_prob) {
                let x = leaves[i][rng.gen_range(0..leaves[i].len())];
                let y = leaves[j][rng.gen_range(0..leaves[j].len())];
                b.add_link(
                    x,
                    y,
                    LinkKind::Peering,
                    1472,
                    attrs(&mut rng),
                    attrs(&mut rng),
                )
                .expect("valid peering link");
            }
        }
    }

    let user = leaves[0].first().copied().unwrap_or(cores[0][0]);
    let topo = b.build().expect("generator only produces valid topologies");
    (topo, user)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beacon::{run_beaconing, BeaconConfig, KeyProvider};

    #[test]
    fn generator_is_deterministic() {
        let cfg = RandomTopologyConfig::default();
        let (a, ua) = random_topology(7, &cfg);
        let (b, ub) = random_topology(7, &cfg);
        assert_eq!(a, b);
        assert_eq!(ua, ub);
        let (c, _) = random_topology(8, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn every_seed_yields_a_valid_connected_control_plane() {
        let cfg = RandomTopologyConfig::default();
        for seed in 0..30 {
            let (topo, user) = random_topology(seed, &cfg);
            assert!(topo.num_ases() >= 2 * cfg.isds);
            // Beaconing reaches every non-core AS of every ISD.
            let keys = KeyProvider::new(seed);
            let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
            for (_, node) in topo.ases() {
                if node.kind.is_core() {
                    continue;
                }
                assert!(
                    store.down.contains_key(&node.ia),
                    "seed {seed}: no down segment for {}",
                    node.ia
                );
            }
            assert!(topo.index_of(user).is_some());
        }
    }

    #[test]
    fn respects_shape_parameters() {
        let cfg = RandomTopologyConfig {
            isds: 5,
            ases_per_isd: (4, 4),
            cores_per_isd: (2, 2),
            ..RandomTopologyConfig::default()
        };
        let (topo, _) = random_topology(3, &cfg);
        assert_eq!(topo.num_ases(), 20);
        assert_eq!(topo.isds().len(), 5);
        for isd in topo.isds() {
            assert_eq!(topo.cores_of_isd(isd).len(), 2, "isd {isd}");
        }
    }
}
