//! Seeded random topology generation.
//!
//! The paper's portability requirement (§4.1.3) is that the suite works
//! "on all the SCION-based networks, with minimal modifications". The
//! SCIONLab replica is one network; this module generates arbitrarily
//! many valid ones — multi-ISD graphs with core meshes, intra-ISD
//! parent DAGs, optional peering links and servers — so property tests
//! can drive the whole stack (beaconing, path server, tools, suite)
//! over networks it was never tuned for.

use crate::addr::{Asn, HostAddr, IsdAsn};
use crate::geo::GeoLocation;
use crate::topology::{AsKind, DirAttrs, LinkKind, Topology, TopologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A [`RandomTopologyConfig`] that cannot describe a valid network.
/// Detected up front by [`RandomTopologyConfig::validate`], so a bad
/// `topo generate` invocation fails with a message instead of a panic
/// (or an infinite loop) halfway through generation.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyConfigError {
    /// `isds` must be ≥ 1.
    NoIsds,
    /// `ases_per_isd` must satisfy `2 ≤ min ≤ max` (every ISD needs at
    /// least one core and one leaf).
    AsRange(usize, usize),
    /// `cores_per_isd` must satisfy `1 ≤ min ≤ max`.
    CoreRange(usize, usize),
    /// A probability-typed field is outside `[0, 1]` (or NaN).
    Probability(&'static str, f64),
}

impl std::fmt::Display for TopologyConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyConfigError::NoIsds => write!(f, "isds must be at least 1"),
            TopologyConfigError::AsRange(lo, hi) => {
                write!(f, "ases_per_isd ({lo}, {hi}) must satisfy 2 <= min <= max")
            }
            TopologyConfigError::CoreRange(lo, hi) => {
                write!(f, "cores_per_isd ({lo}, {hi}) must satisfy 1 <= min <= max")
            }
            TopologyConfigError::Probability(field, v) => {
                write!(f, "{field} = {v} is not a probability in [0, 1]")
            }
        }
    }
}

impl std::error::Error for TopologyConfigError {}

/// Shape parameters of a generated network.
#[derive(Debug, Clone)]
pub struct RandomTopologyConfig {
    /// Number of ISDs (≥ 1).
    pub isds: usize,
    /// ASes per ISD, inclusive range (min ≥ 2 so every ISD has a leaf).
    pub ases_per_isd: (usize, usize),
    /// Core ASes per ISD, inclusive range (min ≥ 1).
    pub cores_per_isd: (usize, usize),
    /// Probability of an extra (redundancy) parent link per non-core AS.
    pub extra_parent_prob: f64,
    /// Probability that a pair of non-core ASes in different ISDs gets a
    /// peering link (sampled over a bounded number of pairs).
    pub peering_prob: f64,
    /// Probability an AS hosts a measurable server.
    pub server_prob: f64,
    /// Fraction of the intra-ISD core mesh to realize. `1.0` links every
    /// core pair; lower values keep a connectivity chain and sample the
    /// remaining pairs — the knob that stops core-segment counts from
    /// growing quadratically in large ISDs.
    pub core_mesh_density: f64,
    /// Probability that a leaf picks its parent by (BRITE-style)
    /// preferential attachment — weighted by how many children each
    /// candidate already has — instead of uniformly. `0.0` reproduces
    /// the legacy uniform wiring draw-for-draw; higher values grow the
    /// hub-and-spoke degree skew of real provider hierarchies.
    pub pref_attachment: f64,
}

impl Default for RandomTopologyConfig {
    fn default() -> Self {
        RandomTopologyConfig {
            isds: 3,
            ases_per_isd: (3, 6),
            cores_per_isd: (1, 2),
            extra_parent_prob: 0.4,
            peering_prob: 0.15,
            server_prob: 0.6,
            core_mesh_density: 1.0,
            pref_attachment: 0.0,
        }
    }
}

impl RandomTopologyConfig {
    /// Check that the shape parameters describe a generatable network.
    pub fn validate(&self) -> Result<(), TopologyConfigError> {
        if self.isds < 1 {
            return Err(TopologyConfigError::NoIsds);
        }
        let (alo, ahi) = self.ases_per_isd;
        if alo < 2 || alo > ahi {
            return Err(TopologyConfigError::AsRange(alo, ahi));
        }
        let (clo, chi) = self.cores_per_isd;
        if clo < 1 || clo > chi {
            return Err(TopologyConfigError::CoreRange(clo, chi));
        }
        for (name, v) in [
            ("extra_parent_prob", self.extra_parent_prob),
            ("peering_prob", self.peering_prob),
            ("server_prob", self.server_prob),
            ("core_mesh_density", self.core_mesh_density),
            ("pref_attachment", self.pref_attachment),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(TopologyConfigError::Probability(name, v));
            }
        }
        Ok(())
    }
}

/// Generate a valid topology from a seed. The same (seed, config) pair
/// always yields the same network. The first non-core AS of ISD 1 plays
/// the "user AS" role (marked [`AsKind::User`], returned second).
pub fn random_topology(
    seed: u64,
    cfg: &RandomTopologyConfig,
) -> Result<(Topology, IsdAsn), TopologyConfigError> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7090_1093);
    let mut b = TopologyBuilder::new();
    let mut cores: Vec<Vec<IsdAsn>> = Vec::new();
    let mut leaves: Vec<Vec<IsdAsn>> = Vec::new();

    let attrs = |rng: &mut StdRng| {
        DirAttrs::new(rng.gen_range(100.0..5000.0))
            .with_loss(rng.gen_range(0.0..0.005))
            .with_jitter(rng.gen_range(0.05..2.0))
            .with_background(rng.gen_range(0.0..0.6))
    };

    for isd in 0..cfg.isds {
        let isd_num = 10 + isd as u16;
        let n_ases = rng.gen_range(cfg.ases_per_isd.0..=cfg.ases_per_isd.1);
        let n_cores = rng
            .gen_range(cfg.cores_per_isd.0..=cfg.cores_per_isd.1)
            .min(n_ases - 1);
        let mut isd_cores = Vec::new();
        let mut isd_leaves = Vec::new();
        for a in 0..n_ases {
            let ia = IsdAsn::new(isd_num, Asn::from_groups(0xffaa, isd as u16, a as u16 + 1));
            let kind = if a < n_cores {
                AsKind::Core
            } else if isd == 0 && a == n_cores {
                // The designated user AS (the suite's vantage point).
                AsKind::User
            } else {
                AsKind::NonCore
            };
            let geo = GeoLocation::new(
                rng.gen_range(-60.0..70.0),
                rng.gen_range(-180.0..180.0),
                &format!("city-{isd_num}-{a}"),
                &format!("country-{}", rng.gen_range(0..8)),
            );
            b.add_as(
                ia,
                kind,
                &format!("as-{ia}"),
                &format!("op-{}", rng.gen_range(0..5)),
                geo,
            )
            .expect("unique ids by construction");
            if kind == AsKind::Core {
                isd_cores.push(ia);
            } else {
                isd_leaves.push(ia);
                if rng.gen_bool(cfg.server_prob) {
                    let host = HostAddr::new(10, isd as u8, a as u8, 1);
                    b.add_server(ia, host, &format!("server-{ia}"))
                        .expect("unique hosts by construction");
                }
            }
        }

        // Intra-ISD core mesh (when multiple cores). A chain over the
        // cores is always realized (keeping the core graph connected);
        // the remaining pairs are sampled at `core_mesh_density`. At
        // density 1.0 no sampling draw happens at all, so the default
        // config replays the legacy RNG stream exactly.
        for i in 0..isd_cores.len() {
            for j in i + 1..isd_cores.len() {
                let chain = j == i + 1;
                if !chain && cfg.core_mesh_density < 1.0 && !rng.gen_bool(cfg.core_mesh_density) {
                    continue;
                }
                b.add_link(
                    isd_cores[i],
                    isd_cores[j],
                    LinkKind::Core,
                    1472,
                    attrs(&mut rng),
                    attrs(&mut rng),
                )
                .expect("valid core link");
            }
        }
        // Parent DAG: each leaf gets a parent among cores and earlier
        // leaves (guaranteeing an upward path), plus optional extras.
        // Candidate parents carry a child count for the preferential-
        // attachment mode; index space is cores then leaves.
        let mut children = vec![0usize; isd_cores.len() + isd_leaves.len()];
        for (li, leaf) in isd_leaves.iter().enumerate() {
            // `> 0.0` short-circuits before any draw, preserving the
            // legacy stream for the default config.
            let parent = if cfg.pref_attachment > 0.0 && rng.gen_bool(cfg.pref_attachment) {
                // Preferential attachment over cores + earlier leaves,
                // weighted by (1 + children already attached).
                let n_candidates = isd_cores.len() + li;
                let total: usize = children[..n_candidates].iter().map(|c| c + 1).sum();
                let mut pick = rng.gen_range(0..total);
                let mut chosen = 0usize;
                for (ci, c) in children[..n_candidates].iter().enumerate() {
                    let w = c + 1;
                    if pick < w {
                        chosen = ci;
                        break;
                    }
                    pick -= w;
                }
                children[chosen] += 1;
                if chosen < isd_cores.len() {
                    isd_cores[chosen]
                } else {
                    isd_leaves[chosen - isd_cores.len()]
                }
            } else if li == 0 || rng.gen_bool(0.7) {
                let ci = rng.gen_range(0..isd_cores.len());
                children[ci] += 1;
                isd_cores[ci]
            } else {
                let pi = rng.gen_range(0..li);
                children[isd_cores.len() + pi] += 1;
                isd_leaves[pi]
            };
            b.add_link(
                parent,
                *leaf,
                LinkKind::Parent,
                1472,
                attrs(&mut rng),
                attrs(&mut rng),
            )
            .expect("valid parent link");
            if rng.gen_bool(cfg.extra_parent_prob) {
                let extra = isd_cores[rng.gen_range(0..isd_cores.len())];
                // A second link to the same parent is fine (parallel
                // links are allowed); a distinct parent adds diversity.
                if extra != parent {
                    b.add_link(
                        extra,
                        *leaf,
                        LinkKind::Parent,
                        1472,
                        attrs(&mut rng),
                        attrs(&mut rng),
                    )
                    .expect("valid parent link");
                }
            }
        }
        cores.push(isd_cores);
        leaves.push(isd_leaves);
    }

    // Inter-ISD core connectivity: a ring over ISDs plus random chords,
    // which keeps every ISD reachable.
    for i in 0..cfg.isds {
        let j = (i + 1) % cfg.isds;
        if i == j {
            continue;
        }
        let a = cores[i][0];
        let c = cores[j][0];
        b.add_link(a, c, LinkKind::Core, 1460, attrs(&mut rng), attrs(&mut rng))
            .expect("valid inter-ISD core link");
    }
    for _ in 0..cfg.isds {
        let i = rng.gen_range(0..cfg.isds);
        let j = rng.gen_range(0..cfg.isds);
        if i == j {
            continue;
        }
        let a = cores[i][rng.gen_range(0..cores[i].len())];
        let c = cores[j][rng.gen_range(0..cores[j].len())];
        if a != c {
            // Duplicate core links are allowed (parallel links).
            b.add_link(a, c, LinkKind::Core, 1460, attrs(&mut rng), attrs(&mut rng))
                .expect("valid chord");
        }
    }

    // Sparse peering between non-core ASes of different ISDs.
    for i in 0..cfg.isds {
        for j in i + 1..cfg.isds {
            if leaves[i].is_empty() || leaves[j].is_empty() {
                continue;
            }
            if rng.gen_bool(cfg.peering_prob) {
                let x = leaves[i][rng.gen_range(0..leaves[i].len())];
                let y = leaves[j][rng.gen_range(0..leaves[j].len())];
                b.add_link(
                    x,
                    y,
                    LinkKind::Peering,
                    1472,
                    attrs(&mut rng),
                    attrs(&mut rng),
                )
                .expect("valid peering link");
            }
        }
    }

    let user = leaves[0].first().copied().unwrap_or(cores[0][0]);
    let topo = b.build().expect("generator only produces valid topologies");
    Ok((topo, user))
}

/// Sample `n` measurement flows `(src, dst)` from a gravity model: the
/// probability of a flow is proportional to the product of the endpoint
/// "masses" (1 + AS degree, doubled for server hosts) divided by the
/// squared geographic distance — nearby, well-connected ASes exchange
/// the most traffic, the classic gravity assumption traffic-matrix
/// synthesis rests on. Deterministic in `(topology, seed)`.
pub fn gravity_flows(topo: &Topology, seed: u64, n: usize) -> Vec<(IsdAsn, IsdAsn)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6772_6176);
    let nodes: Vec<_> = topo.ases().collect();
    if nodes.len() < 2 || n == 0 {
        return Vec::new();
    }
    let mass: Vec<f64> = nodes
        .iter()
        .map(|(idx, node)| {
            let degree = topo.links_of(*idx).count() as f64;
            let server_boost = if node.servers.is_empty() { 1.0 } else { 2.0 };
            (1.0 + degree) * server_boost
        })
        .collect();

    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Source by mass alone, destination by mass over distance².
        let src_i = weighted_pick(&mut rng, &mass);
        let src_loc = &nodes[src_i].1.location;
        let weights: Vec<f64> = nodes
            .iter()
            .enumerate()
            .map(|(j, (_, node))| {
                if j == src_i {
                    return 0.0;
                }
                // 100 km floor keeps co-located pairs finite-weighted.
                let d = src_loc.distance_km(&node.location).max(100.0);
                mass[j] / (d * d)
            })
            .collect();
        let dst_i = weighted_pick(&mut rng, &weights);
        out.push((nodes[src_i].1.ia, nodes[dst_i].1.ia));
    }
    out
}

/// Index into `weights` sampled proportionally to each (non-negative)
/// weight. Falls back to index 0 if all weights are zero.
fn weighted_pick(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut r = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if r < *w {
            return i;
        }
        r -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beacon::{run_beaconing, BeaconConfig, KeyProvider};

    #[test]
    fn generator_is_deterministic() {
        let cfg = RandomTopologyConfig::default();
        let (a, ua) = random_topology(7, &cfg).unwrap();
        let (b, ub) = random_topology(7, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(ua, ub);
        let (c, _) = random_topology(8, &cfg).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_configs_fail_fast_with_typed_errors() {
        let base = RandomTopologyConfig::default();
        let cases = [
            (
                RandomTopologyConfig {
                    isds: 0,
                    ..base.clone()
                },
                TopologyConfigError::NoIsds,
            ),
            (
                RandomTopologyConfig {
                    ases_per_isd: (1, 4),
                    ..base.clone()
                },
                TopologyConfigError::AsRange(1, 4),
            ),
            (
                RandomTopologyConfig {
                    ases_per_isd: (5, 3),
                    ..base.clone()
                },
                TopologyConfigError::AsRange(5, 3),
            ),
            (
                RandomTopologyConfig {
                    cores_per_isd: (0, 2),
                    ..base.clone()
                },
                TopologyConfigError::CoreRange(0, 2),
            ),
            (
                RandomTopologyConfig {
                    peering_prob: 1.5,
                    ..base.clone()
                },
                TopologyConfigError::Probability("peering_prob", 1.5),
            ),
            (
                RandomTopologyConfig {
                    core_mesh_density: -0.1,
                    ..base.clone()
                },
                TopologyConfigError::Probability("core_mesh_density", -0.1),
            ),
            (
                RandomTopologyConfig {
                    pref_attachment: f64::NAN,
                    ..base.clone()
                },
                TopologyConfigError::Probability("pref_attachment", f64::NAN),
            ),
        ];
        for (cfg, want) in cases {
            let got = random_topology(1, &cfg).unwrap_err();
            // NaN != NaN, so compare the rendered error for that case.
            assert_eq!(got.to_string(), want.to_string(), "{cfg:?}");
        }
        assert!(base.validate().is_ok());
    }

    #[test]
    fn default_brite_knobs_reproduce_legacy_stream() {
        // Explicitly-defaulted new knobs must not consume RNG draws:
        // the generated network is byte-identical to the default's.
        let legacy = random_topology(11, &RandomTopologyConfig::default()).unwrap();
        let explicit = random_topology(
            11,
            &RandomTopologyConfig {
                core_mesh_density: 1.0,
                pref_attachment: 0.0,
                ..RandomTopologyConfig::default()
            },
        )
        .unwrap();
        assert_eq!(legacy, explicit);
    }

    #[test]
    fn user_as_is_marked() {
        let (topo, user) = random_topology(5, &RandomTopologyConfig::default()).unwrap();
        let idx = topo.index_of(user).unwrap();
        assert_eq!(topo.node(idx).kind, AsKind::User);
        assert_eq!(
            topo.ases().filter(|(_, n)| n.kind == AsKind::User).count(),
            1,
            "exactly one designated user AS"
        );
    }

    #[test]
    fn sparse_core_mesh_and_pref_attachment_stay_valid() {
        let cfg = RandomTopologyConfig {
            isds: 4,
            ases_per_isd: (8, 12),
            cores_per_isd: (3, 4),
            core_mesh_density: 0.3,
            pref_attachment: 0.8,
            ..RandomTopologyConfig::default()
        };
        for seed in 0..10 {
            let (topo, user) = random_topology(seed, &cfg).unwrap();
            let keys = KeyProvider::new(seed);
            let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
            for (_, node) in topo.ases() {
                if node.kind.is_core() {
                    continue;
                }
                assert!(
                    store.down.contains_key(&node.ia),
                    "seed {seed}: no down segment for {}",
                    node.ia
                );
            }
            assert!(topo.index_of(user).is_some());
        }
    }

    #[test]
    fn pref_attachment_skews_parent_degree() {
        // With strong preferential attachment the maximum parent degree
        // exceeds the uniform baseline on a like-for-like topology.
        let shape = RandomTopologyConfig {
            isds: 1,
            ases_per_isd: (60, 60),
            cores_per_isd: (1, 1),
            extra_parent_prob: 0.0,
            ..RandomTopologyConfig::default()
        };
        let max_children = |cfg: &RandomTopologyConfig| -> usize {
            let mut acc = 0;
            for seed in 0..8 {
                let (topo, _) = random_topology(seed, cfg).unwrap();
                let max = topo
                    .ases()
                    .filter(|(_, n)| !n.kind.is_core())
                    .map(|(i, _)| {
                        topo.links_of(i)
                            .filter(|(_, l)| l.kind == LinkKind::Parent && l.a == i)
                            .count()
                    })
                    .max()
                    .unwrap_or(0);
                acc += max;
            }
            acc
        };
        let uniform = max_children(&shape);
        let skewed = max_children(&RandomTopologyConfig {
            pref_attachment: 1.0,
            ..shape
        });
        assert!(
            skewed > uniform,
            "preferential attachment should concentrate children: {skewed} <= {uniform}"
        );
    }

    #[test]
    fn gravity_flows_are_deterministic_and_mass_weighted() {
        let (topo, _) = random_topology(3, &RandomTopologyConfig::default()).unwrap();
        let a = gravity_flows(&topo, 9, 200);
        let b = gravity_flows(&topo, 9, 200);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for (s, d) in &a {
            assert_ne!(s, d, "gravity flows never self-loop");
            assert!(topo.index_of(*s).is_some() && topo.index_of(*d).is_some());
        }
        // A different seed draws a different matrix.
        assert_ne!(a, gravity_flows(&topo, 10, 200));
    }

    #[test]
    fn every_seed_yields_a_valid_connected_control_plane() {
        let cfg = RandomTopologyConfig::default();
        for seed in 0..30 {
            let (topo, user) = random_topology(seed, &cfg).unwrap();
            assert!(topo.num_ases() >= 2 * cfg.isds);
            // Beaconing reaches every non-core AS of every ISD.
            let keys = KeyProvider::new(seed);
            let store = run_beaconing(&topo, &keys, &BeaconConfig::default());
            for (_, node) in topo.ases() {
                if node.kind.is_core() {
                    continue;
                }
                assert!(
                    store.down.contains_key(&node.ia),
                    "seed {seed}: no down segment for {}",
                    node.ia
                );
            }
            assert!(topo.index_of(user).is_some());
        }
    }

    #[test]
    fn respects_shape_parameters() {
        let cfg = RandomTopologyConfig {
            isds: 5,
            ases_per_isd: (4, 4),
            cores_per_isd: (2, 2),
            ..RandomTopologyConfig::default()
        };
        let (topo, _) = random_topology(3, &cfg).unwrap();
        assert_eq!(topo.num_ases(), 20);
        assert_eq!(topo.isds().len(), 5);
        for isd in topo.isds() {
            assert_eq!(topo.cores_of_isd(isd).len(), 2, "isd {isd}");
        }
    }
}
