//! Text rendering of a topology — the Fig. 1 analogue: ISDs, ASes with
//! their roles (core / attachment point / user, as the figure's color
//! coding), geography, and the inter-AS links.

use crate::topology::{AsKind, LinkKind, Topology};
use std::fmt::Write;

/// Render the topology grouped by ISD, with a link table.
pub fn render(topo: &Topology) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ASes in {} ISDs, {} links, {} servers",
        topo.num_ases(),
        topo.isds().len(),
        topo.num_links(),
        topo.all_servers().len()
    );
    for isd in topo.isds() {
        let _ = writeln!(out, "\nISD {isd}");
        for (idx, node) in topo.ases() {
            if node.ia.isd.0 != isd {
                continue;
            }
            let marker = match node.kind {
                AsKind::Core => "[core]",
                AsKind::AttachmentPoint => "[AP]  ",
                AsKind::User => "[user]",
                AsKind::NonCore => "      ",
            };
            let servers = if node.servers.is_empty() {
                String::new()
            } else {
                format!(
                    "  ({} server{})",
                    node.servers.len(),
                    if node.servers.len() > 1 { "s" } else { "" }
                )
            };
            let _ = writeln!(
                out,
                "  {marker} {:<16} {:<20} {}, {}{servers}",
                node.ia.to_string(),
                node.name,
                node.location.city,
                node.location.country
            );
            let _ = idx;
        }
    }
    let _ = writeln!(out, "\nlinks:");
    for (_, link) in topo.links() {
        let a = topo.node(link.a);
        let b = topo.node(link.b);
        let kind = match link.kind {
            LinkKind::Core => "core   ",
            LinkKind::Parent => "parent ",
            LinkKind::Peering => "peering",
        };
        let _ = writeln!(
            out,
            "  {kind} {:<16} <-> {:<16} {:>7.1} km  {:>6.2} ms",
            a.ia.to_string(),
            b.ia.to_string(),
            a.location.distance_km(&b.location),
            link.propagation_ms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::scionlab::scionlab_topology;

    #[test]
    fn renders_the_scionlab_map() {
        let text = render(&scionlab_topology());
        assert!(text.starts_with("36 ASes in 8 ISDs"), "{}", &text[..60]);
        // Role markers match Fig. 1's color coding.
        assert!(text.contains("[core] 16-ffaa:0:1001"), "{text}");
        assert!(text.contains("[AP]   17-ffaa:0:1107"), "{text}");
        assert!(text.contains("[user] 17-ffaa:1:eaf"), "{text}");
        // The one peering link is listed.
        assert!(text.contains("peering 17-ffaa:0:1107"), "{text}");
        // Long-haul geography is visible.
        assert!(text.contains("ISD 25"));
        assert!(text.contains("Sydney"));
    }
}
