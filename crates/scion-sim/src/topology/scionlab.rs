//! The synthetic SCIONLab topology used by all experiments.
//!
//! 35 infrastructure ASes across 8 ISDs, modeled on the published
//! SCIONLab map (paper Fig. 1): an AWS ISD (16) whose regions span
//! Frankfurt, Dublin, Ashburn, Singapore, Tokyo, Oregon and Ohio; the
//! Swiss ISD (17) with the ETHZ core and the ETHZ attachment point; a
//! North-American ISD (18); a European ISD (19) containing the Magdeburg
//! attachment point; Korean (20), Japanese (21), Taiwanese (22) and
//! Australian (25) ISDs. A 36th, user-created AS (`MY_AS#1`,
//! 17-ffaa:1:eaf) is attached to ETHZ-AP exactly as in the paper.
//!
//! 21 of the ASes house measurable servers (one AS, Magdeburg-AP, houses
//! two — the paper notes some ASes expose multiple destinations). Link
//! capacities, background utilization, jitter and router pps limits are
//! calibrated so the paper's §6 findings emerge from the simulation:
//! latency layers driven by geography, upstream/downstream asymmetry,
//! the 64-byte/MTU crossover between the 12 and 150 Mbps targets, and
//! mostly-zero packet loss.

use crate::addr::{Asn, HostAddr, IsdAsn, ScionAddr};
use crate::geo::GeoLocation;
use crate::topology::{AsKind, DirAttrs, LinkKind, Topology, TopologyBuilder};

/// Convenience constructor for infrastructure ASNs (`ffaa:0:xxxx`).
pub const fn infra(isd: u16, low: u16) -> IsdAsn {
    IsdAsn::new(isd, Asn::from_groups(0xffaa, 0, low))
}

/// The experimenter's own AS, attached to ETHZ-AP ("MY_AS#1").
pub const MY_AS: IsdAsn = IsdAsn::new(17, Asn::from_groups(0xffaa, 1, 0xeaf));

// ISD 16 — AWS.
pub const AWS_FRANKFURT: IsdAsn = infra(16, 0x1001);
pub const AWS_IRELAND: IsdAsn = infra(16, 0x1002);
pub const AWS_N_VIRGINIA: IsdAsn = infra(16, 0x1003);
pub const AWS_SINGAPORE: IsdAsn = infra(16, 0x1004);
pub const AWS_TOKYO: IsdAsn = infra(16, 0x1005);
pub const AWS_OREGON: IsdAsn = infra(16, 0x1006);
pub const AWS_OHIO: IsdAsn = infra(16, 0x1007);

// ISD 17 — Switzerland.
pub const ETHZ_CORE: IsdAsn = infra(17, 0x1101);
pub const SWISSCOM_CORE: IsdAsn = infra(17, 0x1102);
pub const SCION_ASSOC: IsdAsn = infra(17, 0x1103);
pub const ETHZ_AP: IsdAsn = infra(17, 0x1107);
pub const ETH_CAB: IsdAsn = infra(17, 0x1108);

// ISD 18 — North America.
pub const CMU_CORE: IsdAsn = infra(18, 0x1201);
pub const CMU_AP: IsdAsn = infra(18, 0x1202);
pub const COLUMBIA: IsdAsn = infra(18, 0x1203);
pub const TORONTO: IsdAsn = infra(18, 0x1204);

// ISD 19 — Europe.
pub const OVGU_CORE: IsdAsn = infra(19, 0x1301);
pub const GEANT_AP: IsdAsn = infra(19, 0x1302);
pub const MAGDEBURG_AP: IsdAsn = infra(19, 0x1303);
pub const TU_DELFT: IsdAsn = infra(19, 0x1304);
pub const AALTO: IsdAsn = infra(19, 0x1305);
pub const CENTRIA: IsdAsn = infra(19, 0x1306);
pub const DARMSTADT: IsdAsn = infra(19, 0x1307);

// ISD 20 — South Korea.
pub const KISTI_CORE: IsdAsn = infra(20, 0x1401);
pub const KISTI_AP: IsdAsn = infra(20, 0x1402);
pub const KU: IsdAsn = infra(20, 0x1403);
pub const ETRI: IsdAsn = infra(20, 0x1404);

// ISD 21 — Japan.
pub const KDDI_CORE: IsdAsn = infra(21, 0x1501);
pub const TOKYO_AP: IsdAsn = infra(21, 0x1502);
pub const OSAKA: IsdAsn = infra(21, 0x1503);

// ISD 22 — Taiwan.
pub const NTU_CORE: IsdAsn = infra(22, 0x1601);
pub const NCTU: IsdAsn = infra(22, 0x1602);
pub const TWAREN_AP: IsdAsn = infra(22, 0x1603);

// ISD 25 — Australia.
pub const SYDNEY_CORE: IsdAsn = infra(25, 0x1701);
pub const MELBOURNE_AP: IsdAsn = infra(25, 0x1702);

/// The paper's five analysis destinations (§6): Germany, Ireland,
/// N. Virginia, Singapore and Korea — exact addresses where the paper
/// prints them.
pub fn paper_destinations() -> Vec<ScionAddr> {
    vec![
        ScionAddr::new(MAGDEBURG_AP, HostAddr::new(141, 44, 25, 144)),
        ScionAddr::new(AWS_IRELAND, HostAddr::new(172, 31, 43, 7)),
        ScionAddr::new(AWS_N_VIRGINIA, HostAddr::new(172, 31, 19, 144)),
        ScionAddr::new(AWS_SINGAPORE, HostAddr::new(172, 31, 10, 21)),
        ScionAddr::new(KISTI_AP, HostAddr::new(150, 183, 250, 20)),
    ]
}

/// Build the full SCIONLab topology (35 infrastructure ASes + `MY_AS`).
pub fn scionlab_topology() -> Topology {
    let mut b = TopologyBuilder::new();
    add_ases(&mut b);
    add_servers(&mut b);
    add_links(&mut b);
    b.build().expect("the built-in SCIONLab topology is valid")
}

fn add_ases(b: &mut TopologyBuilder) {
    use AsKind::*;
    let mut add = |ia, kind, name: &str, op: &str, lat: f64, lon: f64, city: &str, cc: &str| {
        b.add_as(ia, kind, name, op, GeoLocation::new(lat, lon, city, cc))
            .expect("unique AS");
    };

    // ISD 16 — AWS.
    add(
        AWS_FRANKFURT,
        Core,
        "AWS Frankfurt",
        "AWS",
        50.11,
        8.68,
        "Frankfurt",
        "Germany",
    );
    add(
        AWS_IRELAND,
        AttachmentPoint,
        "AWS Ireland",
        "AWS",
        53.35,
        -6.26,
        "Dublin",
        "Ireland",
    );
    add(
        AWS_N_VIRGINIA,
        NonCore,
        "AWS US N. Virginia",
        "AWS",
        38.95,
        -77.45,
        "Ashburn",
        "United States",
    );
    add(
        AWS_SINGAPORE,
        NonCore,
        "AWS Singapore",
        "AWS",
        1.35,
        103.82,
        "Singapore",
        "Singapore",
    );
    add(
        AWS_TOKYO,
        NonCore,
        "AWS Tokyo",
        "AWS",
        35.68,
        139.69,
        "Tokyo",
        "Japan",
    );
    add(
        AWS_OREGON,
        NonCore,
        "AWS Oregon",
        "AWS",
        45.84,
        -119.70,
        "Boardman",
        "United States",
    );
    add(
        AWS_OHIO,
        NonCore,
        "AWS Ohio",
        "AWS",
        39.96,
        -83.00,
        "Columbus",
        "United States",
    );

    // ISD 17 — Switzerland.
    add(
        ETHZ_CORE,
        Core,
        "ETHZ Core",
        "ETH Zurich",
        47.38,
        8.54,
        "Zurich",
        "Switzerland",
    );
    add(
        SWISSCOM_CORE,
        Core,
        "Swisscom",
        "Swisscom",
        46.95,
        7.45,
        "Bern",
        "Switzerland",
    );
    add(
        SCION_ASSOC,
        NonCore,
        "SCION Association",
        "SCION Association",
        47.39,
        8.51,
        "Zurich",
        "Switzerland",
    );
    add(
        ETHZ_AP,
        AttachmentPoint,
        "ETHZ-AP",
        "ETH Zurich",
        47.38,
        8.55,
        "Zurich",
        "Switzerland",
    );
    add(
        ETH_CAB,
        NonCore,
        "ETH-CAB",
        "ETH Zurich",
        47.37,
        8.55,
        "Zurich",
        "Switzerland",
    );

    // ISD 18 — North America.
    add(
        CMU_CORE,
        Core,
        "CMU Core",
        "CMU",
        40.44,
        -79.94,
        "Pittsburgh",
        "United States",
    );
    add(
        CMU_AP,
        AttachmentPoint,
        "CMU AP",
        "CMU",
        40.44,
        -79.95,
        "Pittsburgh",
        "United States",
    );
    add(
        COLUMBIA,
        NonCore,
        "Columbia",
        "Columbia University",
        40.81,
        -73.96,
        "New York",
        "United States",
    );
    add(
        TORONTO,
        NonCore,
        "Toronto",
        "University of Toronto",
        43.66,
        -79.40,
        "Toronto",
        "Canada",
    );

    // ISD 19 — Europe.
    add(
        OVGU_CORE,
        Core,
        "OVGU Core",
        "OVGU Magdeburg",
        52.14,
        11.65,
        "Magdeburg",
        "Germany",
    );
    add(
        GEANT_AP,
        AttachmentPoint,
        "GEANT",
        "GEANT",
        52.37,
        4.90,
        "Amsterdam",
        "Netherlands",
    );
    add(
        MAGDEBURG_AP,
        AttachmentPoint,
        "Magdeburg AP",
        "OVGU Magdeburg",
        52.14,
        11.64,
        "Magdeburg",
        "Germany",
    );
    add(
        TU_DELFT,
        NonCore,
        "TU Delft",
        "TU Delft",
        52.01,
        4.36,
        "Delft",
        "Netherlands",
    );
    add(
        AALTO,
        NonCore,
        "Aalto",
        "Aalto University",
        60.19,
        24.83,
        "Espoo",
        "Finland",
    );
    add(
        CENTRIA,
        NonCore,
        "Centria",
        "Centria UAS",
        63.84,
        23.13,
        "Kokkola",
        "Finland",
    );
    add(
        DARMSTADT,
        NonCore,
        "TU Darmstadt",
        "TU Darmstadt",
        49.87,
        8.65,
        "Darmstadt",
        "Germany",
    );

    // ISD 20 — South Korea.
    add(
        KISTI_CORE,
        Core,
        "KISTI Core",
        "KISTI",
        36.35,
        127.38,
        "Daejeon",
        "South Korea",
    );
    add(
        KISTI_AP,
        AttachmentPoint,
        "KISTI AP",
        "KISTI",
        36.35,
        127.37,
        "Daejeon",
        "South Korea",
    );
    add(
        KU,
        NonCore,
        "Korea University",
        "Korea University",
        37.59,
        127.03,
        "Seoul",
        "South Korea",
    );
    add(
        ETRI,
        NonCore,
        "ETRI",
        "ETRI",
        36.38,
        127.37,
        "Daejeon",
        "South Korea",
    );

    // ISD 21 — Japan.
    add(
        KDDI_CORE,
        Core,
        "KDDI Core",
        "KDDI",
        35.68,
        139.75,
        "Tokyo",
        "Japan",
    );
    add(
        TOKYO_AP,
        AttachmentPoint,
        "Tokyo AP",
        "KDDI",
        35.69,
        139.70,
        "Tokyo",
        "Japan",
    );
    add(
        OSAKA, NonCore, "Osaka", "NICT", 34.69, 135.50, "Osaka", "Japan",
    );

    // ISD 22 — Taiwan.
    add(
        NTU_CORE, Core, "NTU Core", "NTU", 25.03, 121.56, "Taipei", "Taiwan",
    );
    add(
        NCTU, NonCore, "NCTU", "NCTU", 24.79, 120.99, "Hsinchu", "Taiwan",
    );
    add(
        TWAREN_AP,
        AttachmentPoint,
        "TWAREN",
        "NARLabs",
        25.04,
        121.61,
        "Taipei",
        "Taiwan",
    );

    // ISD 25 — Australia.
    add(
        SYDNEY_CORE,
        Core,
        "Sydney Core",
        "AARNet",
        -33.87,
        151.21,
        "Sydney",
        "Australia",
    );
    add(
        MELBOURNE_AP,
        AttachmentPoint,
        "Melbourne AP",
        "AARNet",
        -37.81,
        144.96,
        "Melbourne",
        "Australia",
    );

    // The experimenter's AS, a VM colocated with ETHZ-AP.
    add(
        MY_AS,
        User,
        "MY_AS#1",
        "UvA (experimenter)",
        47.38,
        8.55,
        "Zurich",
        "Switzerland",
    );
}

fn add_servers(b: &mut TopologyBuilder) {
    let mut add = |ia, host: [u8; 4], name: &str| {
        b.add_server(ia, HostAddr(host), name)
            .expect("unique server");
    };
    // 21 testable destinations (the paper's availableServers set).
    add(ETHZ_AP, [192, 33, 93, 177], "ETHZ-AP server");
    add(
        SCION_ASSOC,
        [129, 132, 121, 164],
        "SCION Association server",
    );
    add(ETH_CAB, [129, 132, 55, 7], "ETH-CAB server");
    add(GEANT_AP, [62, 40, 111, 66], "GEANT server");
    add(MAGDEBURG_AP, [141, 44, 25, 144], "Magdeburg server A");
    add(MAGDEBURG_AP, [141, 44, 25, 151], "Magdeburg server B");
    add(TU_DELFT, [131, 180, 125, 34], "TU Delft server");
    add(AALTO, [130, 233, 195, 41], "Aalto server");
    add(AWS_IRELAND, [172, 31, 43, 7], "AWS Ireland server");
    add(AWS_N_VIRGINIA, [172, 31, 19, 144], "AWS N. Virginia server");
    add(AWS_SINGAPORE, [172, 31, 10, 21], "AWS Singapore server");
    add(AWS_OREGON, [172, 31, 41, 87], "AWS Oregon server");
    add(AWS_OHIO, [172, 31, 27, 196], "AWS Ohio server");
    add(AWS_TOKYO, [172, 31, 5, 50], "AWS Tokyo server");
    add(CMU_AP, [128, 2, 24, 126], "CMU server");
    add(COLUMBIA, [128, 59, 65, 12], "Columbia server");
    add(TORONTO, [128, 100, 31, 14], "Toronto server");
    add(KISTI_AP, [150, 183, 250, 20], "KISTI server");
    add(KU, [163, 152, 6, 222], "Korea University server");
    add(TOKYO_AP, [203, 178, 143, 72], "Tokyo AP server");
    add(NCTU, [140, 113, 131, 9], "NCTU server");
}

/// Backbone defaults: ample capacity, moderate background, low jitter.
fn backbone(capacity: f64) -> DirAttrs {
    DirAttrs::new(capacity)
        .with_loss(0.0004)
        .with_jitter(0.15)
        .with_background(0.30)
}

/// Long-haul variant: more jitter and background variance.
fn longhaul(capacity: f64) -> DirAttrs {
    DirAttrs::new(capacity)
        .with_loss(0.001)
        .with_jitter(0.8)
        .with_background(0.40)
}

/// The wide-jitter links through AWS Singapore and AWS Ohio the paper
/// calls out ("ASes 16-ffaa:0:1007 and 16-ffaa:0:1004 introduce a wide
/// jitter other than high latency peaks").
fn jittery(capacity: f64) -> DirAttrs {
    DirAttrs::new(capacity)
        .with_loss(0.004)
        .with_jitter(5.0)
        .with_background(0.45)
}

fn add_links(b: &mut TopologyBuilder) {
    let mut link = |a, bb, kind, mtu, ab: DirAttrs, ba: DirAttrs| {
        b.add_link(a, bb, kind, mtu, ab, ba).expect("valid link");
    };
    use LinkKind::{Core, Parent};

    // ---- Core mesh -------------------------------------------------
    link(
        ETHZ_CORE,
        SWISSCOM_CORE,
        Core,
        1472,
        backbone(10_000.0),
        backbone(10_000.0),
    );
    link(
        ETHZ_CORE,
        OVGU_CORE,
        Core,
        1472,
        backbone(10_000.0),
        backbone(10_000.0),
    );
    link(
        SWISSCOM_CORE,
        OVGU_CORE,
        Core,
        1472,
        backbone(10_000.0),
        backbone(10_000.0),
    );
    link(
        OVGU_CORE,
        AWS_FRANKFURT,
        Core,
        1472,
        backbone(10_000.0),
        backbone(10_000.0),
    );
    link(
        OVGU_CORE,
        CMU_CORE,
        Core,
        1460,
        longhaul(5_000.0),
        longhaul(5_000.0),
    );
    link(
        CMU_CORE,
        AWS_FRANKFURT,
        Core,
        1460,
        longhaul(5_000.0),
        longhaul(5_000.0),
    );
    link(
        CMU_CORE,
        KISTI_CORE,
        Core,
        1460,
        longhaul(4_000.0),
        longhaul(4_000.0),
    );
    link(
        CMU_CORE,
        KDDI_CORE,
        Core,
        1460,
        longhaul(4_000.0),
        longhaul(4_000.0),
    );
    link(
        KISTI_CORE,
        KDDI_CORE,
        Core,
        1472,
        backbone(5_000.0),
        backbone(5_000.0),
    );
    link(
        KDDI_CORE,
        NTU_CORE,
        Core,
        1472,
        backbone(4_000.0),
        backbone(4_000.0),
    );
    link(
        KDDI_CORE,
        SYDNEY_CORE,
        Core,
        1460,
        longhaul(3_000.0),
        longhaul(3_000.0),
    );
    link(
        NTU_CORE,
        SYDNEY_CORE,
        Core,
        1460,
        longhaul(3_000.0),
        longhaul(3_000.0),
    );

    // ---- ISD 16 (AWS) ----------------------------------------------
    link(
        AWS_FRANKFURT,
        AWS_IRELAND,
        Parent,
        1472,
        backbone(2_000.0),
        backbone(2_000.0),
    );
    link(
        AWS_FRANKFURT,
        AWS_N_VIRGINIA,
        Parent,
        1472,
        longhaul(2_000.0),
        longhaul(2_000.0),
    );
    link(
        AWS_FRANKFURT,
        AWS_SINGAPORE,
        Parent,
        1472,
        jittery(1_000.0),
        jittery(1_000.0),
    );
    link(
        AWS_FRANKFURT,
        AWS_OREGON,
        Parent,
        1472,
        longhaul(1_500.0),
        longhaul(1_500.0),
    );
    link(
        AWS_FRANKFURT,
        AWS_OHIO,
        Parent,
        1472,
        jittery(1_500.0),
        jittery(1_500.0),
    );
    link(
        AWS_SINGAPORE,
        AWS_TOKYO,
        Parent,
        1472,
        jittery(1_000.0),
        jittery(1_000.0),
    );
    link(
        AWS_OHIO,
        AWS_IRELAND,
        Parent,
        1472,
        jittery(1_000.0),
        jittery(1_000.0),
    );
    link(
        AWS_SINGAPORE,
        AWS_IRELAND,
        Parent,
        1472,
        jittery(1_000.0),
        jittery(1_000.0),
    );
    link(
        AWS_OHIO,
        AWS_N_VIRGINIA,
        Parent,
        1472,
        jittery(1_500.0),
        jittery(1_500.0),
    );
    link(
        AWS_OREGON,
        AWS_N_VIRGINIA,
        Parent,
        1472,
        longhaul(1_500.0),
        longhaul(1_500.0),
    );

    // ---- ISD 17 (Switzerland) --------------------------------------
    link(
        ETHZ_CORE,
        ETHZ_AP,
        Parent,
        1472,
        backbone(2_000.0),
        backbone(2_000.0),
    );
    link(
        SWISSCOM_CORE,
        ETHZ_AP,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );
    link(
        ETHZ_CORE,
        SCION_ASSOC,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );
    link(
        ETHZ_CORE,
        ETH_CAB,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );

    // The experimenter's access link: the bandwidth bottleneck of every
    // measurement. Asymmetric (upstream 30 Mbps, downstream 120 Mbps)
    // with pps-bound software routers at both ends, per the calibration
    // notes in the module docs.
    link(
        ETHZ_AP,
        MY_AS,
        Parent,
        1472,
        // AP → MY_AS: downstream.
        DirAttrs::new(120.0)
            .with_loss(0.0015)
            .with_jitter(0.25)
            .with_background(0.35)
            .with_pps_cap(20_000.0),
        // MY_AS → AP: upstream. Tight enough that even the 12 Mbps
        // MTU test feels it (Fig. 7's visible up/down asymmetry).
        DirAttrs::new(20.0)
            .with_loss(0.0015)
            .with_jitter(0.25)
            .with_background(0.40)
            .with_pps_cap(15_000.0),
    );

    // ETHZ-AP peers directly with GEANT (a research-network peering):
    // the one peering link of the topology, giving the path server's
    // peering-shortcut construction something real to find.
    link(
        ETHZ_AP,
        GEANT_AP,
        LinkKind::Peering,
        1472,
        backbone(2_000.0),
        backbone(2_000.0),
    );

    // ---- ISD 18 (North America) ------------------------------------
    link(
        CMU_CORE,
        CMU_AP,
        Parent,
        1472,
        backbone(2_000.0),
        backbone(2_000.0),
    );
    link(
        CMU_CORE,
        COLUMBIA,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );
    link(
        CMU_AP,
        TORONTO,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );

    // ---- ISD 19 (Europe) -------------------------------------------
    link(
        OVGU_CORE,
        GEANT_AP,
        Parent,
        1472,
        backbone(5_000.0),
        backbone(5_000.0),
    );
    link(
        OVGU_CORE,
        MAGDEBURG_AP,
        Parent,
        1472,
        backbone(2_000.0),
        backbone(2_000.0),
    );
    link(
        OVGU_CORE,
        TU_DELFT,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );
    link(
        GEANT_AP,
        TU_DELFT,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );
    link(
        OVGU_CORE,
        AALTO,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );
    link(
        AALTO,
        CENTRIA,
        Parent,
        1472,
        backbone(500.0),
        backbone(500.0),
    );
    link(
        OVGU_CORE,
        DARMSTADT,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );

    // ---- ISD 20 (South Korea) --------------------------------------
    link(
        KISTI_CORE,
        KISTI_AP,
        Parent,
        1472,
        backbone(2_000.0),
        backbone(2_000.0),
    );
    link(
        KISTI_CORE,
        KU,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );
    link(
        KISTI_CORE,
        ETRI,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );

    // ---- ISD 21 (Japan) --------------------------------------------
    link(
        KDDI_CORE,
        TOKYO_AP,
        Parent,
        1472,
        backbone(2_000.0),
        backbone(2_000.0),
    );
    link(
        TOKYO_AP,
        OSAKA,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );

    // ---- ISD 22 (Taiwan) -------------------------------------------
    link(
        NTU_CORE,
        NCTU,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );
    link(
        NTU_CORE,
        TWAREN_AP,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );

    // ---- ISD 25 (Australia) ----------------------------------------
    link(
        SYDNEY_CORE,
        MELBOURNE_AP,
        Parent,
        1472,
        backbone(1_000.0),
        backbone(1_000.0),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_has_paper_dimensions() {
        let t = scionlab_topology();
        // 35 infrastructure ASes + MY_AS.
        assert_eq!(t.num_ases(), 36);
        // 21 testable destination servers.
        assert_eq!(t.all_servers().len(), 21);
        // 8 ISDs.
        assert_eq!(t.isds(), vec![16, 17, 18, 19, 20, 21, 22, 25]);
    }

    #[test]
    fn my_as_is_attached_to_ethz_ap() {
        let t = scionlab_topology();
        let my = t.index_of(MY_AS).unwrap();
        let neighbors: Vec<_> = t
            .links_of(my)
            .map(|(_, l)| t.node(l.peer_of(my).unwrap()).ia)
            .collect();
        assert_eq!(neighbors, vec![ETHZ_AP]);
    }

    #[test]
    fn paper_destinations_exist_as_servers() {
        let t = scionlab_topology();
        for dst in paper_destinations() {
            assert!(t.server_as(dst).is_some(), "{dst} must be a real server");
        }
    }

    #[test]
    fn magdeburg_houses_two_servers() {
        let t = scionlab_topology();
        let idx = t.index_of(MAGDEBURG_AP).unwrap();
        assert_eq!(t.node(idx).servers.len(), 2);
    }

    #[test]
    fn access_link_is_asymmetric() {
        let t = scionlab_topology();
        let my = t.index_of(MY_AS).unwrap();
        let (_, l) = t.links_of(my).next().unwrap();
        let up = l.attrs_from(my).unwrap();
        let ap = l.peer_of(my).unwrap();
        let down = l.attrs_from(ap).unwrap();
        assert!(down.capacity_mbps > 3.0 * up.capacity_mbps);
    }

    #[test]
    fn jittery_aws_detours_present() {
        let t = scionlab_topology();
        for ia in [AWS_SINGAPORE, AWS_OHIO] {
            let idx = t.index_of(ia).unwrap();
            let max_jitter = t
                .links_of(idx)
                .map(|(_, l)| l.attrs_from(idx).unwrap().jitter_ms)
                .fold(0.0, f64::max);
            assert!(max_jitter >= 4.0, "{ia} should carry wide-jitter links");
        }
    }
}
