//! Equivalence oracle for the control-plane caches: a network with
//! caching enabled must produce *byte-identical* observable results to
//! the uncached reference implementation, across randomized fault
//! mutations (which drive epoch invalidation), fork salts and
//! interleavings of lookups on the root network and its forks.
//!
//! The comparison is on `format!("{:?}")` of every result — any drift
//! in path ordering, status, metadata, probe outcomes or error values
//! shows up as a string diff.

use proptest::prelude::*;
use scion_sim::dataplane::scmp::ProbeOptions;
use scion_sim::fault::{CongestionEpisode, CongestionTarget, ServerBehavior};
use scion_sim::net::ScionNetwork;
use scion_sim::path::ScionPath;
use scion_sim::topology::scionlab::{paper_destinations, MY_AS};
use std::sync::Arc;

/// One step of the randomized schedule. Lookup steps log their results;
/// mutation steps drive the fault state (and hence cache invalidation).
/// `on_fork` targets the most recent fork instead of the root network.
#[derive(Debug, Clone)]
enum Op {
    Paths {
        dest: prop::sample::Index,
        max: usize,
        on_fork: bool,
    },
    Ping {
        dest: prop::sample::Index,
        path_pick: prop::sample::Index,
        on_fork: bool,
    },
    Traceroute {
        dest: prop::sample::Index,
        path_pick: prop::sample::Index,
        on_fork: bool,
    },
    Authorize {
        dest: prop::sample::Index,
        path_pick: prop::sample::Index,
        on_fork: bool,
    },
    LinkDown {
        link: prop::sample::Index,
        down: bool,
        on_fork: bool,
    },
    Congest {
        node: prop::sample::Index,
        offset_ms: u16,
        duration_ms: u16,
        on_fork: bool,
    },
    ClearCongestion {
        on_fork: bool,
    },
    Server {
        dest: prop::sample::Index,
        behavior: u8,
        on_fork: bool,
    },
    Fork {
        salt: u64,
    },
    Advance {
        ms: u16,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    fn idx() -> impl Strategy<Value = prop::sample::Index> {
        any::<prop::sample::Index>()
    }
    prop_oneof![
        (idx(), 1usize..40, any::<bool>()).prop_map(|(dest, max, on_fork)| Op::Paths {
            dest,
            max,
            on_fork
        }),
        (idx(), idx(), any::<bool>()).prop_map(|(dest, path_pick, on_fork)| Op::Ping {
            dest,
            path_pick,
            on_fork
        }),
        (idx(), idx(), any::<bool>()).prop_map(|(dest, path_pick, on_fork)| Op::Traceroute {
            dest,
            path_pick,
            on_fork
        }),
        (idx(), idx(), any::<bool>()).prop_map(|(dest, path_pick, on_fork)| Op::Authorize {
            dest,
            path_pick,
            on_fork
        }),
        (idx(), any::<bool>(), any::<bool>()).prop_map(|(link, down, on_fork)| Op::LinkDown {
            link,
            down,
            on_fork
        }),
        (idx(), any::<u16>(), 1u16..10_000, any::<bool>()).prop_map(
            |(node, offset_ms, duration_ms, on_fork)| Op::Congest {
                node,
                offset_ms,
                duration_ms,
                on_fork
            }
        ),
        any::<bool>().prop_map(|on_fork| Op::ClearCongestion { on_fork }),
        (idx(), 0u8..4, any::<bool>()).prop_map(|(dest, behavior, on_fork)| Op::Server {
            dest,
            behavior,
            on_fork
        }),
        any::<u64>().prop_map(|salt| Op::Fork { salt }),
        (1u16..5_000).prop_map(|ms| Op::Advance { ms }),
    ]
}

/// A short, distinct-draws ping so each case stays fast.
fn probe_opts() -> ProbeOptions {
    ProbeOptions {
        count: 3,
        interval_ms: 50.0,
        timeout_ms: 1000.0,
        payload_bytes: 8,
    }
}

/// Fetch a candidate path for `dst` without logging (both runs execute
/// the identical call sequence, so clocks and RNG streams stay aligned).
fn pick_path(
    net: &ScionNetwork,
    dst: scion_sim::addr::IsdAsn,
    pick: prop::sample::Index,
) -> Option<ScionPath> {
    let paths = net.paths(MY_AS, dst, 40);
    if paths.is_empty() {
        return None;
    }
    let i = pick.index(paths.len());
    Some(paths[i].clone())
}

/// Replay `ops` on a fresh SCIONLab network with caching on or off and
/// return the log of every observable result.
fn run_schedule(caching: bool, ops: &[Op]) -> Vec<String> {
    let mut net = ScionNetwork::scionlab(11);
    net.set_caching(caching);
    let mut fork: Option<ScionNetwork> = None;
    let dests = paper_destinations();
    let links: Vec<_> = net.topology().links().map(|(li, _)| li).collect();
    let mut log = Vec::new();

    for op in ops {
        let target = |on_fork: bool| -> &ScionNetwork {
            match (&fork, on_fork) {
                (Some(f), true) => f,
                _ => &net,
            }
        };
        match op {
            Op::Paths { dest, max, on_fork } => {
                let addr = dests[dest.index(dests.len())];
                let paths = target(*on_fork).paths(MY_AS, addr.ia, *max);
                log.push(format!("paths {addr} {max}: {paths:?}"));
            }
            Op::Ping {
                dest,
                path_pick,
                on_fork,
            } => {
                let addr = dests[dest.index(dests.len())];
                let t = target(*on_fork);
                if let Some(path) = pick_path(t, addr.ia, *path_pick) {
                    let out = t.ping(&path, addr, &probe_opts());
                    log.push(format!("ping {addr} via {path}: {out:?}"));
                }
            }
            Op::Traceroute {
                dest,
                path_pick,
                on_fork,
            } => {
                let addr = dests[dest.index(dests.len())];
                let t = target(*on_fork);
                if let Some(path) = pick_path(t, addr.ia, *path_pick) {
                    let out = t.traceroute(&path);
                    log.push(format!("traceroute via {path}: {out:?}"));
                }
            }
            Op::Authorize {
                dest,
                path_pick,
                on_fork,
            } => {
                let addr = dests[dest.index(dests.len())];
                let t = target(*on_fork);
                if let Some(path) = pick_path(t, addr.ia, *path_pick) {
                    // Strip to a bare route, as `--sequence` parsing would.
                    let bare = ScionPath::from_sequence(&path.sequence()).unwrap();
                    let out = t.authorize(&bare);
                    log.push(format!("authorize {path}: {out:?}"));
                }
            }
            Op::LinkDown {
                link,
                down,
                on_fork,
            } => {
                let li = links[link.index(links.len())];
                target(*on_fork).set_link_down(li, *down);
            }
            Op::Congest {
                node,
                offset_ms,
                duration_ms,
                on_fork,
            } => {
                let addr = dests[node.index(dests.len())];
                let t = target(*on_fork);
                let start_ms = t.now_ms() + *offset_ms as f64;
                t.add_congestion(CongestionEpisode {
                    target: CongestionTarget::Node(addr.ia),
                    start_ms,
                    end_ms: start_ms + *duration_ms as f64,
                    severity: 1.0,
                });
            }
            Op::ClearCongestion { on_fork } => target(*on_fork).clear_congestion(),
            Op::Server {
                dest,
                behavior,
                on_fork,
            } => {
                let addr = dests[dest.index(dests.len())];
                let b = match behavior {
                    0 => ServerBehavior::Up,
                    1 => ServerBehavior::Down,
                    2 => ServerBehavior::BadResponse,
                    _ => ServerBehavior::Flaky(0.5),
                };
                target(*on_fork).set_server_behavior(addr, b);
            }
            Op::Fork { salt } => {
                fork = Some(net.fork(*salt));
            }
            Op::Advance { ms } => net.advance_ms(*ms as f64),
        }
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The epoch-invalidation oracle: for any schedule of lookups, fault
    /// mutations and forks, the cached network's observable outputs are
    /// byte-identical to the uncached reference's.
    #[test]
    fn cached_and_uncached_networks_are_observably_identical(
        ops in prop::collection::vec(arb_op(), 1..14),
    ) {
        let cached = run_schedule(true, &ops);
        let reference = run_schedule(false, &ops);
        prop_assert_eq!(cached, reference);
    }
}

#[test]
fn fork_shares_the_control_plane_instead_of_cloning_it() {
    let net = ScionNetwork::scionlab(3);
    let fork = net.fork(1);
    assert!(net.shares_control_plane(&fork));
    assert!(
        Arc::ptr_eq(
            net.path_server().beacon_store(),
            fork.path_server().beacon_store()
        ),
        "fork must share the beacon store, not clone it"
    );
    // Grandchildren share it too.
    let grandchild = fork.fork(2);
    assert!(net.shares_control_plane(&grandchild));
    // Independently built networks do not.
    let other = ScionNetwork::scionlab(3);
    assert!(!net.shares_control_plane(&other));
}

#[test]
fn cache_counters_record_hits_and_misses() {
    let tel = Arc::new(upin_telemetry::Telemetry::new());
    let mut net = ScionNetwork::scionlab(5);
    net.set_recorder(tel.clone());
    let dst = paper_destinations()[1];

    // First lookup misses, later lookups (any cap) hit.
    net.paths(MY_AS, dst.ia, 5);
    assert_eq!(tel.counter("sim.pathcache.miss"), 1);
    assert_eq!(tel.counter("sim.pathcache.hit"), 0);
    net.paths(MY_AS, dst.ia, 40);
    net.paths(MY_AS, dst.ia, 1);
    assert_eq!(tel.counter("sim.pathcache.miss"), 1);
    assert_eq!(tel.counter("sim.pathcache.hit"), 2);

    // Forks hit the shared cache.
    let fork = net.fork(7);
    fork.paths(MY_AS, dst.ia, 5);
    assert_eq!(tel.counter("sim.pathcache.miss"), 1);
    assert_eq!(tel.counter("sim.pathcache.hit"), 3);

    // Compile caching: a repeated ping reuses the compiled path...
    let path = net.paths(MY_AS, dst.ia, 1).remove(0);
    let opts = ProbeOptions {
        count: 1,
        interval_ms: 10.0,
        timeout_ms: 1000.0,
        payload_bytes: 8,
    };
    net.ping(&path, dst, &opts).unwrap();
    assert_eq!(tel.counter("sim.compile_cache.miss"), 1);
    net.ping(&path, dst, &opts).unwrap();
    assert_eq!(tel.counter("sim.compile_cache.hit"), 1);

    // ...until a fault mutation bumps the epoch and invalidates it.
    net.set_server_behavior(dst, ServerBehavior::Down);
    net.ping(&path, dst, &opts).unwrap();
    assert_eq!(tel.counter("sim.compile_cache.miss"), 2);
    assert_eq!(tel.counter("sim.compile_cache.hit"), 1);
}

#[test]
fn irrelevant_fault_mutations_refresh_instead_of_recompiling() {
    use scion_sim::topology::scionlab::{ETRI, KISTI_CORE};

    let tel = Arc::new(upin_telemetry::Telemetry::new());
    let mut net = ScionNetwork::scionlab(5);
    net.set_recorder(tel.clone());
    let dst = paper_destinations()[1]; // Ireland — nowhere near KISTI
    let path = net.paths(MY_AS, dst.ia, 1).remove(0);
    let opts = ProbeOptions {
        count: 1,
        interval_ms: 10.0,
        timeout_ms: 1000.0,
        payload_bytes: 8,
    };
    net.ping(&path, dst, &opts).unwrap();
    assert_eq!(tel.counter("sim.compile_cache.miss"), 1);

    // A flap on the far KISTI~ETRI leaf link bumps the fault epoch but
    // touches nothing on the Ireland route: the stale entry re-verifies
    // and is re-tagged, not recompiled.
    let kisti = net.topology().index_of(KISTI_CORE).unwrap();
    let etri_ia = ETRI;
    let (far_link, _) = net
        .topology()
        .links_of(kisti)
        .find(|(_, l)| {
            let peer = l.peer_of(kisti).unwrap();
            net.topology()
                .ases()
                .any(|(i, n)| i == peer && n.ia == etri_ia)
        })
        .unwrap();
    net.set_link_down(far_link, true);
    net.ping(&path, dst, &opts).unwrap();
    assert_eq!(tel.counter("sim.compile_cache.refresh"), 1);
    assert_eq!(tel.counter("sim.compile_cache.miss"), 1);
    net.set_link_down(far_link, false);
    net.ping(&path, dst, &opts).unwrap();
    assert_eq!(tel.counter("sim.compile_cache.refresh"), 2);
    assert_eq!(tel.counter("sim.compile_cache.miss"), 1);

    // A mutation that does touch the route — congestion at the
    // destination AS — forces a real recompile.
    net.add_congestion(CongestionEpisode {
        target: CongestionTarget::Node(dst.ia),
        start_ms: 0.0,
        end_ms: 60_000.0,
        severity: 0.5,
    });
    net.ping(&path, dst, &opts).unwrap();
    assert_eq!(tel.counter("sim.compile_cache.miss"), 2);
    assert_eq!(tel.counter("sim.compile_cache.refresh"), 2);
}
