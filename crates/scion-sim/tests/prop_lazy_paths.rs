//! Property-based oracle for the lazy top-k path combination: for every
//! prefix length k, the incrementally-forced ranking must be
//! byte-identical to the exhaustive reference enumeration — on random
//! BRITE-style topologies, capped and uncapped alike. Plus regression
//! coverage for NaN latencies in the ranked sort and a scaling check
//! that the capped beacon store stays sub-quadratic in topology size.

use proptest::prelude::*;
use scion_sim::beacon::BeaconConfig;
use scion_sim::net::ScionNetwork;
use scion_sim::topology::random::{random_topology, RandomTopologyConfig};
use scion_sim::topology::{AsKind, LinkKind, TopologyBuilder};

/// A small random internet: 1–3 ISDs, a handful of ASes each, with
/// shortcut/peering structure exercised via `peering_prob`.
fn small_config(isds: usize, hi: usize) -> RandomTopologyConfig {
    RandomTopologyConfig {
        isds,
        ases_per_isd: (4, hi),
        cores_per_isd: (1, 2),
        peering_prob: 0.4,
        ..RandomTopologyConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For all k, `ranked_prefix(..)[..k]` equals the uncached exhaustive
    /// ranking truncated to k — including Debug formatting, i.e. every
    /// field of every path, in order. Checked against the SAME server
    /// with ascending k, so the prefix really is extended incrementally
    /// rather than recomputed.
    #[test]
    fn lazy_prefix_matches_exhaustive_for_all_k(
        seed in 0u64..1_000,
        isds in 1usize..=3,
        hi in 4usize..=8,
        cap in prop_oneof![Just(2usize), Just(3usize), Just(usize::MAX)],
        src_pick in 0usize..64,
        dst_pick in 0usize..64,
    ) {
        let (topo, _user) = random_topology(seed, &small_config(isds, hi)).unwrap();
        let src = topo.node(scion_sim::topology::AsIndex((src_pick % topo.num_ases()) as u32)).ia;
        let dst = topo.node(scion_sim::topology::AsIndex((dst_pick % topo.num_ases()) as u32)).ia;
        let bc = BeaconConfig { beacons_per_pair: cap, ..BeaconConfig::default() };
        let net = ScionNetwork::with_beacon_config(topo, seed, &bc);
        let ps = net.path_server();
        let topo = net.topology();

        let oracle = ps.query_uncached(topo, src, dst, usize::MAX);
        for k in 0..=oracle.len() + 1 {
            let (prefix, _, _) = ps.ranked_prefix(topo, src, dst, k);
            let lazy: Vec<String> = prefix.iter().take(k).map(|p| format!("{p:?}")).collect();
            let want: Vec<String> = oracle.iter().take(k).map(|p| format!("{p:?}")).collect();
            prop_assert_eq!(&lazy, &want, "prefix diverges at k={} ({} -> {})", k, src, dst);
        }

        // find_route (the authorize fast path) agrees with the ranking:
        // every enumerated path is found, hop-for-hop.
        for p in oracle.iter().take(4) {
            let (found, _, _) = ps.find_route(topo, src, dst, p);
            let found = found.expect("ranked path must authorize");
            prop_assert!(found.same_route(p));
        }
    }
}

/// A NaN expected latency (degenerate geography) must not panic the
/// ranked sort, and must rank last within its hop-count class — the
/// `total_cmp` regression this PR fixed.
#[test]
fn nan_latency_ranks_last_without_panicking() {
    use scion_sim::addr::{Asn, IsdAsn};
    use scion_sim::geo::GeoLocation;
    use scion_sim::topology::DirAttrs;

    let ia = |asn: u64| IsdAsn::new(1, Asn(asn));
    let geo = |lat: f64| GeoLocation::new(lat, 8.0, "x", "y");
    let mut b = TopologyBuilder::new();
    b.add_as(ia(1), AsKind::Core, "core", "t", geo(40.0))
        .unwrap();
    b.add_as(ia(2), AsKind::NonCore, "mid-ok", "t", geo(41.0))
        .unwrap();
    // NaN coordinates poison every latency derived through this AS.
    b.add_as(ia(3), AsKind::NonCore, "mid-nan", "t", geo(f64::NAN))
        .unwrap();
    b.add_as(ia(4), AsKind::NonCore, "leaf", "t", geo(42.0))
        .unwrap();
    let attrs = || (DirAttrs::new(100.0), DirAttrs::new(100.0));
    for (p, c) in [(1u64, 2u64), (1, 3), (2, 4), (3, 4)] {
        let (ab, ba) = attrs();
        b.add_link(ia(p), ia(c), LinkKind::Parent, 1472, ab, ba)
            .unwrap();
    }
    let topo = b.build().unwrap();

    let net = ScionNetwork::with_beacon_config(topo, 7, &BeaconConfig::default());
    let paths = net
        .path_server()
        .query(net.topology(), ia(4), ia(1), usize::MAX);
    assert_eq!(paths.len(), 2, "two 3-hop routes leaf->core expected");
    assert!(
        paths[0].expected_latency_ms.is_finite(),
        "finite-latency path must rank first: {paths:?}"
    );
    assert!(
        paths[1].expected_latency_ms.is_nan(),
        "NaN-latency path must rank last in its hop class: {paths:?}"
    );

    // The uncached oracle agrees.
    let oracle = net
        .path_server()
        .query_uncached(net.topology(), ia(4), ia(1), usize::MAX);
    assert_eq!(format!("{paths:?}"), format!("{oracle:?}"));
}

/// With a fixed per-pair beacon cap, growing a topology 100 -> 1000 ASes
/// (same ISD/core shape) must grow beacon-store hop memory far slower
/// than quadratically. Quadratic growth would be ~112x here; the capped
/// store stays within a small constant factor of linear.
#[test]
fn capped_beacon_store_memory_is_sub_quadratic() {
    let bytes_at = |ases: (usize, usize)| {
        let cfg = RandomTopologyConfig {
            isds: 5,
            ases_per_isd: ases,
            cores_per_isd: (2, 2),
            ..RandomTopologyConfig::default()
        };
        let (topo, _) = random_topology(9, &cfg).unwrap();
        let n = topo.num_ases();
        let bc = BeaconConfig {
            beacons_per_pair: 4,
            ..BeaconConfig::default()
        };
        let net = ScionNetwork::with_beacon_config(topo, 9, &bc);
        (n, net.path_server().beacon_store().hop_bytes())
    };
    let (n_small, b_small) = bytes_at((18, 22));
    let (n_big, b_big) = bytes_at((190, 210));
    assert!(n_small >= 90 && n_big >= 950, "{n_small} / {n_big}");

    let growth = b_big as f64 / b_small as f64;
    let quadratic = (n_big as f64 / n_small as f64).powi(2);
    assert!(
        growth < quadratic / 3.0,
        "beacon store grew {growth:.1}x for {n_small}->{n_big} ASes \
         (quadratic would be {quadratic:.0}x)"
    );
}
