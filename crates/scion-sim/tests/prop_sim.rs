//! Property-based tests of the simulator: addressing codecs, DES
//! ordering, MAC chaining, path-server output invariants and flow
//! conservation laws.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scion_sim::addr::{Asn, HostAddr, IfaceId, IsdAsn, ScionAddr};
use scion_sim::crypto::{keyed_mac, SymmetricKey};
use scion_sim::dataplane::flows::{simulate_flow, FlowParams, SENDER_PPS_CAP};
use scion_sim::dataplane::WireHop;
use scion_sim::des::{Engine, SimTime};
use scion_sim::net::ScionNetwork;
use scion_sim::path::{PathHop, ScionPath};
use scion_sim::pathserver::validate_structure;
use scion_sim::segments::{Segment, SegmentKind};
use scion_sim::topology::scionlab::MY_AS;

fn arb_isd_asn() -> impl Strategy<Value = IsdAsn> {
    (1u16..100, 0u64..(1u64 << 48)).prop_map(|(isd, asn)| IsdAsn::new(isd, Asn(asn)))
}

proptest! {
    #[test]
    fn isd_asn_roundtrip(ia in arb_isd_asn()) {
        let s = ia.to_string();
        prop_assert_eq!(s.parse::<IsdAsn>().unwrap(), ia);
    }

    #[test]
    fn scion_addr_roundtrip(ia in arb_isd_asn(), a: u8, b: u8, c: u8, d: u8) {
        let addr = ScionAddr::new(ia, HostAddr::new(a, b, c, d));
        prop_assert_eq!(addr.to_string().parse::<ScionAddr>().unwrap(), addr);
    }

    #[test]
    fn hop_predicate_roundtrip(ia in arb_isd_asn(), ig in 0u16..100, eg in 0u16..100) {
        let hop = PathHop::new(ia, IfaceId(ig), IfaceId(eg));
        prop_assert_eq!(hop.to_string().parse::<PathHop>().unwrap(), hop);
    }

    #[test]
    fn sequence_roundtrip(hops in prop::collection::vec((arb_isd_asn(), 0u16..50, 0u16..50), 1..8)) {
        let path = ScionPath {
            hops: hops.into_iter().map(|(ia, i, e)| PathHop::new(ia, IfaceId(i), IfaceId(e))).collect(),
            mtu: 0,
            expected_latency_ms: 0.0,
            status: scion_sim::path::PathStatus::Unknown,
            macs: vec![],
        };
        let parsed = ScionPath::from_sequence(&path.sequence()).unwrap();
        prop_assert!(parsed.same_route(&path));
    }

    #[test]
    fn des_executes_in_nondecreasing_time_order(times in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut engine: Engine<Vec<(u64, u64)>> = Engine::new();
        let mut log: Vec<(u64, u64)> = Vec::new();
        for t in &times {
            let t = *t;
            engine.schedule_at(
                SimTime(t),
                move |s: &mut Vec<(u64, u64)>, e: &mut Engine<Vec<(u64, u64)>>| {
                    s.push((t, e.now().0));
                },
            );
        }
        engine.run_to_completion(&mut log);
        prop_assert_eq!(log.len(), times.len());
        for (scheduled, now) in &log {
            prop_assert_eq!(scheduled, now, "handlers observe their scheduled time");
        }
        for w in log.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn mac_chain_verifies_and_detects_single_bit_flip(
        master in any::<u64>(),
        info in any::<u64>(),
        chain in prop::collection::vec((arb_isd_asn(), 1u16..40, 1u16..40), 2..6),
        flip_at in any::<prop::sample::Index>(),
    ) {
        let key = |ia: IsdAsn| SymmetricKey::derive(master, ia);
        let (first, rest) = chain.split_first().unwrap();
        let mut seg = Segment::originate(SegmentKind::Down, info, first.0, &key(first.0));
        let mut last = first.0;
        for (ia, out_if, in_if) in rest {
            if *ia == last || seg.hops.iter().any(|h| h.ia == *ia) {
                continue; // keep the chain loop-free
            }
            seg = seg.extend(IfaceId(*out_if), &key(last), *ia, IfaceId(*in_if), &key(*ia));
            last = *ia;
        }
        prop_assert!(seg.verify(key));
        if seg.len() > 1 {
            let idx = flip_at.index(seg.len());
            let mut hops = seg.hops.to_vec();
            hops[idx].mac = scion_sim::crypto::MacTag(hops[idx].mac.0 ^ 1);
            prop_assert!(!seg.with_hops(hops).verify(key));
        }
    }

    #[test]
    fn keyed_mac_distinct_inputs_rarely_collide(a in prop::collection::vec(any::<u8>(), 0..64),
                                                b in prop::collection::vec(any::<u8>(), 0..64)) {
        let k = SymmetricKey::derive(9, IsdAsn::new(1, Asn(1)));
        if a != b {
            // 48-bit tags: collisions are possible but must not happen
            // on the deterministic proptest corpus.
            prop_assert_ne!(keyed_mac(&k, &a), keyed_mac(&k, &b));
        }
    }

    #[test]
    fn flow_conservation(capacity in 5.0..500.0f64,
                         bg in 0.0..0.9f64,
                         size in 64u32..1400,
                         target in 1.0..200.0f64,
                         seed in any::<u64>()) {
        let hop = WireHop {
            prop_ms: 10.0,
            capacity_mbps: capacity,
            background_util: bg,
            jitter_ms: 0.1,
            base_loss: 0.001,
            pps_cap: Some(20_000.0),
            episodes: vec![],
            down: false,
            mtu: 1472,
        };
        let params = FlowParams { duration_s: 3.0, packet_bytes: size, target_mbps: target };
        let out = simulate_flow(&[hop], &params, 130, 0.0, &mut StdRng::seed_from_u64(seed));
        prop_assert!(out.achieved_mbps >= 0.0);
        prop_assert!(out.achieved_mbps <= out.attempted_mbps * 1.001,
                     "achieved {} > attempted {}", out.achieved_mbps, out.attempted_mbps);
        // Sender never exceeds its pacing (3% jitter margin) nor its pps cap.
        let cap_mbps = SENDER_PPS_CAP * (size as f64) * 8.0 / 1e6;
        prop_assert!(out.attempted_mbps <= (target * 1.04).min(cap_mbps * 1.04));
        prop_assert!((0.0..=1.0).contains(&out.loss));
        prop_assert!(out.packets_received <= out.packets_sent);
    }
}

fn arb_pattern() -> impl Strategy<Value = scion_sim::policy::HopPattern> {
    use scion_sim::policy::HopPattern;
    (0u16..4, 0u64..6).prop_map(|(isd, asn)| HopPattern {
        isd: (isd != 0).then_some(isd),
        asn: (asn != 0).then_some(Asn(asn)),
    })
}

fn arb_acl() -> impl Strategy<Value = scion_sim::policy::Acl> {
    use scion_sim::policy::{Acl, AclRule, Action};
    prop::collection::vec((any::<bool>(), arb_pattern()), 1..6).prop_map(|rules| Acl {
        rules: rules
            .into_iter()
            .map(|(allow, pattern)| AclRule {
                action: if allow { Action::Allow } else { Action::Deny },
                pattern,
            })
            .collect(),
    })
}

proptest! {
    /// ACL display/parse round-trips.
    #[test]
    fn acl_roundtrip(acl in arb_acl()) {
        let text = acl.to_string();
        let back: scion_sim::policy::Acl = text.parse().unwrap();
        prop_assert_eq!(acl, back);
    }

    /// `decide` implements first-match semantics (checked against a
    /// naive reference), and `filter` is an order-preserving subset.
    #[test]
    fn acl_first_match_semantics(
        acl in arb_acl(),
        hops in prop::collection::vec((1u16..4, 1u64..6), 1..6),
    ) {
        use scion_sim::policy::Action;
        let path = ScionPath {
            hops: hops
                .iter()
                .map(|(isd, asn)| PathHop::new(IsdAsn::new(*isd, Asn(*asn)), IfaceId(1), IfaceId(2)))
                .collect(),
            mtu: 0,
            expected_latency_ms: 0.0,
            status: scion_sim::path::PathStatus::Unknown,
            macs: vec![],
        };
        // Naive reference.
        let mut expect = Action::Deny;
        'rules: for rule in &acl.rules {
            for h in &path.hops {
                if rule.pattern.matches(h.ia) {
                    expect = rule.action;
                    break 'rules;
                }
            }
        }
        prop_assert_eq!(acl.decide(&path), expect);

        let input = vec![path.clone(), path.clone()];
        let kept = acl.filter(input);
        match expect {
            Action::Allow => prop_assert_eq!(kept.len(), 2),
            Action::Deny => prop_assert!(kept.is_empty()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every path the path server hands out, for any seed and any
    /// destination, is loop-free, valley-free, adjacency-consistent and
    /// MAC-valid — the core control-plane invariant.
    #[test]
    fn pathserver_output_always_validates(seed in 0u64..1000, dest_pick in any::<prop::sample::Index>()) {
        let net = ScionNetwork::scionlab(seed);
        let servers = net.topology().all_servers();
        let dst = servers[dest_pick.index(servers.len())];
        let paths = net.paths(MY_AS, dst.ia, 40);
        prop_assert!(!paths.is_empty(), "every server is reachable");
        for p in &paths {
            prop_assert!(!p.has_loop());
            prop_assert!(validate_structure(net.topology(), p).is_ok());
            prop_assert!(net.path_server().validate(net.topology(), p).is_ok());
            prop_assert_eq!(p.src(), Some(MY_AS));
            prop_assert_eq!(p.dst(), Some(dst.ia));
            prop_assert!(p.mtu >= 1400);
            prop_assert!(p.expected_latency_ms > 0.0);
        }
        // Ranking: hop counts never decrease.
        for w in paths.windows(2) {
            prop_assert!(w[0].hop_count() <= w[1].hop_count());
        }
    }
}
