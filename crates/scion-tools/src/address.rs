//! `scion address` — report the local host's SCION address.

use crate::error::ToolError;
use scion_sim::addr::{HostAddr, IsdAsn, ScionAddr};
use scion_sim::net::ScionNetwork;

/// The result of `scion address`.
#[derive(Debug, Clone, PartialEq)]
pub struct AddressInfo {
    pub addr: ScionAddr,
    /// AS display name from the topology.
    pub as_name: String,
}

impl AddressInfo {
    /// Render like the CLI: the bare `ISD-ASN,ip` line.
    pub fn render(&self) -> String {
        format!("{},{}", self.addr.ia, self.addr.host)
    }
}

/// Run `scion address` for a host in `local_ia`.
pub fn address(
    net: &ScionNetwork,
    local_ia: IsdAsn,
    host: HostAddr,
) -> Result<AddressInfo, ToolError> {
    let idx = net
        .topology()
        .index_of(local_ia)
        .ok_or_else(|| ToolError::Usage(format!("unknown local AS {local_ia}")))?;
    Ok(AddressInfo {
        addr: ScionAddr::new(local_ia, host),
        as_name: net.topology().node(idx).name.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_sim::topology::scionlab::MY_AS;

    #[test]
    fn local_address_renders() {
        let net = ScionNetwork::scionlab(1);
        let info = address(&net, MY_AS, HostAddr::new(10, 0, 2, 15)).unwrap();
        assert_eq!(info.render(), "17-ffaa:1:eaf,10.0.2.15");
        assert_eq!(info.as_name, "MY_AS#1");
    }

    #[test]
    fn unknown_as_is_usage_error() {
        let net = ScionNetwork::scionlab(1);
        let bogus: IsdAsn = "99-ffaa:0:9999".parse().unwrap();
        assert!(matches!(
            address(&net, bogus, HostAddr::new(1, 1, 1, 1)),
            Err(ToolError::Usage(_))
        ));
    }
}
