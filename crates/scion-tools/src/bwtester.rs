//! `scion-bwtestclient` — bandwidth tests over a chosen path.
//!
//! Parameter strings follow the bwtester grammar the paper quotes:
//! `duration,packet_size,num_packets,bandwidth`, e.g. `3,64,?,12Mbps` —
//! "the packet size is 64 bytes, sent over 3 seconds, resulting in a
//! bandwidth of 12 Mbps; `?` is a wildcard computed from the other
//! parameters". Constraints enforced like the real tool: duration ≤ 10 s,
//! packet size ≥ 4 bytes. `-cs` sets the client→server direction; `-sc`
//! defaults to the same parameters, "resulting in 2 average bandwidths".

use crate::error::ToolError;
use crate::ping::{resolve_path, PathSelection};
use crate::units::{format_bandwidth_mbps, parse_bandwidth_mbps};
use scion_sim::addr::{IsdAsn, ScionAddr};
use scion_sim::dataplane::flows::FlowParams;
use scion_sim::net::ScionNetwork;
use scion_sim::path::ScionPath;

/// Maximum test duration accepted by bwtester (seconds).
pub const MAX_DURATION_S: f64 = 10.0;
/// Minimum packet size accepted by bwtester (bytes).
pub const MIN_PACKET_BYTES: u32 = 4;

/// A fully resolved parameter tuple (after wildcard inference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BwParams {
    pub duration_s: f64,
    pub packet_bytes: u32,
    pub num_packets: u64,
    pub target_mbps: f64,
}

impl BwParams {
    /// Parse a `duration,size,count,bandwidth` string, solving at most
    /// one `?` wildcard from the identity
    /// `bandwidth = size × 8 × count / duration`.
    pub fn parse(s: &str) -> Result<BwParams, ToolError> {
        let parts: Vec<&str> = s.split(',').map(str::trim).collect();
        if parts.len() != 4 {
            return Err(ToolError::Usage(format!(
                "expected 4 comma-separated fields in {s:?}"
            )));
        }
        let wildcards = parts.iter().filter(|p| **p == "?").count();
        if wildcards > 1 {
            return Err(ToolError::Usage(format!(
                "at most one '?' wildcard allowed in {s:?}"
            )));
        }
        let duration: Option<f64> = parse_field(parts[0], |v: &str| {
            v.parse::<f64>().ok().filter(|d| *d > 0.0)
        })?;
        let size: Option<u32> = parse_field(parts[1], |v: &str| v.parse::<u32>().ok())?;
        let count: Option<u64> = parse_field(parts[2], |v: &str| v.parse::<u64>().ok())?;
        let bw: Option<f64> = parse_field(parts[3], |v: &str| parse_bandwidth_mbps(v).ok())?;

        // Solve the single missing variable.
        let (duration, size, count, bw) = match (duration, size, count, bw) {
            (Some(d), Some(s_), Some(c), Some(b)) => {
                let implied = s_ as f64 * 8.0 * c as f64 / d / 1e6;
                if (implied - b).abs() > 0.01 * b.max(implied) {
                    return Err(ToolError::Usage(format!(
                        "inconsistent parameters: {s_}B × {c} / {d}s = {}, not {}",
                        format_bandwidth_mbps(implied),
                        format_bandwidth_mbps(b)
                    )));
                }
                (d, s_, c, b)
            }
            (None, Some(s_), Some(c), Some(b)) => {
                let d = s_ as f64 * 8.0 * c as f64 / (b * 1e6);
                (d, s_, c, b)
            }
            (Some(d), None, Some(c), Some(b)) => {
                let s_ = (b * 1e6 * d / (8.0 * c as f64)).round();
                if s_ < 1.0 || s_ > u32::MAX as f64 {
                    return Err(ToolError::Usage("inferred packet size out of range".into()));
                }
                (d, s_ as u32, c, b)
            }
            (Some(d), Some(s_), None, Some(b)) => {
                let c = (b * 1e6 * d / (8.0 * s_ as f64)).round();
                if c < 1.0 {
                    return Err(ToolError::Usage("inferred packet count is zero".into()));
                }
                (d, s_, c as u64, b)
            }
            (Some(d), Some(s_), Some(c), None) => {
                let b = s_ as f64 * 8.0 * c as f64 / d / 1e6;
                (d, s_, c, b)
            }
            _ => {
                return Err(ToolError::Usage(format!(
                    "not enough parameters to solve {s:?}"
                )))
            }
        };

        if duration > MAX_DURATION_S {
            return Err(ToolError::Usage(format!(
                "duration {duration}s exceeds the {MAX_DURATION_S}s bwtester limit"
            )));
        }
        if size < MIN_PACKET_BYTES {
            return Err(ToolError::Usage(format!(
                "packet size {size} below the {MIN_PACKET_BYTES}-byte minimum"
            )));
        }
        Ok(BwParams {
            duration_s: duration,
            packet_bytes: size,
            num_packets: count,
            target_mbps: bw,
        })
    }

    /// Substitute `MTU` placeholders before parsing: the paper's suite
    /// issues `3,MTU,?,12Mbps` with the path MTU patched in. Accounts
    /// for SCION/UDP headers so the wire packet fits the link MTU.
    pub fn parse_with_mtu(
        s: &str,
        path_mtu: u32,
        header_bytes: u32,
    ) -> Result<BwParams, ToolError> {
        let payload = path_mtu.saturating_sub(header_bytes).max(MIN_PACKET_BYTES);
        let substituted = s.replace("MTU", &payload.to_string());
        BwParams::parse(&substituted)
    }

    /// Convert to the simulator's flow parameters.
    pub fn flow(&self) -> FlowParams {
        FlowParams {
            duration_s: self.duration_s,
            packet_bytes: self.packet_bytes,
            target_mbps: self.target_mbps,
        }
    }
}

fn parse_field<T>(raw: &str, f: impl Fn(&str) -> Option<T>) -> Result<Option<T>, ToolError> {
    if raw == "?" {
        return Ok(None);
    }
    f(raw)
        .map(Some)
        .ok_or_else(|| ToolError::Usage(format!("bad field {raw:?}")))
}

/// Result of one direction of the test.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectionReport {
    pub params: BwParams,
    pub attempted_mbps: f64,
    pub achieved_mbps: f64,
    pub loss_pct: f64,
}

/// Full bwtestclient report.
#[derive(Debug, Clone, PartialEq)]
pub struct BwtestReport {
    pub destination: ScionAddr,
    pub path: ScionPath,
    /// Client → server.
    pub cs: DirectionReport,
    /// Server → client.
    pub sc: DirectionReport,
}

impl BwtestReport {
    /// CLI-style rendering of both directions.
    pub fn render(&self) -> String {
        format!(
            "S->C results\nAchieved bandwidth: {}\nLoss rate: {:.1}%\nC->S results\nAchieved bandwidth: {}\nLoss rate: {:.1}%\n",
            format_bandwidth_mbps(self.sc.achieved_mbps),
            self.sc.loss_pct,
            format_bandwidth_mbps(self.cs.achieved_mbps),
            self.cs.loss_pct,
        )
    }
}

/// Run `scion-bwtestclient -s <dst> -cs <cs> [-sc <sc>] [--sequence]`.
///
/// `sc` defaults to the `cs` parameters when `None`, as in the real tool.
pub fn bwtest(
    net: &ScionNetwork,
    local: IsdAsn,
    destination: ScionAddr,
    cs_spec: &str,
    sc_spec: Option<&str>,
    selection: &PathSelection,
) -> Result<BwtestReport, ToolError> {
    let path = resolve_path(net, local, destination.ia, selection)?;
    let header = scion_sim::dataplane::header_bytes(path.hop_count());
    let cs = BwParams::parse_with_mtu(cs_spec, path.mtu, header)?;
    let sc = match sc_spec {
        Some(s) => BwParams::parse_with_mtu(s, path.mtu, header)?,
        None => cs,
    };
    let outcome = net.bwtest(&path, destination, &cs.flow(), &sc.flow())?;
    Ok(BwtestReport {
        destination,
        path,
        cs: DirectionReport {
            params: cs,
            attempted_mbps: outcome.cs.attempted_mbps,
            achieved_mbps: outcome.cs.achieved_mbps,
            loss_pct: outcome.cs.loss * 100.0,
        },
        sc: DirectionReport {
            params: sc,
            attempted_mbps: outcome.sc.attempted_mbps,
            achieved_mbps: outcome.sc.achieved_mbps,
            loss_pct: outcome.sc.loss * 100.0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_sim::fault::ServerBehavior;
    use scion_sim::net::NetError;
    use scion_sim::topology::scionlab::{paper_destinations, MY_AS};

    #[test]
    fn parses_paper_example_with_count_wildcard() {
        // "5,100,?,150Mbps ... the number of packets sent ... computed
        // according to the other parameters" — §3.3 verbatim.
        let p = BwParams::parse("5,100,?,150Mbps").unwrap();
        assert_eq!(p.duration_s, 5.0);
        assert_eq!(p.packet_bytes, 100);
        assert_eq!(p.num_packets, 937_500);
        assert_eq!(p.target_mbps, 150.0);
    }

    #[test]
    fn parses_suite_parameters() {
        let p = BwParams::parse("3,64,?,12Mbps").unwrap();
        assert_eq!(p.num_packets, 70_313);
        let p = BwParams::parse("3,1000,?,12Mbps").unwrap();
        assert_eq!(p.num_packets, 4500);
    }

    #[test]
    fn solves_each_wildcard_position() {
        let b = BwParams::parse("3,1000,4500,?").unwrap();
        assert!((b.target_mbps - 12.0).abs() < 1e-9);
        let d = BwParams::parse("?,1000,4500,12Mbps").unwrap();
        assert!((d.duration_s - 3.0).abs() < 1e-9);
        let s = BwParams::parse("3,?,4500,12Mbps").unwrap();
        assert_eq!(s.packet_bytes, 1000);
    }

    #[test]
    fn consistency_check_on_fully_specified() {
        assert!(BwParams::parse("3,1000,4500,12Mbps").is_ok());
        assert!(matches!(
            BwParams::parse("3,1000,4500,99Mbps"),
            Err(ToolError::Usage(_))
        ));
    }

    #[test]
    fn enforces_bwtester_limits() {
        // Duration cap: 10 s.
        assert!(matches!(
            BwParams::parse("11,1000,?,12Mbps"),
            Err(ToolError::Usage(_))
        ));
        // Packet size floor: 4 bytes.
        assert!(matches!(
            BwParams::parse("3,2,?,12Mbps"),
            Err(ToolError::Usage(_))
        ));
        // Two wildcards.
        assert!(matches!(
            BwParams::parse("3,?,?,12Mbps"),
            Err(ToolError::Usage(_))
        ));
        // Wrong arity.
        assert!(matches!(
            BwParams::parse("3,64,12Mbps"),
            Err(ToolError::Usage(_))
        ));
        // Garbage field.
        assert!(matches!(
            BwParams::parse("3,64,x,12Mbps"),
            Err(ToolError::Usage(_))
        ));
    }

    #[test]
    fn mtu_placeholder_subtracts_headers() {
        let p = BwParams::parse_with_mtu("3,MTU,?,12Mbps", 1472, 140).unwrap();
        assert_eq!(p.packet_bytes, 1332);
    }

    #[test]
    fn end_to_end_12mbps_mtu_test() {
        let net = ScionNetwork::scionlab(31);
        let dst = paper_destinations()[0]; // Magdeburg (Germany)
        let r = bwtest(
            &net,
            MY_AS,
            dst,
            "3,MTU,?,12Mbps",
            None,
            &PathSelection::Default,
        )
        .unwrap();
        // Downstream comfortably reaches the target; upstream is the
        // constrained direction (Fig. 7's asymmetry).
        assert!(r.sc.achieved_mbps > 9.0, "sc {}", r.sc.achieved_mbps);
        assert!(r.cs.achieved_mbps > 4.0, "cs {}", r.cs.achieved_mbps);
        assert!(
            r.sc.achieved_mbps >= r.cs.achieved_mbps - 1.0,
            "downstream {} vs upstream {}",
            r.sc.achieved_mbps,
            r.cs.achieved_mbps
        );
        assert!(r.render().contains("Achieved bandwidth"));
    }

    #[test]
    fn down_server_reports_timeout() {
        let net = ScionNetwork::scionlab(32);
        let dst = paper_destinations()[0];
        net.set_server_behavior(dst, ServerBehavior::Down);
        let err = bwtest(
            &net,
            MY_AS,
            dst,
            "3,1000,?,12Mbps",
            None,
            &PathSelection::Default,
        );
        assert_eq!(err, Err(ToolError::Net(NetError::Timeout)));
    }

    #[test]
    fn distinct_sc_parameters_are_honored() {
        let net = ScionNetwork::scionlab(33);
        let dst = paper_destinations()[0];
        let r = bwtest(
            &net,
            MY_AS,
            dst,
            "3,1000,?,12Mbps",
            Some("3,64,?,12Mbps"),
            &PathSelection::Default,
        )
        .unwrap();
        assert_eq!(r.cs.params.packet_bytes, 1000);
        assert_eq!(r.sc.params.packet_bytes, 64);
    }
}
