//! Shared error type for the tool layer.

use scion_sim::addr::AddrParseError;
use scion_sim::net::NetError;
use std::fmt;

/// Errors any of the re-implemented SCION applications can return.
#[derive(Debug, Clone, PartialEq)]
pub enum ToolError {
    /// Malformed address / sequence / parameter string.
    Usage(String),
    /// The network rejected the operation.
    Net(NetError),
    /// No path satisfies the request (destination unreachable or the
    /// `--sequence` predicate matched nothing).
    NoPath(String),
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::Usage(m) => write!(f, "usage error: {m}"),
            ToolError::Net(e) => write!(f, "network error: {e}"),
            ToolError::NoPath(m) => write!(f, "no path: {m}"),
        }
    }
}

impl std::error::Error for ToolError {}

impl From<NetError> for ToolError {
    fn from(e: NetError) -> Self {
        ToolError::Net(e)
    }
}

impl From<AddrParseError> for ToolError {
    fn from(e: AddrParseError) -> Self {
        ToolError::Usage(e.to_string())
    }
}

impl From<crate::units::UnitError> for ToolError {
    fn from(e: crate::units::UnitError) -> Self {
        ToolError::Usage(e.to_string())
    }
}
