//! # scion-tools — the SCION end-host applications, re-implemented
//!
//! Rust counterparts of the SCIONLab applications the paper's test-suite
//! wraps (§3.3), running against [`scion_sim::net::ScionNetwork`] instead
//! of a live testbed, with the same input/output contracts:
//!
//! * [`address`] — `scion address`
//! * [`showpaths`] — `scion showpaths [-m N] [--extended]`
//! * [`ping`] — `scion ping -c N --interval T [--sequence '...']`,
//!   including the interactive path-choice mode
//! * [`traceroute`] — `scion traceroute`
//! * [`bwtester`] — `scion-bwtestclient -cs 'd,s,n,bw' [-sc ...]` with
//!   `?` wildcard inference and the tool's duration/packet-size limits
//!
//! Every tool returns a structured result plus a `render()` method that
//! produces CLI-shaped text.

pub mod address;
pub mod bwtester;
pub mod error;
pub mod multipath;
pub mod ping;
pub mod shell;
pub mod showpaths;
pub mod traceroute;
pub mod units;

pub use address::{address, AddressInfo};
pub use bwtester::{bwtest, BwParams, BwtestReport, DirectionReport};
pub use error::ToolError;
pub use ping::{ping, PathSelection, PingOptions, PingReport};
pub use showpaths::{showpaths, ShowpathsOptions, ShowpathsResult};
pub use traceroute::{traceroute, TracerouteReport};
