//! Multipath failover: SCION's headline end-host capability.
//!
//! SCIONLab's "main goal is to provide a variety of paths between
//! different ASes to support multipath operations" (§3.1). This module
//! implements the canonical multipath client behaviour on top of the
//! probe layer: hold a ranked set of paths, probe over the active one,
//! and fail over to the next path as soon as consecutive losses cross a
//! threshold — without any routing-protocol convergence, because the
//! endpoint owns the path.

use crate::error::ToolError;
use scion_sim::addr::{IsdAsn, ScionAddr};
use scion_sim::dataplane::scmp::ProbeOptions;
use scion_sim::net::ScionNetwork;
use scion_sim::path::ScionPath;

/// Failover policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailoverPolicy {
    /// Consecutive lost probes that trigger a switch.
    pub loss_threshold: u32,
    /// Probes to send in total.
    pub total_probes: u32,
    /// Inter-probe interval, ms.
    pub interval_ms: f64,
}

impl Default for FailoverPolicy {
    fn default() -> Self {
        FailoverPolicy {
            loss_threshold: 3,
            total_probes: 30,
            interval_ms: 100.0,
        }
    }
}

/// One probe's record in the session log.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRecord {
    /// Index of the path (into [`FailoverReport::paths`]) used.
    pub path: usize,
    pub rtt_ms: Option<f64>,
}

/// Outcome of a failover session.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverReport {
    /// The candidate paths, in preference order.
    pub paths: Vec<ScionPath>,
    /// Per-probe log.
    pub probes: Vec<ProbeRecord>,
    /// Number of path switches performed.
    pub switches: usize,
    /// Index of the path in use at the end.
    pub final_path: usize,
}

impl FailoverReport {
    pub fn received(&self) -> usize {
        self.probes.iter().filter(|p| p.rtt_ms.is_some()).count()
    }

    pub fn loss(&self) -> f64 {
        if self.probes.is_empty() {
            return 0.0;
        }
        1.0 - self.received() as f64 / self.probes.len() as f64
    }
}

/// Probe `dst` with automatic failover across up to `max_paths`
/// candidate paths (ranked as `showpaths` ranks them).
///
/// Probes are sent one at a time over the active path; after
/// `loss_threshold` consecutive losses the client rotates to the next
/// candidate (wrapping), re-probing immediately.
pub fn ping_with_failover(
    net: &ScionNetwork,
    local: IsdAsn,
    dst: ScionAddr,
    max_paths: usize,
    policy: &FailoverPolicy,
) -> Result<FailoverReport, ToolError> {
    let paths = net.paths(local, dst.ia, max_paths);
    if paths.is_empty() {
        return Err(ToolError::NoPath(format!("no path to {}", dst.ia)));
    }
    let single = ProbeOptions {
        count: 1,
        interval_ms: policy.interval_ms,
        payload_bytes: 8,
        timeout_ms: 1000.0,
    };
    let mut probes = Vec::with_capacity(policy.total_probes as usize);
    let mut active = 0usize;
    let mut consecutive_losses = 0u32;
    let mut switches = 0usize;
    for _ in 0..policy.total_probes {
        let outcome = net.ping(&paths[active], dst, &single)?;
        let rtt = outcome.rtts_ms.first().copied().flatten();
        probes.push(ProbeRecord {
            path: active,
            rtt_ms: rtt,
        });
        match rtt {
            Some(_) => consecutive_losses = 0,
            None => {
                consecutive_losses += 1;
                if consecutive_losses >= policy.loss_threshold && paths.len() > 1 {
                    active = (active + 1) % paths.len();
                    consecutive_losses = 0;
                    switches += 1;
                }
            }
        }
    }
    Ok(FailoverReport {
        paths,
        probes,
        switches,
        final_path: active,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_sim::fault::{CongestionEpisode, CongestionTarget};
    use scion_sim::topology::scionlab::{paper_destinations, AWS_IRELAND, ETHZ_CORE, MY_AS};

    fn net() -> ScionNetwork {
        ScionNetwork::scionlab(19)
    }

    fn quick_policy() -> FailoverPolicy {
        FailoverPolicy {
            loss_threshold: 2,
            total_probes: 12,
            interval_ms: 50.0,
        }
    }

    #[test]
    fn healthy_network_never_switches() {
        let n = net();
        let report =
            ping_with_failover(&n, MY_AS, paper_destinations()[1], 5, &quick_policy()).unwrap();
        assert_eq!(report.switches, 0);
        assert_eq!(report.final_path, 0);
        assert!(report.received() >= 11);
        assert!(report.probes.iter().all(|p| p.path == 0));
    }

    #[test]
    fn blackout_on_primary_triggers_failover() {
        let n = net();
        // The preferred Ireland paths go up through the ETHZ core; the
        // Swisscom-core paths avoid it. Blind the ETHZ core for the
        // whole session: the client must rotate to a Swisscom path.
        let t0 = n.now_ms();
        n.add_congestion(CongestionEpisode {
            target: CongestionTarget::Node(ETHZ_CORE),
            start_ms: t0,
            end_ms: t0 + 10_000_000.0,
            severity: 1.0,
        });
        let policy = FailoverPolicy {
            loss_threshold: 2,
            total_probes: 40,
            interval_ms: 50.0,
        };
        let report = ping_with_failover(&n, MY_AS, paper_destinations()[1], 40, &policy).unwrap();
        assert!(report.switches > 0, "must fail over");
        assert!(
            report.received() > 0,
            "an ETHZ-core-free path eventually answers"
        );
        // The path in use at the end avoids the congested core.
        let final_path = &report.paths[report.final_path];
        assert!(
            !final_path.hops.iter().any(|h| h.ia == ETHZ_CORE),
            "final path {final_path}"
        );
        // And once found, it keeps answering.
        let tail: Vec<_> = report.probes.iter().rev().take(3).collect();
        assert!(tail.iter().all(|p| p.rtt_ms.is_some()), "{tail:?}");
    }

    #[test]
    fn no_path_is_an_error() {
        let n = net();
        let bogus = ScionAddr::new(
            "99-ffaa:0:9999".parse().unwrap(),
            scion_sim::addr::HostAddr::new(1, 1, 1, 1),
        );
        assert!(matches!(
            ping_with_failover(&n, MY_AS, bogus, 5, &quick_policy()),
            Err(ToolError::NoPath(_))
        ));
        let _ = AWS_IRELAND;
    }

    #[test]
    fn loss_accounting_is_consistent() {
        let n = net();
        let report =
            ping_with_failover(&n, MY_AS, paper_destinations()[0], 3, &quick_policy()).unwrap();
        let implied = 1.0 - report.received() as f64 / report.probes.len() as f64;
        assert!((report.loss() - implied).abs() < 1e-12);
    }
}
