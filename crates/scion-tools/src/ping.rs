//! `scion ping` — SCMP echo with path control.
//!
//! Reproduces the invocation the paper's test-suite issues for every
//! path of every destination:
//!
//! ```text
//! scion ping {server_address} -c 30 --sequence '{hop_predicates}' --interval 0.1s
//! ```
//!
//! Path selection works in three modes, like the real tool: explicit
//! `--sequence` hop predicates, `--interactive` (choose from the listed
//! paths), or the default first path.

use crate::error::ToolError;
use crate::units::parse_duration_ms;
use scion_sim::addr::{IsdAsn, ScionAddr};
use scion_sim::dataplane::scmp::ProbeOptions;
use scion_sim::net::ScionNetwork;
use scion_sim::path::ScionPath;

/// How the path to the destination is chosen.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PathSelection {
    /// First (fewest-hop) available path.
    #[default]
    Default,
    /// `--sequence '<hop predicates>'`: exactly this path.
    Sequence(String),
    /// `--interactive` with the chosen index (the terminal prompt's
    /// answer; the list order matches `showpaths`).
    Interactive(usize),
    /// ACL path policy (SCION's pathpol language): the best path the
    /// policy allows, e.g. `"- 16-ffaa:0:1004, +"`.
    Policy(String),
}

/// Options of one `scion ping` run.
#[derive(Debug, Clone, PartialEq)]
pub struct PingOptions {
    /// `-c`: number of echo requests.
    pub count: u32,
    /// `--interval`: inter-probe gap in ms.
    pub interval_ms: f64,
    /// `--timeout` per probe, ms.
    pub timeout_ms: f64,
    pub selection: PathSelection,
}

impl Default for PingOptions {
    fn default() -> Self {
        PingOptions {
            count: 3,
            interval_ms: 1000.0,
            timeout_ms: 1000.0,
            selection: PathSelection::Default,
        }
    }
}

impl PingOptions {
    /// The paper's exact parameters: `-c 30 --interval 0.1s`.
    pub fn paper() -> PingOptions {
        PingOptions {
            count: 30,
            interval_ms: 100.0,
            ..PingOptions::default()
        }
    }

    /// Parse `--interval`-style strings (`0.1s`, `100ms`).
    pub fn with_interval_str(mut self, s: &str) -> Result<PingOptions, ToolError> {
        self.interval_ms = parse_duration_ms(s)?;
        Ok(self)
    }
}

/// Statistics block of a ping run (the tool's trailing summary).
#[derive(Debug, Clone, PartialEq)]
pub struct PingReport {
    pub destination: ScionAddr,
    /// The path actually used.
    pub path: ScionPath,
    pub sent: u32,
    pub received: u32,
    /// Loss percentage (0–100), as the CLI prints it.
    pub loss_pct: f64,
    pub min_ms: Option<f64>,
    pub avg_ms: Option<f64>,
    pub max_ms: Option<f64>,
    pub mdev_ms: Option<f64>,
}

impl PingReport {
    /// CLI-style rendering of the summary block.
    pub fn render(&self) -> String {
        let mut out = format!(
            "--- {} statistics ---\n{} packets transmitted, {} received, {:.0}% packet loss\n",
            self.destination, self.sent, self.received, self.loss_pct
        );
        if let (Some(min), Some(avg), Some(max), Some(mdev)) =
            (self.min_ms, self.avg_ms, self.max_ms, self.mdev_ms)
        {
            out.push_str(&format!(
                "rtt min/avg/max/mdev = {min:.3}/{avg:.3}/{max:.3}/{mdev:.3} ms\n"
            ));
        }
        out
    }
}

/// Resolve the path dictated by `selection` for `local -> dst`.
pub fn resolve_path(
    net: &ScionNetwork,
    local: IsdAsn,
    dst: IsdAsn,
    selection: &PathSelection,
) -> Result<ScionPath, ToolError> {
    match selection {
        PathSelection::Default => net
            .paths(local, dst, 1)
            .into_iter()
            .next()
            .ok_or_else(|| ToolError::NoPath(format!("no path to {dst}"))),
        PathSelection::Interactive(choice) => {
            let paths = net.paths(local, dst, usize::MAX);
            paths.into_iter().nth(*choice).ok_or_else(|| {
                ToolError::NoPath(format!("interactive choice {choice} out of range"))
            })
        }
        PathSelection::Sequence(seq) => {
            let bare = ScionPath::from_sequence(seq)?;
            if bare.src() != Some(local) || bare.dst() != Some(dst) {
                return Err(ToolError::Usage(format!(
                    "sequence endpoints do not match {local} -> {dst}"
                )));
            }
            net.authorize(&bare)
                .map_err(|_| ToolError::NoPath(format!("no path matching sequence '{seq}'")))
        }
        PathSelection::Policy(spec) => {
            let acl: scion_sim::policy::Acl =
                spec.parse().map_err(|e| ToolError::Usage(format!("{e}")))?;
            acl.filter(net.paths(local, dst, usize::MAX))
                .into_iter()
                .next()
                .ok_or_else(|| {
                    ToolError::NoPath(format!("policy {spec:?} allows no path to {dst}"))
                })
        }
    }
}

/// Run `scion ping` from a host in `local` to `destination`.
pub fn ping(
    net: &ScionNetwork,
    local: IsdAsn,
    destination: ScionAddr,
    options: &PingOptions,
) -> Result<PingReport, ToolError> {
    let path = resolve_path(net, local, destination.ia, &options.selection)?;
    let probe_opts = ProbeOptions {
        count: options.count,
        interval_ms: options.interval_ms,
        payload_bytes: 8,
        timeout_ms: options.timeout_ms,
    };
    let outcome = net.ping(&path, destination, &probe_opts)?;
    Ok(PingReport {
        destination,
        sent: outcome.sent,
        received: outcome.received(),
        loss_pct: outcome.loss() * 100.0,
        min_ms: outcome.min_rtt_ms(),
        avg_ms: outcome.avg_rtt_ms(),
        max_ms: outcome.max_rtt_ms(),
        mdev_ms: outcome.mdev_ms(),
        path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_sim::fault::ServerBehavior;
    use scion_sim::topology::scionlab::{paper_destinations, AWS_IRELAND, MY_AS};

    fn net() -> ScionNetwork {
        ScionNetwork::scionlab(11)
    }

    fn ireland() -> ScionAddr {
        paper_destinations()[1]
    }

    #[test]
    fn paper_invocation_works() {
        let n = net();
        let r = ping(&n, MY_AS, ireland(), &PingOptions::paper()).unwrap();
        assert_eq!(r.sent, 30);
        assert!(r.received >= 28);
        assert!(r.loss_pct < 10.0);
        assert!(r.min_ms.unwrap() <= r.avg_ms.unwrap());
        assert!(r.avg_ms.unwrap() <= r.max_ms.unwrap());
        assert_eq!(r.path.hop_count(), 6, "default = fewest hops");
    }

    #[test]
    fn interval_string_parses() {
        let o = PingOptions::paper().with_interval_str("0.1s").unwrap();
        assert_eq!(o.interval_ms, 100.0);
        assert!(PingOptions::paper().with_interval_str("zzz").is_err());
    }

    #[test]
    fn sequence_mode_pins_the_path() {
        let n = net();
        let all = n.paths(MY_AS, AWS_IRELAND, 40);
        let victim = all.last().unwrap();
        let opts = PingOptions {
            selection: PathSelection::Sequence(victim.sequence()),
            ..PingOptions::paper()
        };
        let r = ping(&n, MY_AS, ireland(), &opts).unwrap();
        assert!(r.path.same_route(victim));
    }

    #[test]
    fn sequence_endpoint_mismatch_is_usage_error() {
        let n = net();
        let all = n.paths(MY_AS, AWS_IRELAND, 1);
        let opts = PingOptions {
            selection: PathSelection::Sequence(all[0].sequence()),
            ..PingOptions::default()
        };
        // Ireland sequence used against the N. Virginia destination.
        let err = ping(&n, MY_AS, paper_destinations()[2], &opts);
        assert!(matches!(err, Err(ToolError::Usage(_))));
    }

    #[test]
    fn garbage_sequence_is_rejected() {
        let n = net();
        let opts = PingOptions {
            selection: PathSelection::Sequence("not a sequence".into()),
            ..PingOptions::default()
        };
        assert!(matches!(
            ping(&n, MY_AS, ireland(), &opts),
            Err(ToolError::Usage(_))
        ));
    }

    #[test]
    fn interactive_mode_selects_by_index() {
        let n = net();
        let all = n.paths(MY_AS, AWS_IRELAND, usize::MAX);
        let opts = PingOptions {
            selection: PathSelection::Interactive(3),
            count: 5,
            ..PingOptions::default()
        };
        let r = ping(&n, MY_AS, ireland(), &opts).unwrap();
        assert!(r.path.same_route(&all[3]));
        let out_of_range = PingOptions {
            selection: PathSelection::Interactive(10_000),
            ..PingOptions::default()
        };
        assert!(matches!(
            ping(&n, MY_AS, ireland(), &out_of_range),
            Err(ToolError::NoPath(_))
        ));
    }

    #[test]
    fn policy_mode_picks_best_allowed_path() {
        let n = net();
        // Deny the whole AWS ISD's detour ASes; the EU-only path wins.
        let opts = PingOptions {
            selection: PathSelection::Policy("- 16-ffaa:0:1004, - 16-ffaa:0:1007, - 18, +".into()),
            count: 5,
            ..PingOptions::default()
        };
        let r = ping(&n, MY_AS, ireland(), &opts).unwrap();
        assert!(!r.path.isd_set().contains(&18));
        assert!(!r
            .path
            .hops
            .iter()
            .any(|h| h.ia.to_string().contains("1004") || h.ia.to_string().contains("1007")));
        assert!(r.avg_ms.unwrap() < 60.0, "EU path expected");

        // A policy denying everything reports NoPath.
        let deny_all = PingOptions {
            selection: PathSelection::Policy("- 0".into()),
            ..PingOptions::default()
        };
        assert!(matches!(
            ping(&n, MY_AS, ireland(), &deny_all),
            Err(ToolError::NoPath(_))
        ));

        // A malformed policy is a usage error.
        let bad = PingOptions {
            selection: PathSelection::Policy("nope".into()),
            ..PingOptions::default()
        };
        assert!(matches!(
            ping(&n, MY_AS, ireland(), &bad),
            Err(ToolError::Usage(_))
        ));
    }

    #[test]
    fn down_server_shows_total_loss() {
        let n = net();
        n.set_server_behavior(ireland(), ServerBehavior::Down);
        let r = ping(&n, MY_AS, ireland(), &PingOptions::paper()).unwrap();
        assert_eq!(r.received, 0);
        assert_eq!(r.loss_pct, 100.0);
        assert_eq!(r.avg_ms, None);
        assert!(r.render().contains("100% packet loss"));
    }

    #[test]
    fn report_renders_statistics() {
        let n = net();
        let r = ping(&n, MY_AS, ireland(), &PingOptions::paper()).unwrap();
        let text = r.render();
        assert!(text.contains("30 packets transmitted"), "{text}");
        assert!(text.contains("rtt min/avg/max/mdev"), "{text}");
    }
}
