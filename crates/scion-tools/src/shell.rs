//! Command-line emulation: execute the literal command strings the
//! paper's Python scripts spawn as subprocesses.
//!
//! `collect_paths.py` and `run_test.py` build strings like
//!
//! ```text
//! scion showpaths 16-ffaa:0:1002 --extended -m 40
//! scion ping 16-ffaa:0:1002,[172.31.43.7] -c 30 --sequence '...' --interval 0.1s
//! scion-bwtestclient -s 19-ffaa:0:1303,[141.44.25.144] -cs 3,64,?,12Mbps
//! ```
//!
//! [`execute`] parses exactly these shapes (including single-quoted
//! arguments) and dispatches to the tool implementations, returning the
//! rendered stdout — so higher layers can be written against command
//! strings, like the original suite.

use crate::bwtester::bwtest;
use crate::error::ToolError;
use crate::ping::{ping, PathSelection, PingOptions};
use crate::showpaths::{showpaths, ShowpathsOptions};
use crate::traceroute::traceroute;
use scion_sim::addr::{HostAddr, IsdAsn, ScionAddr};
use scion_sim::net::ScionNetwork;

/// Split a command line into tokens, honoring single and double quotes
/// (the suite quotes hop-predicate sequences).
pub fn tokenize(line: &str) -> Result<Vec<String>, ToolError> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quote: Option<char> = None;
    let mut had_token = false;
    for ch in line.chars() {
        match quote {
            Some(q) => {
                if ch == q {
                    quote = None;
                } else {
                    cur.push(ch);
                }
            }
            None => match ch {
                '\'' | '"' => {
                    quote = Some(ch);
                    had_token = true;
                }
                c if c.is_whitespace() => {
                    if had_token || !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                        had_token = false;
                    }
                }
                c => {
                    cur.push(c);
                    had_token = true;
                }
            },
        }
    }
    if quote.is_some() {
        return Err(ToolError::Usage(format!("unterminated quote in {line:?}")));
    }
    if had_token || !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

/// Execute one SCION tool command line from a host in `local` (with
/// host address `local_host` for `scion address`). Returns the tool's
/// rendered output.
pub fn execute(
    net: &ScionNetwork,
    local: IsdAsn,
    local_host: HostAddr,
    line: &str,
) -> Result<String, ToolError> {
    let tokens = tokenize(line)?;
    let mut it = tokens.iter().map(String::as_str);
    let program = it
        .next()
        .ok_or_else(|| ToolError::Usage("empty command line".into()))?;
    let rest: Vec<&str> = it.collect();
    match program {
        "scion" => {
            let (sub, args) = rest
                .split_first()
                .ok_or_else(|| ToolError::Usage("scion: missing subcommand".into()))?;
            match *sub {
                "address" => Ok(crate::address::address(net, local, local_host)?.render() + "\n"),
                "showpaths" => exec_showpaths(net, local, args),
                "ping" => exec_ping(net, local, args),
                "traceroute" => exec_traceroute(net, local, args),
                other => Err(ToolError::Usage(format!(
                    "scion: unknown subcommand {other:?}"
                ))),
            }
        }
        "scion-bwtestclient" => exec_bwtest(net, local, &rest),
        other => Err(ToolError::Usage(format!("unknown program {other:?}"))),
    }
}

fn want_value<'a>(
    args: &mut std::slice::Iter<'a, &'a str>,
    flag: &str,
) -> Result<&'a str, ToolError> {
    args.next()
        .copied()
        .ok_or_else(|| ToolError::Usage(format!("{flag} expects a value")))
}

fn exec_showpaths(net: &ScionNetwork, local: IsdAsn, args: &[&str]) -> Result<String, ToolError> {
    let mut dst: Option<IsdAsn> = None;
    let mut opts = ShowpathsOptions::default();
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--extended" => opts.extended = true,
            "-m" | "--maxpaths" => {
                let v = want_value(&mut it, arg)?;
                opts.max_paths = v
                    .parse()
                    .map_err(|_| ToolError::Usage(format!("bad -m value {v:?}")))?;
            }
            a if !a.starts_with('-') && dst.is_none() => {
                dst = Some(a.parse()?);
            }
            other => return Err(ToolError::Usage(format!("showpaths: unexpected {other:?}"))),
        }
    }
    let dst = dst.ok_or_else(|| ToolError::Usage("showpaths: missing destination".into()))?;
    Ok(showpaths(net, local, dst, opts)?.render())
}

fn exec_ping(net: &ScionNetwork, local: IsdAsn, args: &[&str]) -> Result<String, ToolError> {
    let mut dst: Option<ScionAddr> = None;
    let mut opts = PingOptions::default();
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "-c" | "--count" => {
                let v = want_value(&mut it, arg)?;
                opts.count = v
                    .parse()
                    .map_err(|_| ToolError::Usage(format!("bad -c value {v:?}")))?;
            }
            "--interval" => {
                let v = want_value(&mut it, arg)?;
                opts = opts.with_interval_str(v)?;
            }
            "--timeout" => {
                let v = want_value(&mut it, arg)?;
                opts.timeout_ms = crate::units::parse_duration_ms(v)?;
            }
            "--sequence" => {
                opts.selection = PathSelection::Sequence(want_value(&mut it, arg)?.to_string());
            }
            "--policy" => {
                opts.selection = PathSelection::Policy(want_value(&mut it, arg)?.to_string());
            }
            "--interactive" => {
                // The scripted form of interactive mode supplies the
                // chosen index (a terminal would prompt).
                let v = want_value(&mut it, arg)?;
                opts.selection = PathSelection::Interactive(
                    v.parse()
                        .map_err(|_| ToolError::Usage(format!("bad --interactive index {v:?}")))?,
                );
            }
            a if !a.starts_with('-') && dst.is_none() => {
                dst = Some(a.parse()?);
            }
            other => return Err(ToolError::Usage(format!("ping: unexpected {other:?}"))),
        }
    }
    let dst = dst.ok_or_else(|| ToolError::Usage("ping: missing destination".into()))?;
    Ok(ping(net, local, dst, &opts)?.render())
}

fn exec_traceroute(net: &ScionNetwork, local: IsdAsn, args: &[&str]) -> Result<String, ToolError> {
    let mut dst: Option<IsdAsn> = None;
    let mut selection = PathSelection::Default;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--sequence" => {
                selection = PathSelection::Sequence(want_value(&mut it, arg)?.to_string());
            }
            a if !a.starts_with('-') && dst.is_none() => {
                // Accept both bare ISD-AS and full addresses.
                dst = Some(match a.parse::<ScionAddr>() {
                    Ok(addr) => addr.ia,
                    Err(_) => a.parse()?,
                });
            }
            other => {
                return Err(ToolError::Usage(format!(
                    "traceroute: unexpected {other:?}"
                )))
            }
        }
    }
    let dst = dst.ok_or_else(|| ToolError::Usage("traceroute: missing destination".into()))?;
    Ok(traceroute(net, local, dst, &selection)?.render())
}

fn exec_bwtest(net: &ScionNetwork, local: IsdAsn, args: &[&str]) -> Result<String, ToolError> {
    let mut server: Option<ScionAddr> = None;
    let mut cs: Option<String> = None;
    let mut sc: Option<String> = None;
    let mut selection = PathSelection::Default;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "-s" | "--server" => {
                server = Some(want_value(&mut it, arg)?.parse()?);
            }
            "-cs" => cs = Some(want_value(&mut it, arg)?.to_string()),
            "-sc" => sc = Some(want_value(&mut it, arg)?.to_string()),
            "--sequence" | "-sequence" => {
                selection = PathSelection::Sequence(want_value(&mut it, arg)?.to_string());
            }
            other => {
                return Err(ToolError::Usage(format!(
                    "bwtestclient: unexpected {other:?}"
                )))
            }
        }
    }
    let server =
        server.ok_or_else(|| ToolError::Usage("bwtestclient: missing -s server".into()))?;
    let cs = cs.unwrap_or_else(|| "3,1000,30,?".to_string());
    Ok(bwtest(net, local, server, &cs, sc.as_deref(), &selection)?.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_sim::topology::scionlab::MY_AS;

    fn net() -> ScionNetwork {
        ScionNetwork::scionlab(91)
    }

    fn host() -> HostAddr {
        HostAddr::new(10, 0, 2, 15)
    }

    #[test]
    fn tokenizer_handles_quotes() {
        assert_eq!(
            tokenize("scion ping x --sequence '17-ffaa:1:eaf#0,1 17-ffaa:0:1107#3,0'").unwrap(),
            vec![
                "scion",
                "ping",
                "x",
                "--sequence",
                "17-ffaa:1:eaf#0,1 17-ffaa:0:1107#3,0"
            ]
        );
        assert_eq!(tokenize("a \"b c\" d").unwrap(), vec!["a", "b c", "d"]);
        assert_eq!(tokenize("  ").unwrap(), Vec::<String>::new());
        assert_eq!(tokenize("a ''").unwrap(), vec!["a", ""]);
        assert!(tokenize("a 'b").is_err());
    }

    #[test]
    fn paper_showpaths_command_runs() {
        let out = execute(
            &net(),
            MY_AS,
            host(),
            "scion showpaths 16-ffaa:0:1002 --extended -m 40",
        )
        .unwrap();
        assert!(out.contains("Available paths to 16-ffaa:0:1002"), "{out}");
        assert!(out.contains("MTU:"), "{out}");
    }

    #[test]
    fn paper_ping_command_with_sequence_runs() {
        let n = net();
        let seq = n.paths(MY_AS, "16-ffaa:0:1002".parse().unwrap(), 1)[0].sequence();
        let line = format!(
            "scion ping 16-ffaa:0:1002,[172.31.43.7] -c 30 --sequence '{seq}' --interval 0.1s"
        );
        let out = execute(&n, MY_AS, host(), &line).unwrap();
        assert!(out.contains("30 packets transmitted"), "{out}");
    }

    #[test]
    fn paper_bwtest_command_runs() {
        let out = execute(
            &net(),
            MY_AS,
            host(),
            "scion-bwtestclient -s 19-ffaa:0:1303,[141.44.25.144] -cs 3,64,?,12Mbps",
        )
        .unwrap();
        assert!(out.contains("Achieved bandwidth"), "{out}");
    }

    #[test]
    fn address_and_traceroute_run() {
        let n = net();
        let out = execute(&n, MY_AS, host(), "scion address").unwrap();
        assert_eq!(out, "17-ffaa:1:eaf,10.0.2.15\n");
        let out = execute(&n, MY_AS, host(), "scion traceroute 16-ffaa:0:1002").unwrap();
        assert!(out.contains("17-ffaa:0:1107"), "{out}");
    }

    #[test]
    fn malformed_commands_are_usage_errors() {
        let n = net();
        for line in [
            "",
            "rm -rf /",
            "scion",
            "scion frobnicate",
            "scion showpaths",
            "scion showpaths 16-ffaa:0:1002 -m lots",
            "scion ping",
            "scion-bwtestclient -cs 3,64,?,12Mbps", // missing -s
        ] {
            assert!(
                matches!(execute(&n, MY_AS, host(), line), Err(ToolError::Usage(_))),
                "{line:?} should be a usage error"
            );
        }
    }

    #[test]
    fn interactive_scripted_index_selects_path() {
        let n = net();
        let out = execute(
            &n,
            MY_AS,
            host(),
            "scion ping 16-ffaa:0:1002,[172.31.43.7] -c 2 --interactive 3",
        )
        .unwrap();
        assert!(out.contains("2 packets transmitted"), "{out}");
    }
}
