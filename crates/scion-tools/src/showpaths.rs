//! `scion showpaths` — list available paths to a destination AS.
//!
//! Supports the two flags the paper's test-suite depends on: `-m` (raise
//! the 10-path default cap; the suite uses `-m 40`) and `--extended`
//! (per-path MTU, status and latency metadata).

use crate::error::ToolError;
use scion_sim::addr::IsdAsn;
use scion_sim::net::ScionNetwork;
use scion_sim::path::{PathStatus, ScionPath};

/// Options of one `showpaths` invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShowpathsOptions {
    /// `-m`: maximum number of paths to display (CLI default 10).
    pub max_paths: usize,
    /// `--extended`: include MTU / status / latency columns.
    pub extended: bool,
}

impl Default for ShowpathsOptions {
    fn default() -> Self {
        ShowpathsOptions {
            max_paths: 10,
            extended: false,
        }
    }
}

/// One listed path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathEntry {
    /// Display index (the `[N]` prefix in CLI output).
    pub index: usize,
    pub path: ScionPath,
}

/// Structured result of `showpaths`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShowpathsResult {
    pub local: IsdAsn,
    pub destination: IsdAsn,
    pub options: ShowpathsOptions,
    pub paths: Vec<PathEntry>,
}

impl ShowpathsResult {
    /// Number of alive paths.
    pub fn alive(&self) -> usize {
        self.paths
            .iter()
            .filter(|e| e.path.status == PathStatus::Alive)
            .count()
    }

    /// CLI-style text rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Available paths to {} ({} shown)\n",
            self.destination,
            self.paths.len()
        );
        for e in &self.paths {
            out.push_str(&format!("[{:>2}] {}", e.index, e.path));
            if self.options.extended {
                out.push_str(&format!(
                    " MTU: {} Latency: {:.2}ms Status: {} Hops: {}",
                    e.path.mtu,
                    e.path.expected_latency_ms,
                    e.path.status,
                    e.path.hop_count()
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// Run `scion showpaths <dst> [-m N] [--extended]` from `local`.
pub fn showpaths(
    net: &ScionNetwork,
    local: IsdAsn,
    destination: IsdAsn,
    options: ShowpathsOptions,
) -> Result<ShowpathsResult, ToolError> {
    if net.topology().index_of(destination).is_none() {
        return Err(ToolError::Usage(format!(
            "unknown destination {destination}"
        )));
    }
    if local == destination {
        return Err(ToolError::Usage("destination equals the local AS".into()));
    }
    let paths = net.paths(local, destination, options.max_paths);
    Ok(ShowpathsResult {
        local,
        destination,
        options,
        paths: paths
            .into_iter()
            .enumerate()
            .map(|(index, path)| PathEntry { index, path })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_sim::fault::ServerBehavior;
    use scion_sim::topology::scionlab::{paper_destinations, AWS_IRELAND, MY_AS};

    fn net() -> ScionNetwork {
        ScionNetwork::scionlab(3)
    }

    #[test]
    fn default_caps_at_ten() {
        let r = showpaths(&net(), MY_AS, AWS_IRELAND, ShowpathsOptions::default()).unwrap();
        assert_eq!(r.paths.len(), 10);
        // Ranked by hop count.
        for w in r.paths.windows(2) {
            assert!(w[0].path.hop_count() <= w[1].path.hop_count());
        }
    }

    #[test]
    fn dash_m_raises_cap() {
        let opts = ShowpathsOptions {
            max_paths: 40,
            extended: true,
        };
        let r = showpaths(&net(), MY_AS, AWS_IRELAND, opts).unwrap();
        assert!(r.paths.len() > 10, "got {}", r.paths.len());
        assert_eq!(r.alive(), r.paths.len());
    }

    #[test]
    fn extended_render_includes_metadata() {
        let opts = ShowpathsOptions {
            max_paths: 3,
            extended: true,
        };
        let r = showpaths(&net(), MY_AS, AWS_IRELAND, opts).unwrap();
        let text = r.render();
        assert!(text.contains("MTU: 1472"), "{text}");
        assert!(text.contains("Status: alive"), "{text}");
        assert!(text.contains("Latency:"), "{text}");
    }

    #[test]
    fn plain_render_omits_metadata() {
        let r = showpaths(&net(), MY_AS, AWS_IRELAND, ShowpathsOptions::default()).unwrap();
        assert!(!r.render().contains("MTU"));
    }

    #[test]
    fn unknown_destination_rejected() {
        let bogus: IsdAsn = "99-ffaa:0:1".parse().unwrap();
        assert!(matches!(
            showpaths(&net(), MY_AS, bogus, ShowpathsOptions::default()),
            Err(ToolError::Usage(_))
        ));
    }

    #[test]
    fn self_destination_rejected() {
        assert!(matches!(
            showpaths(&net(), MY_AS, MY_AS, ShowpathsOptions::default()),
            Err(ToolError::Usage(_))
        ));
    }

    #[test]
    fn server_state_does_not_change_path_status() {
        // Path liveness is about links/routers, not application servers.
        let n = net();
        n.set_server_behavior(paper_destinations()[1], ServerBehavior::Down);
        let r = showpaths(&n, MY_AS, AWS_IRELAND, ShowpathsOptions::default()).unwrap();
        assert_eq!(r.alive(), r.paths.len());
    }
}
