//! `scion traceroute` — per-hop RTTs along a chosen path, "particularly
//! useful to test how the latency is affected by each link" (§3.3).

use crate::error::ToolError;
use crate::ping::{resolve_path, PathSelection};
use scion_sim::addr::IsdAsn;
use scion_sim::net::ScionNetwork;
use scion_sim::path::ScionPath;

/// One row of traceroute output.
#[derive(Debug, Clone, PartialEq)]
pub struct TracerouteHop {
    pub index: usize,
    pub ia: IsdAsn,
    /// RTT to this border router; `None` renders as `*`.
    pub rtt_ms: Option<f64>,
}

/// Structured traceroute result.
#[derive(Debug, Clone, PartialEq)]
pub struct TracerouteReport {
    pub path: ScionPath,
    pub hops: Vec<TracerouteHop>,
}

impl TracerouteReport {
    /// Largest RTT increase between consecutive answering hops — the
    /// "which link hurts" readout the paper uses traceroute for.
    pub fn max_hop_delta_ms(&self) -> Option<(IsdAsn, f64)> {
        let mut best: Option<(IsdAsn, f64)> = None;
        let mut prev = 0.0;
        for hop in &self.hops {
            let Some(rtt) = hop.rtt_ms else { continue };
            let delta = rtt - prev;
            prev = rtt;
            if best.as_ref().is_none_or(|(_, d)| delta > *d) {
                best = Some((hop.ia, delta));
            }
        }
        best
    }

    /// CLI-style rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for hop in &self.hops {
            match hop.rtt_ms {
                Some(rtt) => out.push_str(&format!("{:>2} {} {:.3}ms\n", hop.index, hop.ia, rtt)),
                None => out.push_str(&format!("{:>2} {} *\n", hop.index, hop.ia)),
            }
        }
        out
    }
}

/// Run `scion traceroute` from `local` to `dst` over the selected path.
pub fn traceroute(
    net: &ScionNetwork,
    local: IsdAsn,
    dst: IsdAsn,
    selection: &PathSelection,
) -> Result<TracerouteReport, ToolError> {
    let path = resolve_path(net, local, dst, selection)?;
    let hops = net.traceroute(&path)?;
    Ok(TracerouteReport {
        path,
        hops: hops
            .into_iter()
            .enumerate()
            .map(|(index, h)| TracerouteHop {
                index,
                ia: h.ia,
                rtt_ms: h.rtt_ms,
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_sim::topology::scionlab::{AWS_IRELAND, AWS_SINGAPORE, MY_AS};

    fn net() -> ScionNetwork {
        ScionNetwork::scionlab(21)
    }

    #[test]
    fn traces_every_hop_in_order() {
        let n = net();
        let r = traceroute(&n, MY_AS, AWS_IRELAND, &PathSelection::Default).unwrap();
        assert_eq!(r.hops.len(), r.path.hop_count());
        assert_eq!(r.hops[0].ia, MY_AS);
        assert_eq!(r.hops.last().unwrap().ia, AWS_IRELAND);
        // RTTs are (noisily) non-decreasing along the path; check the
        // endpoints which differ by tens of ms.
        let first = r.hops[1].rtt_ms.unwrap();
        let last = r.hops.last().unwrap().rtt_ms.unwrap();
        assert!(last > first);
    }

    #[test]
    fn long_haul_link_dominates_delta() {
        let n = net();
        // Pick a Singapore-detour path to Ireland.
        let paths = n.paths(MY_AS, AWS_IRELAND, 40);
        let sg = paths
            .iter()
            .find(|p| p.hops.iter().any(|h| h.ia == AWS_SINGAPORE))
            .unwrap();
        let r = traceroute(
            &n,
            MY_AS,
            AWS_IRELAND,
            &PathSelection::Sequence(sg.sequence()),
        )
        .unwrap();
        let (worst_ia, delta) = r.max_hop_delta_ms().unwrap();
        // The biggest jump is entering or leaving Singapore.
        assert!(
            worst_ia == AWS_SINGAPORE || worst_ia == AWS_IRELAND,
            "worst {worst_ia} delta {delta}"
        );
        assert!(delta > 80.0, "delta {delta}");
    }

    #[test]
    fn renders_rows() {
        let n = net();
        let r = traceroute(&n, MY_AS, AWS_IRELAND, &PathSelection::Default).unwrap();
        let text = r.render();
        assert!(text.lines().count() == r.hops.len());
        assert!(text.contains("17-ffaa:0:1107"), "{text}");
    }
}
