//! Parsing of the unit-suffixed values the SCION CLI tools accept:
//! durations (`0.1s`, `500ms`) and bandwidths (`12Mbps`, `150Mbps`).

use std::fmt;

/// Errors from unit parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitError(pub String);

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid value: {}", self.0)
    }
}

impl std::error::Error for UnitError {}

/// Parse a duration like `0.1s`, `100ms`, `2m` into milliseconds.
/// A bare number is interpreted as seconds, matching the Go tools.
pub fn parse_duration_ms(s: &str) -> Result<f64, UnitError> {
    let s = s.trim();
    let (num, factor) = if let Some(v) = s.strip_suffix("ms") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1000.0)
    } else if let Some(v) = s.strip_suffix('m') {
        (v, 60_000.0)
    } else {
        (s, 1000.0)
    };
    let v: f64 = num.trim().parse().map_err(|_| UnitError(s.to_string()))?;
    if !v.is_finite() || v < 0.0 {
        return Err(UnitError(s.to_string()));
    }
    Ok(v * factor)
}

/// Parse a bandwidth like `12Mbps`, `1500kbps`, `1Gbps`, or a bare
/// bits-per-second count, into Mbps.
pub fn parse_bandwidth_mbps(s: &str) -> Result<f64, UnitError> {
    let t = s.trim();
    let lower = t.to_ascii_lowercase();
    let (num, factor) = if let Some(v) = lower.strip_suffix("gbps") {
        (v.to_string(), 1000.0)
    } else if let Some(v) = lower.strip_suffix("mbps") {
        (v.to_string(), 1.0)
    } else if let Some(v) = lower.strip_suffix("kbps") {
        (v.to_string(), 0.001)
    } else if let Some(v) = lower.strip_suffix("bps") {
        (v.to_string(), 1e-6)
    } else {
        (lower.clone(), 1e-6)
    };
    let v: f64 = num.trim().parse().map_err(|_| UnitError(s.to_string()))?;
    if !v.is_finite() || v < 0.0 {
        return Err(UnitError(s.to_string()));
    }
    Ok(v * factor)
}

/// Render a bandwidth in the `NMbps` form the tools print.
pub fn format_bandwidth_mbps(mbps: f64) -> String {
    if mbps >= 1000.0 {
        format!("{:.2}Gbps", mbps / 1000.0)
    } else if mbps >= 1.0 {
        format!("{mbps:.2}Mbps")
    } else {
        format!("{:.0}kbps", mbps * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations() {
        assert_eq!(parse_duration_ms("0.1s").unwrap(), 100.0);
        assert_eq!(parse_duration_ms("100ms").unwrap(), 100.0);
        assert_eq!(parse_duration_ms("2m").unwrap(), 120_000.0);
        assert_eq!(parse_duration_ms("3").unwrap(), 3000.0);
        assert!(parse_duration_ms("abc").is_err());
        assert!(parse_duration_ms("-1s").is_err());
    }

    #[test]
    fn bandwidths() {
        assert_eq!(parse_bandwidth_mbps("12Mbps").unwrap(), 12.0);
        assert_eq!(parse_bandwidth_mbps("150Mbps").unwrap(), 150.0);
        assert_eq!(parse_bandwidth_mbps("1Gbps").unwrap(), 1000.0);
        assert_eq!(parse_bandwidth_mbps("500kbps").unwrap(), 0.5);
        assert_eq!(parse_bandwidth_mbps("1000000").unwrap(), 1.0);
        assert!(parse_bandwidth_mbps("12Mbs").is_err());
        assert!((parse_bandwidth_mbps("12mbps").unwrap() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_formatting() {
        assert_eq!(format_bandwidth_mbps(12.0), "12.00Mbps");
        assert_eq!(format_bandwidth_mbps(1500.0), "1.50Gbps");
        assert_eq!(format_bandwidth_mbps(0.5), "500kbps");
    }
}
