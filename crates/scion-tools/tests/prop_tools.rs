//! Property-based tests of the tool layer: bwtester parameter algebra
//! and unit parsing.

use proptest::prelude::*;
use scion_tools::bwtester::BwParams;
use scion_tools::units::{format_bandwidth_mbps, parse_bandwidth_mbps, parse_duration_ms};

proptest! {
    /// The `?` wildcard solves the bandwidth identity: for any
    /// (duration, size, bandwidth), the inferred packet count satisfies
    /// `bandwidth ≈ size × 8 × count / duration` to rounding error.
    #[test]
    fn count_wildcard_satisfies_identity(
        duration in 1u32..=10,
        size in 4u32..1473,
        mbps in 1u32..500,
    ) {
        let spec = format!("{},{},?,{}Mbps", duration, size, mbps);
        let p = BwParams::parse(&spec).unwrap();
        let implied = p.packet_bytes as f64 * 8.0 * p.num_packets as f64
            / p.duration_s / 1e6;
        let err = (implied - mbps as f64).abs() / mbps as f64;
        prop_assert!(err < 0.01, "{spec}: implied {implied}");
        prop_assert_eq!(p.num_packets, p.flow().num_packets());
    }

    /// A fully-specified tuple derived from a solved one always passes
    /// the consistency check.
    #[test]
    fn solved_tuple_is_self_consistent(
        duration in 1u32..=10,
        size in 4u32..1473,
        mbps in 1u32..500,
    ) {
        let p = BwParams::parse(&format!("{},{},?,{}Mbps", duration, size, mbps)).unwrap();
        let full = format!(
            "{},{},{},{}Mbps",
            p.duration_s, p.packet_bytes, p.num_packets, p.target_mbps
        );
        let q = BwParams::parse(&full).unwrap();
        prop_assert_eq!(p, q);
    }

    /// The bandwidth wildcard inverts the count wildcard.
    #[test]
    fn bandwidth_wildcard_inverts(
        duration in 1u32..=10,
        size in 4u32..1473,
        count in 1u64..1_000_000,
    ) {
        let spec = format!("{},{},{},?", duration, size, count);
        let p = BwParams::parse(&spec).unwrap();
        let expect = size as f64 * 8.0 * count as f64 / duration as f64 / 1e6;
        prop_assert!((p.target_mbps - expect).abs() < 1e-9);
    }

    /// Limits always reject: any duration > 10 s or size < 4 B fails.
    #[test]
    fn limits_enforced(duration in 11u32..100, size in 0u32..4) {
        let long = BwParams::parse(&format!("{},100,?,10Mbps", duration));
        let tiny = BwParams::parse(&format!("3,{},?,10Mbps", size));
        prop_assert!(long.is_err(), "duration over the cap must fail");
        prop_assert!(tiny.is_err(), "packet size under the floor must fail");
    }

    #[test]
    fn bandwidth_format_parse_roundtrip(mbps in 0.001..5000.0f64) {
        let s = format_bandwidth_mbps(mbps);
        let back = parse_bandwidth_mbps(&s).unwrap();
        // Rendering rounds to 2 decimals (or whole kbps).
        prop_assert!((back - mbps).abs() / mbps < 0.02, "{mbps} -> {s} -> {back}");
    }

    #[test]
    fn duration_parse_units_consistent(ms in 1u32..1_000_000) {
        let from_ms = parse_duration_ms(&format!("{}ms", ms)).unwrap();
        prop_assert_eq!(from_ms, ms as f64);
        let from_s = parse_duration_ms(&format!("{}s", ms as f64 / 1000.0)).unwrap();
        prop_assert!((from_s - ms as f64).abs() < 1e-6);
    }
}
