//! Deterministic JSON export, the matching parser, and the
//! `report telemetry` summary table.
//!
//! The writer is hand-rolled (this crate has no dependencies) with a
//! fixed layout: sorted keys, two-space indentation, shortest-roundtrip
//! float rendering via `{:?}`, trailing newline. Two exports of equal
//! registries are byte-identical — that is the contract the CI
//! `telemetry-smoke` job diffs against.

use std::collections::BTreeMap;
use std::fmt;

use crate::metrics::HistogramSummary;

/// Writer primitives shared with the trace exporter.
pub(crate) mod json {
    /// JSON string literal with escaping.
    pub fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Shortest-roundtrip float; non-finite values become `null`.
    pub fn write_f64_or_null(out: &mut String, v: f64) {
        if v.is_finite() {
            out.push_str(&format!("{v:?}"));
        } else {
            out.push_str("null");
        }
    }
}

/// A parsed (or about-to-be-written) metrics export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDoc {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsDoc {
    /// Serialize with the fixed deterministic layout.
    pub fn to_json(&self) -> String {
        use json::{write_f64_or_null, write_str};
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_str(&mut out, k);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_str(&mut out, k);
            out.push_str(": ");
            write_f64_or_null(&mut out, *v);
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_str(&mut out, k);
            out.push_str(": {\n");
            out.push_str("      \"count\": ");
            out.push_str(&h.count.to_string());
            out.push_str(",\n      \"sum\": ");
            write_f64_or_null(&mut out, h.sum);
            out.push_str(",\n      \"min\": ");
            write_f64_or_null(&mut out, h.min);
            out.push_str(",\n      \"max\": ");
            write_f64_or_null(&mut out, h.max);
            out.push_str(",\n      \"p50\": ");
            write_f64_or_null(&mut out, h.p50);
            out.push_str(",\n      \"p95\": ");
            write_f64_or_null(&mut out, h.p95);
            out.push_str(",\n      \"p99\": ");
            write_f64_or_null(&mut out, h.p99);
            out.push_str(",\n      \"buckets\": [");
            for (j, (lo, hi, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                write_f64_or_null(&mut out, *lo);
                out.push_str(", ");
                write_f64_or_null(&mut out, *hi);
                out.push_str(", ");
                out.push_str(&c.to_string());
                out.push(']');
            }
            out.push_str("]\n    }");
        }
        out.push_str(if self.histograms.is_empty() {
            "}\n}\n"
        } else {
            "\n  }\n}\n"
        });
        out
    }

    /// Parse an export produced by [`MetricsDoc::to_json`] (any valid
    /// JSON with the same shape is accepted).
    pub fn parse(text: &str) -> Result<MetricsDoc, ParseError> {
        let value = Parser::new(text).parse_document()?;
        let top = value.as_obj("top-level")?;
        let mut doc = MetricsDoc::default();
        for (key, v) in top {
            match key.as_str() {
                "counters" => {
                    for (name, n) in v.as_obj("counters")? {
                        doc.counters.insert(name.clone(), n.as_u64(name)?);
                    }
                }
                "gauges" => {
                    for (name, n) in v.as_obj("gauges")? {
                        doc.gauges.insert(name.clone(), n.as_f64(name)?);
                    }
                }
                "histograms" => {
                    for (name, h) in v.as_obj("histograms")? {
                        let fields = h.as_obj(name)?;
                        let mut s = HistogramSummary::default();
                        for (f, fv) in fields {
                            match f.as_str() {
                                "count" => s.count = fv.as_u64(f)?,
                                "sum" => s.sum = fv.as_f64(f)?,
                                "min" => s.min = fv.as_f64(f)?,
                                "max" => s.max = fv.as_f64(f)?,
                                "p50" => s.p50 = fv.as_f64(f)?,
                                "p95" => s.p95 = fv.as_f64(f)?,
                                "p99" => s.p99 = fv.as_f64(f)?,
                                "buckets" => {
                                    for b in fv.as_arr(f)? {
                                        let triple = b.as_arr("bucket")?;
                                        if triple.len() != 3 {
                                            return Err(ParseError::shape(
                                                "bucket is not a [lo, hi, count] triple",
                                            ));
                                        }
                                        s.buckets.push((
                                            triple[0].as_f64("bucket lo")?,
                                            triple[1].as_f64("bucket hi")?,
                                            triple[2].as_u64("bucket count")?,
                                        ));
                                    }
                                }
                                _ => {}
                            }
                        }
                        doc.histograms.insert(name.clone(), s);
                    }
                }
                _ => {}
            }
        }
        Ok(doc)
    }

    /// Human-readable summary table for `report telemetry`.
    pub fn render_table(&self) -> String {
        let mut out = String::from("telemetry summary\n");
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            out.push_str("  (no metrics recorded)\n");
            return out;
        }
        let name_w = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(4)
            .max(4);
        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<name_w$}  {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<name_w$}  {v:>12.3}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\nhistograms\n");
            out.push_str(&format!(
                "  {:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                "name", "count", "p50", "p95", "p99", "max"
            ));
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {:<name_w$}  {:>8}  {:>10.2}  {:>10.2}  {:>10.2}  {:>10.2}\n",
                    k, h.count, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        out
    }
}

/// Error from [`MetricsDoc::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    msg: String,
}

impl ParseError {
    fn shape(msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metrics parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

// ---- a minimal JSON reader (numbers, strings, arrays, objects) -------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], ParseError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            _ => Err(ParseError {
                msg: format!("{what}: expected an object"),
            }),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], ParseError> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(ParseError {
                msg: format!("{what}: expected an array"),
            }),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, ParseError> {
        match self {
            Json::Num(n) => Ok(*n),
            Json::Null => Ok(f64::NAN),
            _ => Err(ParseError {
                msg: format!("{what}: expected a number"),
            }),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, ParseError> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
            _ => Err(ParseError {
                msg: format!("{what}: expected a non-negative integer"),
            }),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Json, ParseError> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(ParseError::shape("trailing data after document"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: format!("{msg} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':', "expected ':'")?;
            let v = self.value()?;
            fields.push((key, v));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsDoc {
        let mut doc = MetricsDoc::default();
        doc.counters.insert("a.count".into(), 7);
        doc.counters.insert("z".into(), 0);
        doc.gauges.insert("g\"quoted\"".into(), -1.25);
        doc.histograms.insert(
            "h_ms".into(),
            HistogramSummary {
                count: 3,
                sum: 6.5,
                min: 1.0,
                max: 4.0,
                p50: 1.5,
                p95: 4.0,
                p99: 4.0,
                buckets: vec![(0.0, 1.0, 1), (1.0, 2.0, 1), (2.0, 4.0, 1)],
            },
        );
        doc
    }

    #[test]
    fn roundtrip_is_lossless() {
        let doc = sample();
        let json = doc.to_json();
        let back = MetricsDoc::parse(&json).unwrap();
        assert_eq!(doc, back);
        // And stable: serializing the parse is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn empty_doc_roundtrips() {
        let doc = MetricsDoc::default();
        let back = MetricsDoc::parse(&doc.to_json()).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn export_is_sorted_and_terminated() {
        let json = sample().to_json();
        assert!(json.ends_with('\n'));
        let a = json.find("a.count").unwrap();
        let z = json.find("\"z\"").unwrap();
        assert!(a < z, "counters must be sorted");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MetricsDoc::parse("not json").is_err());
        assert!(MetricsDoc::parse("{\"counters\": 5}").is_err());
        assert!(MetricsDoc::parse("{} trailing").is_err());
        assert!(MetricsDoc::parse("{\"counters\": {\"x\": -1}}").is_err());
    }

    #[test]
    fn table_lists_every_metric() {
        let table = sample().render_table();
        assert!(table.contains("a.count"));
        assert!(table.contains("h_ms"));
        assert!(table.contains("p95"));
        let empty = MetricsDoc::default().render_table();
        assert!(empty.contains("no metrics"));
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let mut doc = MetricsDoc::default();
        doc.counters.insert("hop.17-ffaa:1:c3é\t".into(), 2);
        let back = MetricsDoc::parse(&doc.to_json()).unwrap();
        assert_eq!(doc, back);
    }
}
