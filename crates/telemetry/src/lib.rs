//! Telemetry for the UPIN stack: spans, metrics and deterministic export.
//!
//! Every layer of the workspace — the campaign runner, the path database
//! planner and WAL, the selection caches, the network simulator — records
//! into a [`Recorder`]. The trait's default methods are empty, so code
//! instrumented against the bundled [`NoopRecorder`] compiles down to a
//! virtual call that immediately returns; the overhead budget is ≤3% on
//! the campaign hot path (pinned by `tests/telemetry.rs` in the root
//! crate).
//!
//! Three design rules keep exports reproducible:
//!
//! 1. **The caller owns the clock.** This crate never reads wall time;
//!    every `span_start`/`span_end`/`event` carries a timestamp supplied
//!    by the caller, which on the measurement path is the *simulated*
//!    network clock. Same seed → same clock values → same export.
//! 2. **Deterministic aggregation.** All maps are `BTreeMap`s, ids are
//!    sequential, and floating-point observations (histograms, gauges)
//!    must be recorded from a deterministic call order — in practice the
//!    campaign runner records them from the commit thread in destination
//!    order, while worker threads only bump `u64` counters (commutative).
//! 3. **Wall-clock metrics are quarantined by name.** Real I/O timings
//!    (WAL fsync, checkpoint, recovery) are genuinely nondeterministic;
//!    they are recorded under the reserved `wall.` prefix so consumers
//!    can tell at a glance which part of an export is reproducible. They
//!    only appear at all when a run touches disk.
//!
//! [`Telemetry`] is the collecting implementation: it aggregates metrics,
//! keeps the span tree, and exports `metrics_json()` / `trace_json()` —
//! byte-identical across same-seed runs. [`MetricsDoc`] parses an export
//! back and renders the `report telemetry` summary table.
//!
//! ```
//! use upin_telemetry::{AttrValue, Recorder, SpanId, Telemetry};
//!
//! let t = Telemetry::new();
//! let root = t.span_start("campaign", SpanId::NONE, 0.0, &[]);
//! let dest = t.span_start("destination", root, 0.0, &[("server", AttrValue::I64(3))]);
//! t.add("campaign.measurements", 12);
//! t.observe("campaign.destination_ms", 41.5);
//! t.span_end(dest, 41.5);
//! t.span_end(root, 50.0);
//! let json = t.metrics_json();
//! let doc = upin_telemetry::MetricsDoc::parse(&json).unwrap();
//! assert_eq!(doc.counters["campaign.measurements"], 12);
//! ```

mod export;
mod metrics;
mod recorder;
mod span;
mod telemetry;

pub use export::{MetricsDoc, ParseError};
pub use metrics::{Histogram, HistogramSummary};
pub use recorder::{noop, AttrValue, NoopRecorder, Recorder, SpanId};
pub use span::{EventRecord, OwnedAttr, SpanRecord};
pub use telemetry::Telemetry;

/// Render a labeled metric name: `with_label("hist", "server", "3")` →
/// `"hist{server=3}"`. Per-destination series use this so the flat
/// metric namespace still carries structure.
pub fn with_label(base: &str, key: &str, value: &str) -> String {
    let mut s = String::with_capacity(base.len() + key.len() + value.len() + 3);
    s.push_str(base);
    s.push('{');
    s.push_str(key);
    s.push('=');
    s.push_str(value);
    s.push('}');
    s
}

/// Prefix marking metrics derived from the host's wall clock (real I/O
/// timings). Everything *not* under this prefix is reproducible for a
/// given seed.
pub const WALL_PREFIX: &str = "wall.";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_label_formats() {
        assert_eq!(with_label("a.b_ms", "server", "17"), "a.b_ms{server=17}");
    }
}
