//! Log-bucketed histograms.
//!
//! Observations are mapped to power-of-two buckets over fixed-point
//! units of 1/1024 (so the sub-millisecond range still has resolution
//! when values are milliseconds). Bucketing is pure integer arithmetic —
//! `leading_zeros` on a `u64` — which keeps the layout identical across
//! runs and platforms. Quantiles are estimated by linear interpolation
//! inside the covering bucket, clamped to the observed `[min, max]`.

use std::collections::BTreeMap;

/// Fixed-point scale: one bucket unit is 1/1024 of the observed value's
/// unit (e.g. ~1 µs when observations are in ms).
const SCALE: f64 = 1024.0;

/// A log-bucketed histogram with exact count/sum/min/max.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// bucket index → observation count; index 0 holds values < 1 unit,
    /// index `k` (k ≥ 1) holds units in `[2^(k-1), 2^k)`.
    buckets: BTreeMap<u32, u64>,
}

fn bucket_of(value: f64) -> u32 {
    let units = (value * SCALE).max(0.0);
    // Saturate absurd values rather than wrapping.
    let units = if units >= u64::MAX as f64 {
        u64::MAX
    } else {
        units as u64
    };
    64 - units.leading_zeros()
}

fn bucket_lo(k: u32) -> f64 {
    if k == 0 {
        0.0
    } else {
        2f64.powi(k as i32 - 1) / SCALE
    }
}

fn bucket_hi(k: u32) -> f64 {
    2f64.powi(k as i32) / SCALE
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            if value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
        }
        self.count += 1;
        self.sum += value;
        *self.buckets.entry(bucket_of(value)).or_insert(0) += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the buckets.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the observation the quantile falls on.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&k, &c) in &self.buckets {
            if seen + c >= target {
                let lo = bucket_lo(k);
                let hi = bucket_hi(k);
                let frac = (target - seen) as f64 / c as f64;
                return (lo + (hi - lo) * frac).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn bucket_bounds(&self) -> Vec<(f64, f64, u64)> {
        self.buckets
            .iter()
            .map(|(&k, &c)| (bucket_lo(k), bucket_hi(k), c))
            .collect()
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: self.bucket_bounds(),
        }
    }
}

/// The exported view of a [`Histogram`]: exact count/sum/min/max,
/// bucket-estimated p50/p95/p99, and the raw buckets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub buckets: Vec<(f64, f64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn single_value_quantiles_collapse() {
        let mut h = Histogram::new();
        h.observe(42.0);
        assert_eq!(h.quantile(0.0), 42.0);
        assert_eq!(h.quantile(0.5), 42.0);
        assert_eq!(h.quantile(1.0), 42.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 42.0);
    }

    #[test]
    fn buckets_are_log_spaced_and_cover() {
        let mut h = Histogram::new();
        for v in [0.0001, 0.5, 1.0, 3.0, 900.0, 50_000.0] {
            h.observe(v);
        }
        let bounds = h.bucket_bounds();
        assert_eq!(bounds.iter().map(|b| b.2).sum::<u64>(), 6);
        for (lo, hi, _) in &bounds {
            assert!(lo < hi);
        }
        // Ascending, non-overlapping.
        for w in bounds.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-12);
        }
    }

    #[test]
    fn quantiles_are_order_of_magnitude_right() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        // Log buckets give up to 2x error; accept that envelope.
        assert!((250.0..=1000.0).contains(&p50), "p50={p50}");
        assert!((475.0..=1000.0).contains(&p95), "p95={p95}");
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn negative_and_nonfinite_values_are_safe() {
        let mut h = Histogram::new();
        h.observe(-5.0); // clamped into the zero bucket
        h.observe(f64::NAN); // dropped
        h.observe(f64::INFINITY); // dropped
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), -5.0);
        assert!(h.quantile(0.5) <= 0.0);
    }

    #[test]
    fn huge_values_saturate() {
        let mut h = Histogram::new();
        h.observe(1e300);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), 1e300); // clamped to max
    }
}
