//! The [`Recorder`] trait and its no-op default implementation.

use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identifier of a span within one recorder. `SpanId::NONE` (0) means
/// "no span" — it is both the parent of root spans and the id the no-op
/// recorder hands back for everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);

    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A borrowed attribute value. Attributes are only materialized (cloned
/// to owned storage) by recorders that actually collect, so building the
/// `&[(&str, AttrValue)]` slice on the caller's stack costs nothing when
/// the no-op recorder is installed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue<'a> {
    I64(i64),
    F64(f64),
    Str(&'a str),
}

/// Sink for telemetry signals. Every method has an empty default body,
/// so `impl Recorder for NoopRecorder {}` is the entire disabled path:
/// one dynamic dispatch per call site and no other work.
///
/// Callers supply all timestamps (`*_ms`) — the trait has no clock. On
/// the measurement path they come from the simulated network clock,
/// which is what makes same-seed exports byte-identical.
///
/// `Debug` is a supertrait so instrumented structs can keep deriving
/// `Debug` while holding an `Arc<dyn Recorder>`.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// `true` when signals are actually collected. Call sites may use
    /// this to skip *building* expensive attributes; they should not
    /// need it for plain counter bumps.
    fn enabled(&self) -> bool {
        false
    }

    /// Add `delta` to the named monotonic counter.
    fn add(&self, _counter: &str, _delta: u64) {}

    /// Set the named gauge to `value` (last write wins).
    fn gauge(&self, _name: &str, _value: f64) {}

    /// Record one observation into the named log-bucketed histogram.
    fn observe(&self, _hist: &str, _value: f64) {}

    /// Open a span. `parent` is `SpanId::NONE` for roots.
    fn span_start(
        &self,
        _name: &str,
        _parent: SpanId,
        _start_ms: f64,
        _attrs: &[(&str, AttrValue<'_>)],
    ) -> SpanId {
        SpanId::NONE
    }

    /// Close a span opened by [`Recorder::span_start`].
    fn span_end(&self, _id: SpanId, _end_ms: f64) {}

    /// Record a point-in-time event, optionally attached to a span.
    fn event(&self, _span: SpanId, _name: &str, _at_ms: f64, _attrs: &[(&str, AttrValue<'_>)]) {}
}

/// The disabled recorder: every method inherits the empty default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// The shared no-op recorder instance. Structs that hold an
/// `Arc<dyn Recorder>` default to this, so "telemetry off" allocates
/// nothing per object.
pub fn noop() -> Arc<dyn Recorder> {
    static NOOP: OnceLock<Arc<NoopRecorder>> = OnceLock::new();
    NOOP.get_or_init(|| Arc::new(NoopRecorder)).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_inert() {
        let r = noop();
        assert!(!r.enabled());
        let id = r.span_start("x", SpanId::NONE, 1.0, &[("k", AttrValue::I64(1))]);
        assert!(id.is_none());
        r.span_end(id, 2.0);
        r.add("c", 1);
        r.gauge("g", 0.5);
        r.observe("h", 3.0);
        r.event(SpanId::NONE, "e", 1.0, &[]);
    }

    #[test]
    fn noop_is_shared() {
        let a = noop();
        let b = noop();
        assert!(Arc::ptr_eq(&a, &b) || !a.enabled()); // same instance either way
    }
}
