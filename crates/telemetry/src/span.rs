//! Owned span and event records kept by the collecting recorder.

use crate::recorder::{AttrValue, SpanId};

/// An attribute value materialized into owned storage.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedAttr {
    I64(i64),
    F64(f64),
    Str(String),
}

impl OwnedAttr {
    pub fn from_borrowed(v: &AttrValue<'_>) -> OwnedAttr {
        match v {
            AttrValue::I64(i) => OwnedAttr::I64(*i),
            AttrValue::F64(f) => OwnedAttr::F64(*f),
            AttrValue::Str(s) => OwnedAttr::Str((*s).to_string()),
        }
    }
}

pub(crate) fn own_attrs(attrs: &[(&str, AttrValue<'_>)]) -> Vec<(String, OwnedAttr)> {
    attrs
        .iter()
        .map(|(k, v)| ((*k).to_string(), OwnedAttr::from_borrowed(v)))
        .collect()
}

/// One node of the span tree. `end_ms` is `NaN` until the span closes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub id: SpanId,
    pub parent: SpanId,
    pub name: String,
    pub start_ms: f64,
    pub end_ms: f64,
    pub attrs: Vec<(String, OwnedAttr)>,
}

impl SpanRecord {
    pub fn closed(&self) -> bool {
        !self.end_ms.is_nan()
    }

    pub fn duration_ms(&self) -> f64 {
        if self.closed() {
            self.end_ms - self.start_ms
        } else {
            0.0
        }
    }
}

/// A point-in-time event, optionally attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    pub span: SpanId,
    pub name: String,
    pub at_ms: f64,
    pub attrs: Vec<(String, OwnedAttr)>,
}
