//! The collecting [`Recorder`]: aggregates metrics and keeps the span
//! tree, behind one mutex (contention is negligible next to the work
//! being measured; worker threads only bump counters).

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::export::MetricsDoc;
use crate::metrics::Histogram;
use crate::recorder::{AttrValue, Recorder, SpanId};
use crate::span::{own_attrs, EventRecord, SpanRecord};

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
}

/// A recorder that collects everything. Wrap it in an `Arc` and hand
/// clones to the database, the network and the runner; export once the
/// run completes.
#[derive(Debug, Default)]
pub struct Telemetry {
    inner: Mutex<Inner>,
}

impl Telemetry {
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Snapshot the metric state into an exportable document.
    pub fn metrics_doc(&self) -> MetricsDoc {
        let inner = self.inner.lock().unwrap();
        MetricsDoc {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// Deterministic JSON export of the metrics registry: sorted keys,
    /// fixed layout, shortest-roundtrip float rendering. Same seed →
    /// byte-identical output (wall-clock metrics, under the `wall.`
    /// prefix, only exist for runs that touch disk).
    pub fn metrics_json(&self) -> String {
        self.metrics_doc().to_json()
    }

    /// Deterministic JSON export of the span tree and events, in id
    /// (i.e. start) order.
    pub fn trace_json(&self) -> String {
        use crate::export::json::{write_f64_or_null, write_str};
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        out.push_str("{\n  \"spans\": [");
        for (i, s) in inner.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"id\": ");
            out.push_str(&s.id.0.to_string());
            out.push_str(", \"parent\": ");
            out.push_str(&s.parent.0.to_string());
            out.push_str(", \"name\": ");
            write_str(&mut out, &s.name);
            out.push_str(", \"start_ms\": ");
            write_f64_or_null(&mut out, s.start_ms);
            out.push_str(", \"end_ms\": ");
            write_f64_or_null(&mut out, s.end_ms);
            out.push_str(", \"attrs\": ");
            write_attrs(&mut out, &s.attrs);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, e) in inner.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"span\": ");
            out.push_str(&e.span.0.to_string());
            out.push_str(", \"name\": ");
            write_str(&mut out, &e.name);
            out.push_str(", \"at_ms\": ");
            write_f64_or_null(&mut out, e.at_ms);
            out.push_str(", \"attrs\": ");
            write_attrs(&mut out, &e.attrs);
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// All spans recorded so far (open spans have `NaN` end times).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().spans.clone()
    }

    /// All events recorded so far.
    pub fn events(&self) -> Vec<EventRecord> {
        self.inner.lock().unwrap().events.clone()
    }

    /// Value of a counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }
}

fn write_attrs(out: &mut String, attrs: &[(String, crate::span::OwnedAttr)]) {
    use crate::export::json::{write_f64_or_null, write_str};
    use crate::span::OwnedAttr;
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_str(out, k);
        out.push_str(": ");
        match v {
            OwnedAttr::I64(n) => out.push_str(&n.to_string()),
            OwnedAttr::F64(f) => write_f64_or_null(out, *f),
            OwnedAttr::Str(s) => write_str(out, s),
        }
    }
    out.push('}');
}

impl Recorder for Telemetry {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        match inner.counters.get_mut(counter) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                inner.counters.insert(counter.to_string(), delta);
            }
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        match inner.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    fn observe(&self, hist: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        match inner.histograms.get_mut(hist) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                inner.histograms.insert(hist.to_string(), h);
            }
        }
    }

    fn span_start(
        &self,
        name: &str,
        parent: SpanId,
        start_ms: f64,
        attrs: &[(&str, AttrValue<'_>)],
    ) -> SpanId {
        let mut inner = self.inner.lock().unwrap();
        let id = SpanId(inner.spans.len() as u64 + 1);
        inner.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_ms,
            end_ms: f64::NAN,
            attrs: own_attrs(attrs),
        });
        id
    }

    fn span_end(&self, id: SpanId, end_ms: f64) {
        if id.is_none() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if let Some(s) = inner.spans.get_mut(id.0 as usize - 1) {
            s.end_ms = end_ms;
        }
    }

    fn event(&self, span: SpanId, name: &str, at_ms: f64, attrs: &[(&str, AttrValue<'_>)]) {
        let mut inner = self.inner.lock().unwrap();
        inner.events.push(EventRecord {
            span,
            name: name.to_string(),
            at_ms,
            attrs: own_attrs(attrs),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_form_a_tree_with_durations() {
        let t = Telemetry::new();
        let root = t.span_start("campaign", SpanId::NONE, 10.0, &[]);
        let kid = t.span_start("destination", root, 11.0, &[("server", AttrValue::I64(2))]);
        t.span_end(kid, 15.5);
        t.span_end(root, 20.0);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, SpanId::NONE);
        assert_eq!(spans[1].parent, root);
        assert_eq!(spans[1].duration_ms(), 4.5);
        assert!(spans.iter().all(|s| s.closed()));
    }

    #[test]
    fn counters_saturate_and_accumulate() {
        let t = Telemetry::new();
        t.add("c", 2);
        t.add("c", 3);
        assert_eq!(t.counter("c"), 5);
        t.add("c", u64::MAX);
        assert_eq!(t.counter("c"), u64::MAX);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let t = Telemetry::new();
        t.gauge("g", 1.0);
        t.gauge("g", -2.5);
        let doc = t.metrics_doc();
        assert_eq!(doc.gauges["g"], -2.5);
    }

    #[test]
    fn ending_the_none_span_is_a_noop() {
        let t = Telemetry::new();
        t.span_end(SpanId::NONE, 5.0);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn trace_json_is_deterministic() {
        let make = || {
            let t = Telemetry::new();
            let root = t.span_start("a", SpanId::NONE, 0.0, &[("k", AttrValue::Str("v"))]);
            t.event(root, "retry", 1.25, &[("attempt", AttrValue::I64(1))]);
            t.span_end(root, 2.0);
            t.trace_json()
        };
        assert_eq!(make(), make());
        assert!(make().contains("\"retry\""));
    }
}
