//! The bandwidth study of §6.2: run the 12 Mbps and 150 Mbps campaigns
//! against the Germany server and print both figures side by side,
//! showing the MTU/64-byte crossover the paper reports.
//!
//! ```text
//! cargo run --release --example bandwidth_study
//! ```

fn main() {
    let seed = 42;
    let iterations = 8;

    println!("running the 12 Mbps campaign (Fig. 7)...");
    let (fig7, text7) = upin_bench::fig7(seed, iterations);
    println!("{text7}");

    println!("running the 150 Mbps campaign (Fig. 8)...");
    let (fig8, text8) = upin_bench::fig8(seed, iterations);
    println!("{text8}");

    // The crossover, quantified.
    let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    let up64_12 = mean(
        fig7.iter()
            .filter_map(|p| p.up_64.as_ref().map(|w| w.mean))
            .collect(),
    );
    let upmtu_12 = mean(
        fig7.iter()
            .filter_map(|p| p.up_mtu.as_ref().map(|w| w.mean))
            .collect(),
    );
    let up64_150 = mean(
        fig8.iter()
            .filter_map(|p| p.up_64.as_ref().map(|w| w.mean))
            .collect(),
    );
    let upmtu_150 = mean(
        fig8.iter()
            .filter_map(|p| p.up_mtu.as_ref().map(|w| w.mean))
            .collect(),
    );

    println!("upstream means across paths:");
    println!(
        "  target  12 Mbps:  MTU {upmtu_12:6.2} Mbps  vs  64B {up64_12:6.2} Mbps   (MTU wins)"
    );
    println!("  target 150 Mbps:  MTU {upmtu_150:6.2} Mbps  vs  64B {up64_150:6.2} Mbps   (64B wins — the reversal)");
    println!();
    println!(
        "\"Dropping 64 byte packets does not decrease the achieved bandwidth as\n dropping MTU-sized packets\" — the overloaded byte-buffers penalize large\n packets, collapsing MTU goodput below the pps-limited 64-byte goodput."
    );
}
