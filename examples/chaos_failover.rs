//! Chaos + failover in one sitting: the checked-in example schedule
//! (`examples/chaos_flaps.json`) flaps the ETHZ core, blacks out AWS
//! Frankfurt, pushes a congestion wave through the attachment point and
//! makes the Ireland server flaky — while long-lived failover sessions
//! keep every destination pinned to the best *live* path, migrating
//! within the 500 ms switch SLA and degrading to last-known-good
//! recommendations when nothing is reachable.
//!
//! ```text
//! cargo run --release --example chaos_failover
//! ```
//!
//! Same seed + same schedule → byte-identical trace and report, with
//! or without `parallel`.

use upin::pathdb::Database;
use upin::scion_sim::chaos::ChaosSchedule;
use upin::scion_sim::net::ScionNetwork;
use upin::upin_core::collect::{destinations, register_available_servers};
use upin::upin_core::failover::{run_chaos_campaign, FailoverConfig};
use upin::upin_core::report::render_chaos;

fn main() {
    let schedule = ChaosSchedule::from_json_str(include_str!("chaos_flaps.json"))
        .expect("the checked-in schedule is valid");

    let net = ScionNetwork::scionlab(11);
    let db = Database::new();
    register_available_servers(&db, &net).unwrap();
    let dests = destinations(&db).unwrap();

    let cfg = FailoverConfig {
        ticks: 45,
        parallel: true,
        ..FailoverConfig::default()
    };
    let report = run_chaos_campaign(&net, &schedule, &dests, &cfg, Some(&db)).unwrap();

    println!("Scheduled fault transitions:");
    print!("{}", report.trace);
    println!();
    print!("{}", render_chaos(&report));
}
