//! Continuous operation: periodic measurement rounds with retention,
//! feeding the path-health detector — the operational loop of a
//! deployed UPIN instance ("continuous measurements require continuous
//! functioning", §4.1.2).
//!
//! ```text
//! cargo run --release --example continuous_monitoring
//! ```

use upin::pathdb::Database;
use upin::scion_sim::fault::{CongestionEpisode, CongestionTarget};
use upin::scion_sim::net::ScionNetwork;
use upin::scion_sim::topology::scionlab::{paper_destinations, AWS_SINGAPORE};
use upin::upin_core::analysis::server_id_of;
use upin::upin_core::collect::{collect_paths, register_available_servers};
use upin::upin_core::health::{detect, Anomaly, HealthConfig};
use upin::upin_core::schedule::{run_scheduled, ScheduleConfig};
use upin::upin_core::schema::PATHS_STATS;
use upin::upin_core::SuiteConfig;

fn main() {
    let net = ScionNetwork::scionlab(5);
    let db = Database::new();
    register_available_servers(&db, &net).unwrap();
    let ireland = paper_destinations()[1];
    let campaign = SuiteConfig {
        iterations: 1,
        ping_count: 6,
        run_bwtests: false,
        skip_collection: true,
        ..SuiteConfig::default()
    };
    collect_paths(&db, &net, &campaign).unwrap();
    let server_id = server_id_of(&db, ireland).unwrap();
    {
        let handle = db.collection(upin::upin_core::schema::AVAILABLE_SERVERS);
        handle
            .write()
            .delete_many(&upin::pathdb::Filter::ne("_id", server_id.to_string()));
    }

    // Phase 1: six clean 2-minute rounds with a 10-minute retention.
    println!("phase 1: six clean rounds (2 min period, 10 min retention)...");
    let report = run_scheduled(
        &db,
        &net,
        &ScheduleConfig {
            campaign: campaign.clone(),
            period_ms: 120_000.0,
            rounds: 6,
            retention_ms: Some(600_000.0),
        },
    )
    .unwrap();
    println!(
        "  {} samples stored, {} pruned by retention, {} in the window\n",
        report.total_inserted(),
        report.pruned,
        db.collection(PATHS_STATS).read().len()
    );

    let cfg = HealthConfig {
        recent_window: 2,
        min_baseline: 3,
        ..HealthConfig::default()
    };
    println!(
        "health scan: {} finding(s) — baseline is clean\n",
        detect(&db, server_id, &cfg).unwrap().len()
    );

    // Phase 2: the Singapore AS congests; two more rounds run.
    println!("phase 2: AWS Singapore congests; two more rounds run...");
    net.add_congestion(CongestionEpisode {
        target: CongestionTarget::Node(AWS_SINGAPORE),
        start_ms: net.now_ms(),
        end_ms: net.now_ms() + 10_000_000.0,
        severity: 1.0,
    });
    run_scheduled(
        &db,
        &net,
        &ScheduleConfig {
            campaign,
            period_ms: 120_000.0,
            rounds: 2,
            retention_ms: Some(600_000.0),
        },
    )
    .unwrap();

    let findings = detect(&db, server_id, &cfg).unwrap();
    println!("health scan: {} finding(s)", findings.len());
    for f in &findings {
        let what = match &f.anomaly {
            Anomaly::Blackout => "BLACKOUT".to_string(),
            Anomaly::LossOnset {
                baseline_pct,
                recent_pct,
            } => {
                format!("loss onset {baseline_pct:.1}% -> {recent_pct:.1}%")
            }
            Anomaly::LatencyShift {
                baseline_ms,
                recent_ms,
                sigmas,
            } => {
                format!("latency shift {baseline_ms:.1} -> {recent_ms:.1} ms ({sigmas:.1} sigma)")
            }
        };
        println!("  {}: {what}", f.path_id);
    }
    println!("\nexactly the Singapore-detour paths are flagged; the operator (or an");
    println!("automated controller) can now steer users off them via the selection engine.");
}
