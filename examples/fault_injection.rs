//! Fault tolerance in action (§4.1.2): servers go down, answer garbage,
//! or flap; a congested node blacks out a window of measurements — and
//! the campaign retries what is transient, trips the circuit breaker on
//! what is not, and records it all instead of crashing.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use upin::pathdb::{Database, Filter, Value};
use upin::scion_sim::fault::{CongestionEpisode, CongestionTarget, ServerBehavior};
use upin::scion_sim::net::ScionNetwork;
use upin::scion_sim::topology::scionlab::{paper_destinations, AWS_FRANKFURT};
use upin::upin_core::collect::{collect_paths, destinations, register_available_servers};
use upin::upin_core::health::summarize_events;
use upin::upin_core::measure::run_tests;
use upin::upin_core::schema::PATHS_STATS;
use upin::upin_core::SuiteConfig;

fn main() {
    let net = ScionNetwork::scionlab(11);
    let db = Database::new();
    register_available_servers(&db, &net).unwrap();
    let cfg = SuiteConfig {
        iterations: 1,
        ping_count: 10,
        run_bwtests: true,
        retry_attempts: 3,
        breaker_threshold: 3,
        ..SuiteConfig::default()
    };
    collect_paths(&db, &net, &cfg).unwrap();

    // Break things: Ireland down, N. Virginia answering garbage, the
    // Singapore server flapping, and Frankfurt congested for 2 minutes.
    let [_, ireland, virginia, singapore, _] = <[_; 5]>::try_from(paper_destinations()).unwrap();
    net.set_server_behavior(ireland, ServerBehavior::Down);
    net.set_server_behavior(virginia, ServerBehavior::BadResponse);
    net.set_server_behavior(singapore, ServerBehavior::Flaky(0.5));
    net.add_congestion(CongestionEpisode {
        target: CongestionTarget::Node(AWS_FRANKFURT),
        start_ms: net.now_ms() + 60_000.0,
        end_ms: net.now_ms() + 180_000.0,
        severity: 1.0,
    });
    println!("injected: Ireland DOWN, N. Virginia BAD-RESPONSE, Singapore FLAKY(50%),");
    println!("          AWS Frankfurt congested for minutes 1..3 of the campaign\n");

    let report = run_tests(&db, &net, &cfg).unwrap();
    println!(
        "campaign survived: {} destinations, {} samples stored, {} with recorded errors",
        report.destinations, report.inserted, report.errors
    );
    println!(
        "runner: {} retries, {} path measurements skipped, breaker tripped on {:?}\n",
        report.retries, report.skipped, report.tripped
    );

    // The event stream tells the self-healing story per destination.
    for (server_id, (retries, exhausted, trips)) in summarize_events(&report.events) {
        println!(
            "server {server_id}: {retries} retries ({exhausted} exhausted), {trips} breaker trips"
        );
    }
    if !report.events.is_empty() {
        println!();
    }

    // Show what the database recorded for the broken destinations.
    let handle = db.collection(PATHS_STATS);
    let coll = handle.read();
    for (label, addr) in [
        ("Ireland (down)", ireland),
        ("N. Virginia (bad response)", virginia),
    ] {
        let id = destinations(&db)
            .unwrap()
            .into_iter()
            .find(|(_, a)| *a == addr)
            .unwrap()
            .0;
        let total = coll.count(&Filter::eq("server_id", id as i64));
        let errored = coll.count(
            &Filter::eq("server_id", id as i64)
                .and(Filter::exists("error"))
                .and(Filter::ne("error", Value::Null)),
        );
        let blackout =
            coll.count(&Filter::eq("server_id", id as i64).and(Filter::gte("loss_pct", 100.0)));
        println!("{label}: {total} samples, {errored} errored, {blackout} at 100% loss");
    }
    println!("\nevery failure is a document, not a crash — the §4.1.2 requirement.");
}
