//! Fault tolerance in action (§4.1.2): servers go down, answer garbage,
//! or flap; a congested node blacks out a window of measurements — and
//! the campaign retries what is transient, trips the circuit breaker on
//! what is not, and records it all instead of crashing.
//!
//! Act two kills the measuring process itself: the same campaign runs
//! WAL-durable, dies mid-measurement, and recovers from the surviving
//! bytes — losing at most the one in-flight destination batch (§4.2.2).
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use upin::pathdb::{Database, Durability, FaultyStorage, Filter, OpenOptions, Value};
use upin::scion_sim::fault::{CongestionEpisode, CongestionTarget, ServerBehavior};
use upin::scion_sim::net::ScionNetwork;
use upin::scion_sim::topology::scionlab::{paper_destinations, AWS_FRANKFURT};
use upin::upin_core::collect::{collect_paths, destinations, register_available_servers};
use upin::upin_core::health::summarize_events;
use upin::upin_core::measure::run_tests;
use upin::upin_core::schema::PATHS_STATS;
use upin::upin_core::SuiteConfig;

fn main() {
    let net = ScionNetwork::scionlab(11);
    let db = Database::new();
    register_available_servers(&db, &net).unwrap();
    let cfg = SuiteConfig {
        iterations: 1,
        ping_count: 10,
        run_bwtests: true,
        retry_attempts: 3,
        breaker_threshold: 3,
        ..SuiteConfig::default()
    };
    collect_paths(&db, &net, &cfg).unwrap();

    // Break things: Ireland down, N. Virginia answering garbage, the
    // Singapore server flapping, and Frankfurt congested for 2 minutes.
    let [_, ireland, virginia, singapore, _] = <[_; 5]>::try_from(paper_destinations()).unwrap();
    net.set_server_behavior(ireland, ServerBehavior::Down);
    net.set_server_behavior(virginia, ServerBehavior::BadResponse);
    net.set_server_behavior(singapore, ServerBehavior::Flaky(0.5));
    net.add_congestion(CongestionEpisode {
        target: CongestionTarget::Node(AWS_FRANKFURT),
        start_ms: net.now_ms() + 60_000.0,
        end_ms: net.now_ms() + 180_000.0,
        severity: 1.0,
    });
    println!("injected: Ireland DOWN, N. Virginia BAD-RESPONSE, Singapore FLAKY(50%),");
    println!("          AWS Frankfurt congested for minutes 1..3 of the campaign\n");

    let report = run_tests(&db, &net, &cfg).unwrap();
    println!(
        "campaign survived: {} destinations, {} samples stored, {} with recorded errors",
        report.destinations, report.inserted, report.errors
    );
    println!(
        "runner: {} retries, {} path measurements skipped, breaker tripped on {:?}\n",
        report.retries, report.skipped, report.tripped
    );

    // The event stream tells the self-healing story per destination.
    for (server_id, (retries, exhausted, trips)) in summarize_events(&report.events) {
        println!(
            "server {server_id}: {retries} retries ({exhausted} exhausted), {trips} breaker trips"
        );
    }
    if !report.events.is_empty() {
        println!();
    }

    // Show what the database recorded for the broken destinations.
    let handle = db.collection(PATHS_STATS);
    let coll = handle.read();
    for (label, addr) in [
        ("Ireland (down)", ireland),
        ("N. Virginia (bad response)", virginia),
    ] {
        let id = destinations(&db)
            .unwrap()
            .into_iter()
            .find(|(_, a)| *a == addr)
            .unwrap()
            .0;
        let total = coll.query(Filter::eq("server_id", id as i64)).count();
        let errored = coll
            .query(
                Filter::eq("server_id", id as i64)
                    .and(Filter::exists("error"))
                    .and(Filter::ne("error", Value::Null)),
            )
            .count();
        let blackout = coll
            .query(Filter::eq("server_id", id as i64).and(Filter::gte("loss_pct", 100.0)))
            .count();
        println!("{label}: {total} samples, {errored} errored, {blackout} at 100% loss");
    }
    println!("\nevery failure is a document, not a crash — the §4.1.2 requirement.");

    crash_recovery_act();
}

/// One WAL-durable campaign against `storage`: register, collect,
/// checkpoint, measure. Returns the storage unit counter after the
/// checkpoint, the measurement outcome, and the database.
fn durable_campaign(storage: &FaultyStorage) -> (u64, Result<(), String>, Database) {
    let net = ScionNetwork::scionlab(11);
    let cfg = SuiteConfig {
        iterations: 1,
        ping_count: 3,
        run_bwtests: false,
        ..SuiteConfig::default()
    };
    let (db, _) = Database::open_durable_with(
        PathBuf::from("/crash-demo"),
        OpenOptions::new(Durability::Wal).with_storage(Arc::new(storage.clone())),
    )
    .expect("recovery never fails, whatever the store looks like");
    let setup = register_available_servers(&db, &net)
        .map_err(|e| e.to_string())
        .and_then(|_| collect_paths(&db, &net, &cfg).map_err(|e| e.to_string()))
        .and_then(|_| db.checkpoint().map_err(|e| e.to_string()));
    if let Err(e) = setup {
        return (storage.units_written(), Err(e), db);
    }
    let after_checkpoint = storage.units_written();
    let outcome = run_tests(&db, &net, &cfg)
        .map(|_| ())
        .map_err(|e| e.to_string());
    (after_checkpoint, outcome, db)
}

/// Act two: kill the process mid-measurement and recover from the WAL.
fn crash_recovery_act() {
    println!("\n-- act two: the process dies mid-campaign (--durability wal) --\n");

    // Fault-free reference run, to learn the store's write extent.
    let reference = FaultyStorage::new();
    let (after_checkpoint, outcome, ref_db) = durable_campaign(&reference);
    outcome.expect("fault-free durable campaign succeeds");
    let expected = ref_db.collection(PATHS_STATS).read().len();
    let total = reference.units_written();

    // The rigged run: the store dies partway through the measurement
    // phase, mid-WAL-frame, as a real power cut would land.
    let storage = FaultyStorage::new();
    storage.kill_at(after_checkpoint + (total - after_checkpoint) * 3 / 5);
    let (_, outcome, _) = durable_campaign(&storage);
    println!(
        "campaign aborted: {}",
        outcome.expect_err("the dead store must surface as an error")
    );

    // Reopen from the surviving bytes, as the next process start would.
    let (recovered, report) = Database::open_durable_with(
        PathBuf::from("/crash-demo"),
        OpenOptions::new(Durability::Wal).with_storage(Arc::new(storage.surviving())),
    )
    .expect("recovery from the torn store");
    if !report.clean() {
        println!("recovery: {}", report.render());
    }
    let salvaged = recovered.collection(PATHS_STATS).read().len();
    println!(
        "recovered {salvaged} of {expected} samples — the checkpointed collection phase plus \
         every committed destination batch; only the in-flight batch is gone (§4.2.2)."
    );
    assert!(
        salvaged < expected,
        "the kill offset should land mid-measurement"
    );
}
