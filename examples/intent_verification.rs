//! The UPIN Path Tracer + Verifier loop (§2.1): recommend a path under
//! constraints, then re-trace it and verify the intent is actually
//! satisfied on the wire — including a case where it is not.
//!
//! ```text
//! cargo run --release --example intent_verification
//! ```

use upin::pathdb::Database;
use upin::scion_sim::net::ScionNetwork;
use upin::scion_sim::topology::scionlab::{paper_destinations, AWS_SINGAPORE};
use upin::upin_core::analysis::server_id_of;
use upin::upin_core::collect::{collect_paths, register_available_servers};
use upin::upin_core::measure::run_tests;
use upin::upin_core::select::{recommend, Constraints, Objective, UserRequest};
use upin::upin_core::verify::{traces_for, verify_recommendation};
use upin::upin_core::SuiteConfig;

fn main() {
    let net = ScionNetwork::scionlab(23);
    let db = Database::new();
    register_available_servers(&db, &net).unwrap();
    let cfg = SuiteConfig {
        iterations: 3,
        ping_count: 10,
        run_bwtests: false,
        ..SuiteConfig::default()
    };
    collect_paths(&db, &net, &cfg).unwrap();
    let ireland = paper_destinations()[1];
    let server_id = server_id_of(&db, ireland).unwrap();
    {
        let handle = db.collection(upin::upin_core::schema::AVAILABLE_SERVERS);
        handle
            .write()
            .delete_many(&upin::pathdb::Filter::ne("_id", server_id.to_string()));
    }
    run_tests(&db, &net, &cfg).unwrap();

    // The user's intent: low latency, never through Singapore.
    let constraints = Constraints {
        exclude_countries: vec!["Singapore".into()],
        ..Constraints::default()
    };
    let recs = recommend(
        &db,
        &UserRequest {
            server_id,
            objective: Objective::MinLatency,
            constraints: constraints.clone(),
        },
        10,
    )
    .unwrap();
    let chosen = &recs[0];
    println!(
        "controller chose {} ({})",
        chosen.aggregate.path_id, chosen.aggregate.sequence
    );

    // Tracer + Verifier: re-trace the delivered path, check the intent.
    let report = verify_recommendation(
        &db,
        &net,
        upin::scion_sim::topology::scionlab::MY_AS,
        chosen,
        &constraints,
        Objective::MinLatency,
        1.5,
    )
    .unwrap();
    println!("\ntraced {} hops:", report.trace.len());
    for (ia, rtt) in &report.trace {
        match rtt {
            Some(ms) => println!("  {ia}  {ms:.2} ms"),
            None => println!("  {ia}  *"),
        }
    }
    println!(
        "verdict: {}\n",
        if report.satisfied() {
            "intent satisfied"
        } else {
            "VIOLATED"
        }
    );

    // Now the negative case: take a path that *does* transit Singapore
    // and verify it against the same intent — the verifier must object.
    let bad = recommend(
        &db,
        &UserRequest {
            server_id,
            objective: Objective::MinLatency,
            constraints: Constraints::default(),
        },
        100,
    )
    .unwrap()
    .into_iter()
    .find(|r| r.aggregate.sequence.contains(&AWS_SINGAPORE.to_string()))
    .expect("a Singapore path exists");
    println!(
        "adversarial check: verifying Singapore path {} against the same intent",
        bad.aggregate.path_id
    );
    let report = verify_recommendation(
        &db,
        &net,
        upin::scion_sim::topology::scionlab::MY_AS,
        &bad,
        &constraints,
        Objective::MinLatency,
        1.5,
    )
    .unwrap();
    for v in &report.violations {
        println!("  VIOLATION: {v}");
    }
    assert!(!report.satisfied());

    // Every verification left an audit trace in the database.
    let audits = traces_for(&db, &chosen.aggregate.sequence).len()
        + traces_for(&db, &bad.aggregate.sequence).len();
    println!("\n{audits} trace records stored in the path_traces collection for audit");
}
