//! The full test-suite, CLI-compatible with the paper's wrapper script:
//!
//! ```text
//! cargo run --release --example measurement_campaign -- 2 [--skip] [--some_only] [--parallel]
//! ```
//!
//! Collects paths to all 21 destinations, measures each retained path
//! `<iterations>` times (ping + both bandwidth tests), bulk-inserts per
//! destination, persists the database to `./upin-db/`, and prints the
//! campaign summary plus the Fig. 4 histogram.

use upin::pathdb::Database;
use upin::scion_sim::net::ScionNetwork;
use upin::upin_core::analysis;
use upin::upin_core::report;
use upin::upin_core::{SuiteConfig, TestSuite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = if args.is_empty() {
        vec!["1".to_string()] // default: one iteration
    } else {
        args
    };
    let cfg = match SuiteConfig::from_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!(
                "usage: measurement_campaign <iterations> [--skip] [--some_only] [--parallel]"
            );
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let net = ScionNetwork::scionlab(42);
    let db = Database::new();
    let suite = TestSuite::new(&net, &db, cfg);
    let servers = suite.bootstrap().unwrap();
    println!("registered {servers} destination servers");

    let started = std::time::Instant::now();
    let report = suite.run().unwrap();
    println!("{}", report.render());
    println!(
        "campaign took {:.1}s wall clock",
        started.elapsed().as_secs_f64()
    );
    println!(
        "network clock advanced to {:.0}s (simulated testbed time)\n",
        net.now_ms() / 1000.0
    );

    // Persist like the paper's MongoDB instance.
    db.save_dir("upin-db").unwrap();
    println!(
        "database persisted to ./upin-db/ ({} documents across {:?})\n",
        db.total_documents(),
        db.collection_names()
    );

    let summary = analysis::summary(&db).unwrap();
    println!("{}", report::render_summary(&summary));
    let hist = analysis::reachability(&db).unwrap();
    println!("{}", report::render_fig4(&hist));
}
