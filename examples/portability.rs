//! Portability (§4.1.3): run the unmodified test-suite on a SCION
//! network that is *not* SCIONLab — a randomly generated multi-ISD
//! topology — then answer a user request from the collected data.
//!
//! ```text
//! cargo run --release --example portability -- [seed]
//! ```

use upin::pathdb::Database;
use upin::scion_sim::net::ScionNetwork;
use upin::scion_sim::topology::random::{random_topology, RandomTopologyConfig};
use upin::scion_sim::topology::render::render;
use upin::upin_core::collect::{collect_paths, destinations, register_available_servers};
use upin::upin_core::measure::run_tests;
use upin::upin_core::select::{recommend, Constraints, Objective, UserRequest};
use upin::upin_core::{SuiteConfig, SuiteError};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);

    let cfg = RandomTopologyConfig {
        isds: 4,
        ases_per_isd: (4, 7),
        ..RandomTopologyConfig::default()
    };
    let (topo, user) = random_topology(seed, &cfg).expect("valid config");
    println!("generated network (seed {seed}):\n");
    println!("{}", render(&topo));

    let net = ScionNetwork::new(topo, seed);
    let db = Database::new();
    let servers = register_available_servers(&db, &net).unwrap();
    println!("running the unmodified suite from {user} against {servers} servers...\n");

    let suite_cfg = SuiteConfig {
        local_as: user,
        iterations: 2,
        ping_count: 5,
        run_bwtests: false,
        ..SuiteConfig::default()
    };
    let collected = collect_paths(&db, &net, &suite_cfg).unwrap();
    println!(
        "collected {} paths ({} discovered) across {} destinations",
        collected.retained, collected.discovered, collected.destinations
    );
    let measured = run_tests(&db, &net, &suite_cfg).unwrap();
    println!(
        "stored {} samples with {} errors\n",
        measured.inserted, measured.errors
    );

    for (server_id, addr) in destinations(&db).unwrap() {
        if addr.ia == user {
            continue;
        }
        let req = UserRequest {
            server_id,
            objective: Objective::MinLatency,
            constraints: Constraints::default(),
        };
        match recommend(&db, &req, 1) {
            Ok(recs) => {
                let a = &recs[0].aggregate;
                println!(
                    "best path to {addr}: {} ({} hops, {:.1} ms)",
                    a.path_id,
                    a.hops,
                    a.latency.as_ref().map(|w| w.mean).unwrap_or(f64::NAN)
                );
            }
            Err(SuiteError::Selection(_)) => {
                println!("no usable path to {addr} (all samples lost)");
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    println!("\nsame binaries, different SCION network — the §4.1.3 requirement.");
}
