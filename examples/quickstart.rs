//! Quickstart: bring up the SCIONLab network, discover paths, and
//! measure one of them — the five-minute tour of the stack.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use upin::scion_sim::addr::HostAddr;
use upin::scion_sim::net::ScionNetwork;
use upin::scion_sim::topology::scionlab::{paper_destinations, AWS_IRELAND, MY_AS};
use upin::scion_tools::ping::{ping, PathSelection, PingOptions};
use upin::scion_tools::showpaths::{showpaths, ShowpathsOptions};
use upin::scion_tools::{address, traceroute};

fn main() {
    // The experimental setup of the paper's §3: the SCIONLab topology
    // with our own AS (MY_AS#1) attached to ETHZ-AP.
    let net = ScionNetwork::scionlab(42);

    // `scion address`
    let info = address::address(&net, MY_AS, HostAddr::new(10, 0, 2, 15)).unwrap();
    println!("local address: {} ({})\n", info.render(), info.as_name);

    // `scion showpaths 16-ffaa:0:1002 --extended -m 40`
    let result = showpaths(
        &net,
        MY_AS,
        AWS_IRELAND,
        ShowpathsOptions {
            max_paths: 40,
            extended: true,
        },
    )
    .unwrap();
    println!("{}", result.render());

    // `scion ping 16-ffaa:0:1002,[172.31.43.7] -c 30 --interval 0.1s`
    let ireland = paper_destinations()[1];
    let report = ping(&net, MY_AS, ireland, &PingOptions::paper()).unwrap();
    println!(
        "pinged {} over the {}-hop default path:",
        ireland,
        report.path.hop_count()
    );
    println!("{}", report.render());

    // `scion traceroute` over the same path shows where latency lives.
    let trace = traceroute::traceroute(
        &net,
        MY_AS,
        AWS_IRELAND,
        &PathSelection::Sequence(report.path.sequence()),
    )
    .unwrap();
    println!("traceroute:\n{}", trace.render());
    if let Some((ia, delta)) = trace.max_hop_delta_ms() {
        println!("largest RTT jump: +{delta:.1} ms entering {ia}");
    }
}
