//! User-driven path control with sovereignty constraints — the UPIN use
//! case the paper builds toward: "select the best path to give to a
//! user ... following their request on performance or devices to
//! exclude for geographical or sovereignty reasons."
//!
//! Runs a measurement campaign against AWS Ireland, then answers three
//! user requests from the database:
//!   1. lowest latency, unconstrained;
//!   2. lowest latency, but never transiting the United States or
//!      Singapore;
//!   3. most consistent latency (jitter), excluding the two wide-jitter
//!      ASes the paper identifies (16-ffaa:0:1004, 16-ffaa:0:1007).
//!
//! ```text
//! cargo run --release --example sovereign_routing
//! ```

use std::sync::Arc;
use upin::pathdb::Database;
use upin::scion_sim::net::ScionNetwork;
use upin::scion_sim::topology::scionlab::{paper_destinations, AWS_OHIO, AWS_SINGAPORE, MY_AS};
use upin::upin_core::analysis::server_id_of;
use upin::upin_core::api::{self, PathIntelService, RecommendRequest, ServiceRequest};
use upin::upin_core::collect::{collect_paths, register_available_servers};
use upin::upin_core::measure::run_tests;
use upin::upin_core::select::{recommend, Constraints, Objective, UserRequest};
use upin::upin_core::SuiteConfig;

fn main() {
    let net = Arc::new(ScionNetwork::scionlab(7));
    let db = Arc::new(Database::new());
    register_available_servers(&db, &net).unwrap();

    let cfg = SuiteConfig {
        iterations: 5,
        run_bwtests: false,
        ..SuiteConfig::default()
    };
    collect_paths(&db, &net, &cfg).unwrap();

    // Measure only the Ireland destination for this demo.
    let ireland = paper_destinations()[1];
    let server_id = server_id_of(&db, ireland).unwrap();
    {
        let handle = db.collection(upin::upin_core::schema::AVAILABLE_SERVERS);
        handle
            .write()
            .delete_many(&upin::pathdb::Filter::ne("_id", server_id.to_string()));
    }
    println!("measuring all paths to {ireland} (5 rounds)...\n");
    run_tests(&db, &net, &cfg).unwrap();

    // Everything the selection layer knows about the destination, through
    // the same typed service API `upin serve` speaks: one Recommend
    // dispatch over all paths, rendered for a user.
    let svc = PathIntelService::new(Arc::clone(&db), Arc::clone(&net), MY_AS, 7);
    let all = svc.dispatch(&ServiceRequest::Recommend(RecommendRequest {
        destination: server_id.to_string(),
        objective: Objective::MinLatency,
        constraints: Constraints::default(),
        k: 64,
        pareto: false,
        weights: None,
    }));
    print!("{}", api::render_response(&all));
    println!();

    let show = |label: &str, recs: &[upin::upin_core::Recommendation]| {
        println!("== {label}");
        for r in recs.iter().take(3) {
            let lat = r
                .aggregate
                .latency
                .as_ref()
                .map(|w| format!("{:.1} ms", w.mean))
                .unwrap_or_else(|| "-".into());
            let loss = r
                .aggregate
                .mean_loss_pct
                .map(|l| format!("{l:.1}%"))
                .unwrap_or_else(|| "-".into());
            println!(
                "  #{} {}  hops={}  latency={}  jitter={:.2} ms  loss={}",
                r.rank,
                r.aggregate.path_id,
                r.aggregate.hops,
                lat,
                r.aggregate.jitter_ms.unwrap_or(f64::NAN),
                loss
            );
            println!("     via {}", r.aggregate.sequence);
        }
        println!();
    };

    // 1. Fastest path, no constraints.
    let fastest = recommend(
        &db,
        &UserRequest {
            server_id,
            objective: Objective::MinLatency,
            constraints: Constraints::default(),
        },
        3,
    )
    .unwrap();
    show("fastest path (unconstrained)", &fastest);

    // 2. Sovereignty: never leave through the US or Singapore.
    let sovereign = recommend(
        &db,
        &UserRequest {
            server_id,
            objective: Objective::MinLatency,
            constraints: Constraints {
                exclude_countries: vec!["United States".into(), "Singapore".into()],
                ..Constraints::default()
            },
        },
        3,
    )
    .unwrap();
    show("fastest path avoiding US + Singapore devices", &sovereign);

    // 3. Streaming/VoIP: consistency over raw speed, excluding the
    //    wide-jitter ASes (the paper's §6.1 recommendation).
    let steady = recommend(
        &db,
        &UserRequest {
            server_id,
            objective: Objective::MinJitter,
            constraints: Constraints {
                exclude_ases: vec![AWS_SINGAPORE.to_string(), AWS_OHIO.to_string()],
                ..Constraints::default()
            },
        },
        3,
    )
    .unwrap();
    show("most consistent path (jitter) for streaming/VoIP", &steady);
}
