//! # upin — user-driven path control on a SCION network
//!
//! Facade crate re-exporting the full stack:
//!
//! * [`scion_sim`] — deterministic SCION network simulator (topology,
//!   beaconing control plane, SCMP/flow data plane, faults).
//! * [`scion_tools`] — the SCION end-host applications (`showpaths`,
//!   `ping`, `traceroute`, `bwtestclient`) against the simulator.
//! * [`pathdb`] — embedded MongoDB-style document database.
//! * [`upin_core`] — the paper's contribution: measurement test-suite,
//!   statistics schema and the user-driven path selection engine.
//!
//! See `examples/quickstart.rs` for the five-minute tour, and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction inventory.

pub use pathdb;
pub use scion_sim;
pub use scion_tools;
pub use upin_core;
pub use upin_telemetry;

/// One-call setup of the standard experimental environment: the
/// SCIONLab network with `MY_AS` attached, a fresh database with the 21
/// destinations registered, and paths collected under the default
/// configuration.
pub fn standard_setup(
    seed: u64,
) -> (
    scion_sim::net::ScionNetwork,
    pathdb::Database,
    upin_core::SuiteConfig,
) {
    let net = scion_sim::net::ScionNetwork::scionlab(seed);
    let db = pathdb::Database::new();
    let cfg = upin_core::SuiteConfig::default();
    upin_core::collect::register_available_servers(&db, &net)
        .expect("server registration succeeds on the built-in topology");
    upin_core::collect::collect_paths(&db, &net, &cfg).expect("collection succeeds");
    (net, db, cfg)
}
