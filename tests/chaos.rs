//! Chaos invariants, property-tested end to end: randomly generated
//! fault schedules must never panic the stack, a failover session with
//! a live alternative must migrate within the switch SLA, and the
//! parallel campaign runner must be byte-identical to the sequential
//! one under the same seed.

use proptest::prelude::*;
use upin::scion_sim::chaos::{AsOutage, ChaosSchedule, CongestionWave, Dwell, LinkFlap};
use upin::scion_sim::net::ScionNetwork;
use upin::scion_sim::topology::scionlab::{paper_destinations, ETHZ_AP, ETHZ_CORE};
use upin::upin_core::failover::{run_chaos_campaign, FailoverConfig};

/// An arbitrary—but valid—schedule over the scionlab topology: up to
/// two link flaps, one AS outage and one congestion wave, with all
/// timings drawn freely.
fn schedule_strategy() -> impl Strategy<Value = ChaosSchedule> {
    (
        0u64..1000,
        proptest::collection::vec(
            (
                0usize..8,
                1_000f64..30_000.0,
                500f64..15_000.0,
                1_000f64..20_000.0,
            ),
            0..=2,
        ),
        proptest::option::of((0usize..8, 1_000f64..30_000.0, 2_000f64..15_000.0)),
        proptest::option::of((1_000f64..30_000.0, 2_000f64..15_000.0, 0.1f64..0.9)),
    )
        .prop_map(|(seed, flaps, outage, wave)| {
            let net = ScionNetwork::scionlab(1);
            let topo = net.topology();
            let nodes: Vec<_> = topo.ases().map(|(_, n)| n.ia).collect();
            let links: Vec<_> = topo
                .links()
                .map(|(_, l)| (nodes[l.a.0 as usize], nodes[l.b.0 as usize]))
                .collect();
            let mut s = ChaosSchedule::new(seed, 45_000.0);
            for (li, first_down_ms, down, up) in flaps {
                let (a, b) = links[li % links.len()];
                s.flaps.push(LinkFlap {
                    a,
                    b,
                    first_down_ms,
                    down: Dwell::fixed(down),
                    up: Dwell::fixed(up),
                });
            }
            if let Some((ni, start_ms, duration_ms)) = outage {
                s.outages.push(AsOutage {
                    node: nodes[ni % nodes.len()],
                    start_ms,
                    duration_ms,
                });
            }
            if let Some((first_ms, active, severity)) = wave {
                s.waves.push(CongestionWave {
                    node: ETHZ_AP,
                    severity,
                    first_ms,
                    active: Dwell::fixed(active),
                    idle: Dwell::fixed(60_000.0),
                });
            }
            s
        })
}

/// The checked-in example schedule stays parseable and pinned to the
/// codec: re-serializing it must reproduce the file byte for byte.
#[test]
fn checked_in_example_schedule_round_trips() {
    let text = include_str!("../examples/chaos_flaps.json");
    let s = ChaosSchedule::from_json_str(text).expect("examples/chaos_flaps.json parses");
    assert_eq!(format!("{}\n", s.to_json_string()), text);
    assert_eq!(s.flaps.len() + s.outages.len() + s.waves.len(), 3);
    assert_eq!(s.flaky_servers.len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No schedule — whatever it breaks, for however long — may panic
    /// the campaign or produce an inconsistent report.
    #[test]
    fn random_schedules_never_panic(schedule in schedule_strategy(), net_seed in 0u64..100) {
        let net = ScionNetwork::scionlab(net_seed);
        let cfg = FailoverConfig {
            ticks: 10,
            probes: 2,
            max_paths: 6,
            ..FailoverConfig::default()
        };
        let dests: Vec<(u32, _)> = paper_destinations()
            .into_iter()
            .take(2)
            .enumerate()
            .map(|(i, a)| (i as u32 + 1, a))
            .collect();
        let report = run_chaos_campaign(&net, &schedule, &dests, &cfg, None).unwrap();
        prop_assert_eq!(report.dests.len(), dests.len());
        for d in &report.dests {
            prop_assert_eq!(d.ticks, cfg.ticks);
            prop_assert!(d.ok_ticks + d.degraded_ticks <= d.ticks, "{d:?}");
            prop_assert!(d.availability() >= 0.0 && d.availability() <= 1.0);
            prop_assert!(d.sla_violations <= d.switch_ms.len(), "{d:?}");
            for &ms in &d.switch_ms {
                prop_assert!(ms.is_finite() && ms >= 0.0);
            }
        }
        // The report's JSON codec round-trips whatever came out.
        let json = report.to_json_string();
        let back = upin::upin_core::ChaosReport::from_json_str(&json).unwrap();
        prop_assert_eq!(back.to_json_string(), json);
    }

    /// With the ETHZ core flapping, the Swisscom alternatives stay
    /// live, so every forced migration must land within the SLA.
    #[test]
    fn live_alternative_means_switch_within_sla(
        first_down_ms in 2_000f64..12_000.0,
        down in 4_000f64..12_000.0,
        seed in 0u64..200,
    ) {
        let net = ScionNetwork::scionlab(seed);
        let mut schedule = ChaosSchedule::new(seed.wrapping_add(1), 60_000.0);
        schedule.flaps.push(LinkFlap {
            a: ETHZ_CORE,
            b: ETHZ_AP,
            first_down_ms,
            down: Dwell::fixed(down),
            up: Dwell::fixed(600_000.0),
        });
        let cfg = FailoverConfig {
            ticks: 20,
            probes: 2,
            max_paths: 6,
            ..FailoverConfig::default()
        };
        let dests = [(1u32, paper_destinations()[1])];
        let report = run_chaos_campaign(&net, &schedule, &dests, &cfg, None).unwrap();
        let d = &report.dests[0];
        prop_assert_eq!(d.sla_violations, 0, "{d:?}");
        for &ms in &d.switch_ms {
            prop_assert!(ms <= cfg.sla_ms, "switch took {ms} ms against SLA {} ms", cfg.sla_ms);
        }
        prop_assert_eq!(d.degraded_ticks, 0, "an alternative was always live: {d:?}");
    }

    /// `--parallel` is an executor choice, not a semantics choice: the
    /// same seed must yield byte-identical report JSON at any worker
    /// count, and identical to the sequential run.
    #[test]
    fn parallel_campaign_is_byte_identical(schedule in schedule_strategy(), net_seed in 0u64..100) {
        let cfg = FailoverConfig {
            ticks: 8,
            probes: 2,
            max_paths: 6,
            ..FailoverConfig::default()
        };
        let dests: Vec<(u32, _)> = paper_destinations()
            .into_iter()
            .enumerate()
            .map(|(i, a)| (i as u32 + 1, a))
            .collect();
        let run = |parallel: bool, workers: usize| {
            let net = ScionNetwork::scionlab(net_seed);
            let cfg = FailoverConfig {
                parallel,
                workers,
                ..cfg.clone()
            };
            run_chaos_campaign(&net, &schedule, &dests, &cfg, None)
                .unwrap()
                .to_json_string()
        };
        let sequential = run(false, 1);
        for workers in [2, 5] {
            prop_assert_eq!(&run(true, workers), &sequential, "workers {}", workers);
        }
    }
}
