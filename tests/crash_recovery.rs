//! End-to-end crash injection: a measurement campaign killed
//! mid-destination loses at most the one in-flight destination batch —
//! the §4.2.2 fault-tolerance bound that motivates one bulk insertion
//! per destination ("a crash costs at most one in-flight sample per
//! path of one destination, never the balance of the dataset").
//!
//! The campaign runs on a WAL-durable database over a [`FaultyStorage`]
//! rigged to die at a chosen byte offset. Because the simulator and the
//! runner are deterministic for a fixed seed, the crashed run writes
//! byte-for-byte the same prefix as a fault-free reference run, so the
//! recovered state can be checked against the reference's
//! per-destination batch structure exactly.

use pathdb::database::OpenOptions;
use pathdb::{Database, Durability, FaultyStorage};
use std::path::PathBuf;
use std::sync::Arc;
use upin::scion_sim::net::ScionNetwork;
use upin::upin_core::collect::{collect_paths, register_available_servers};
use upin::upin_core::measure::run_tests;
use upin::upin_core::schema::{AVAILABLE_SERVERS, PATHS, PATHS_STATS};
use upin::upin_core::SuiteConfig;

const SEED: u64 = 4711;

fn cfg() -> SuiteConfig {
    SuiteConfig {
        iterations: 2,
        ping_count: 2,
        run_bwtests: false,
        ..SuiteConfig::default()
    }
}

fn open(storage: &FaultyStorage) -> (Database, pathdb::RecoveryReport) {
    Database::open_durable_with(
        PathBuf::from("/campaign"),
        OpenOptions::new(Durability::Wal).with_storage(Arc::new(storage.clone())),
    )
    .expect("recovery from a torn store must not fail")
}

/// `paths_stats` ids in insertion order, paired with their server id.
fn stats_rows(db: &Database) -> Vec<(String, i64)> {
    let handle = db.collection(PATHS_STATS);
    let coll = handle.read();
    coll.iter()
        .map(|d| {
            (
                d.id().expect("stats docs carry _id").to_string(),
                d.get("server_id").and_then(|v| v.as_int()).unwrap(),
            )
        })
        .collect()
}

/// One full campaign script against `storage`. Returns the unit counter
/// after the post-collection checkpoint, plus the measurement outcome
/// (an `Err` when the storage died mid-campaign) and the database as it
/// stood in memory at that moment.
fn campaign(storage: &FaultyStorage) -> (u64, Result<(), String>, Database) {
    let net = ScionNetwork::scionlab(SEED);
    let (db, _) = open(storage);
    let config = cfg();
    let setup = register_available_servers(&db, &net)
        .map_err(|e| e.to_string())
        .and_then(|_| collect_paths(&db, &net, &config).map_err(|e| e.to_string()))
        .and_then(|_| db.checkpoint().map_err(|e| e.to_string()));
    if let Err(e) = setup {
        return (storage.units_written(), Err(e), db);
    }
    let after_checkpoint = storage.units_written();
    let outcome = run_tests(&db, &net, &config)
        .map(|_| ())
        .map_err(|e| e.to_string());
    (after_checkpoint, outcome, db)
}

/// Cumulative batch boundaries of the reference run: a new destination
/// batch starts whenever the server id changes (the runner commits one
/// `insert_many` per destination, in sorted destination order).
fn batch_boundaries(rows: &[(String, i64)]) -> Vec<usize> {
    let mut cuts = vec![0usize];
    for i in 1..rows.len() {
        if rows[i].1 != rows[i - 1].1 {
            cuts.push(i);
        }
    }
    cuts.push(rows.len());
    cuts
}

#[test]
fn killed_campaign_loses_at_most_one_destination_batch() {
    // Reference run, no faults.
    let reference = FaultyStorage::new();
    let (after_checkpoint, outcome, ref_db) = campaign(&reference);
    outcome.expect("fault-free campaign succeeds");
    let total = reference.units_written();
    assert!(after_checkpoint < total, "measurement writes WAL bytes");
    let ref_rows = stats_rows(&ref_db);
    let boundaries = batch_boundaries(&ref_rows);
    assert!(
        boundaries.len() > 4,
        "need several destination batches to make the bound meaningful"
    );
    let ref_paths = ref_db.collection(PATHS).read().len();
    let ref_servers = ref_db.collection(AVAILABLE_SERVERS).read().len();

    // The reference store itself recovers to the full dataset (WAL tail
    // after the checkpoint replays).
    let (full, report) = open(&reference.surviving());
    assert_eq!(stats_rows(&full), ref_rows);
    assert!(report.wal_groups > 0, "measurement batches live in the WAL");

    // Kill the campaign at offsets spread across the measurement phase.
    let span = total - after_checkpoint;
    let mut partial_recoveries = 0usize;
    for i in 1..=6u64 {
        let kill = after_checkpoint + i * span / 7;
        let storage = FaultyStorage::new();
        storage.kill_at(kill);
        let (_, outcome, crashed_db) = campaign(&storage);
        assert!(outcome.is_err(), "kill at {kill} must abort the campaign");
        let in_memory = stats_rows(&crashed_db);
        drop(crashed_db); // the process is gone; only bytes survive

        let (recovered, report) = open(&storage.surviving());
        let rows = stats_rows(&recovered);

        // Atomicity: the recovered stats are an exact batch-boundary
        // prefix of the reference run — never a torn destination batch.
        let n = rows.len();
        assert_eq!(rows, ref_rows[..n], "kill at {kill}: not a prefix");
        assert!(
            boundaries.contains(&n),
            "kill at {kill}: {n} docs is not a destination-batch boundary\nreport: {report:?}"
        );

        // Prefix durability (the §4.2.2 bound): every batch the crashed
        // process had successfully committed is recovered; only the
        // single in-flight batch (which never reached the database
        // either) is lost.
        assert_eq!(
            rows, in_memory,
            "kill at {kill}: recovery lost a committed batch"
        );

        // The checkpointed collection phase is never touched.
        assert_eq!(recovered.collection(PATHS).read().len(), ref_paths);
        assert_eq!(
            recovered.collection(AVAILABLE_SERVERS).read().len(),
            ref_servers
        );

        if n > 0 && n < ref_rows.len() {
            partial_recoveries += 1;
        }
    }
    assert!(
        partial_recoveries > 0,
        "sampled offsets never hit a mid-campaign state; widen the grid"
    );
}

#[test]
fn campaign_killed_during_collection_recovers_cleanly() {
    // Learn the collection phase's extent, then kill inside it.
    let reference = FaultyStorage::new();
    let (after_checkpoint, _, _) = campaign(&reference);

    let storage = FaultyStorage::new();
    storage.kill_at(after_checkpoint / 2);
    let (_, outcome, _) = campaign(&storage);
    assert!(outcome.is_err());

    // Whatever survived opens without error and is internally
    // consistent: stats can only exist for destinations that exist.
    let (db, _) = open(&storage.surviving());
    assert!(db.collection(PATHS_STATS).read().is_empty());
    let paths = db.collection(PATHS).read().len();
    let servers = db.collection(AVAILABLE_SERVERS).read().len();
    if paths > 0 {
        assert!(servers > 0, "paths without their servers");
    }
}
