//! End-to-end integration: the full pipeline from network bring-up
//! through measurement campaign to user-facing path recommendation,
//! crossing every crate of the workspace.

use upin::pathdb::{Database, Filter};
use upin::scion_sim::net::ScionNetwork;
use upin::scion_sim::topology::scionlab::{paper_destinations, MY_AS};
use upin::upin_core::analysis::{self, server_id_of};
use upin::upin_core::collect::destinations;
use upin::upin_core::schema::{PathMeasurement, PATHS, PATHS_STATS};
use upin::upin_core::select::{recommend, Constraints, Objective, UserRequest};
use upin::upin_core::{SuiteConfig, TestSuite};

fn quick_cfg() -> SuiteConfig {
    SuiteConfig {
        iterations: 2,
        ping_count: 5,
        run_bwtests: false,
        ..SuiteConfig::default()
    }
}

#[test]
fn campaign_then_recommendation() {
    let (net, db, _) = upin::standard_setup(101);
    let cfg = quick_cfg();
    let suite = TestSuite::new(
        &net,
        &db,
        SuiteConfig {
            skip_collection: true,
            ..cfg
        },
    );
    let report = suite.run().unwrap();
    assert_eq!(report.measurement.destinations, 21);
    assert_eq!(report.measurement.errors, 0);

    // Recommendations exist for every paper destination and their
    // latency agrees with the raw samples.
    for addr in paper_destinations() {
        let server_id = server_id_of(&db, addr).unwrap();
        let recs = recommend(
            &db,
            &UserRequest {
                server_id,
                objective: Objective::MinLatency,
                constraints: Constraints::default(),
            },
            3,
        )
        .unwrap();
        assert!(!recs.is_empty());
        let best = &recs[0].aggregate;
        // Cross-check the aggregate against raw documents.
        let raw = analysis::measurements_by_path(&db, server_id).unwrap();
        let samples = &raw[&best.path_id];
        let mean: f64 = samples.iter().filter_map(|m| m.avg_latency_ms).sum::<f64>()
            / samples
                .iter()
                .filter(|m| m.avg_latency_ms.is_some())
                .count() as f64;
        let agg_mean = best.latency.as_ref().unwrap().mean;
        assert!(
            (mean - agg_mean).abs() < 1e-9,
            "aggregate {agg_mean} vs raw {mean}"
        );
        // No other candidate path has a lower aggregate mean.
        for (other_id, ms) in raw.iter() {
            let v: Vec<f64> = ms.iter().filter_map(|m| m.avg_latency_ms).collect();
            if v.is_empty() {
                continue;
            }
            let other_mean = v.iter().sum::<f64>() / v.len() as f64;
            assert!(
                other_mean >= agg_mean - 1e-9,
                "path {other_id} beats the recommendation"
            );
        }
    }
}

#[test]
fn stats_volume_and_schema_consistency() {
    let (net, db, _) = upin::standard_setup(102);
    let cfg = quick_cfg();
    TestSuite::new(
        &net,
        &db,
        SuiteConfig {
            skip_collection: true,
            ..cfg
        },
    )
    .run()
    .unwrap();

    let paths = db.collection(PATHS);
    let stats = db.collection(PATHS_STATS);
    let n_paths = paths.read().len();
    let n_stats = stats.read().len();
    assert_eq!(n_stats, 2 * n_paths, "iterations × paths samples");

    // Every stats document references an existing path and decodes.
    let coll = stats.read();
    let pcoll = paths.read();
    for d in coll.query_all().run() {
        let m = PathMeasurement::from_doc(&d).unwrap();
        assert!(
            pcoll.find_by_id(m.stat_id.path.to_string()).is_some(),
            "orphan stats doc {d}"
        );
        assert!(!m.isds.is_empty());
        assert!((0.0..=100.0).contains(&m.loss_pct));
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let run = |seed: u64| {
        let (net, db, _) = upin::standard_setup(seed);
        TestSuite::new(
            &net,
            &db,
            SuiteConfig {
                skip_collection: true,
                some_only: true,
                ..quick_cfg()
            },
        )
        .run()
        .unwrap();
        let stats = db.collection(PATHS_STATS);
        let coll = stats.read();
        coll.query_all()
            .run()
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<String>>()
    };
    assert_eq!(run(7), run(7), "same seed, same database");
    assert_ne!(run(7), run(8), "different seed, different draws");
}

#[test]
fn network_and_db_agree_on_destination_inventory() {
    let (net, db, _) = upin::standard_setup(103);
    let dests = destinations(&db).unwrap();
    assert_eq!(dests.len(), 21);
    for (_, addr) in &dests {
        assert!(net.topology().server_as(*addr).is_some());
    }
    // Every destination got at least one stored path, discoverable from
    // MY_AS.
    let paths = db.collection(PATHS);
    let coll = paths.read();
    for (id, addr) in dests {
        assert!(
            coll.query(Filter::eq("server_id", id as i64)).count() > 0,
            "no paths stored for {addr}"
        );
        assert!(!net.paths(MY_AS, addr.ia, 5).is_empty());
    }
}

#[test]
fn signed_write_path_guards_the_stats_collection() {
    use upin::scion_sim::topology::scionlab::ETHZ_CORE;
    use upin::upin_core::security::{SecureWriter, WriterIdentity};

    let db = Database::new();
    let master = 0xbeef;
    let identity = WriterIdentity::provision(master, MY_AS, ETHZ_CORE);
    let mut writer = SecureWriter::new(master);
    writer.trust_issuer(ETHZ_CORE).authorize(MY_AS);

    // A real measurement batch from a tiny campaign, signed and stored.
    let net = ScionNetwork::scionlab(104);
    let paths = net.paths(MY_AS, paper_destinations()[1].ia, 2);
    let docs: Vec<upin::pathdb::Document> = paths
        .iter()
        .enumerate()
        .map(|(i, p)| {
            upin::pathdb::doc! {
                "_id" => format!("9_{i}_1000"),
                "sequence" => p.sequence(),
                "avg_latency_ms" => p.expected_latency_ms * 2.0,
            }
        })
        .collect();
    let ids = writer
        .insert_signed(&db, PATHS_STATS, identity.sign(docs.clone()))
        .unwrap();
    assert_eq!(ids.len(), 2);

    // Replayed batch fails on duplicate ids; tampered batch fails on
    // signature; both leave the collection intact.
    assert!(writer
        .insert_signed(&db, PATHS_STATS, identity.sign(docs.clone()))
        .is_err());
    let mut tampered = identity.sign(docs);
    tampered.docs[0].set("avg_latency_ms", 0.01);
    assert!(writer.insert_signed(&db, PATHS_STATS, tampered).is_err());
    assert_eq!(db.collection(PATHS_STATS).read().len(), 2);
}
