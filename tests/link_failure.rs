//! Link-failure handling across the stack: failures show up in
//! `showpaths` status, re-collection refreshes the stored status, and
//! the selection engine routes around dead paths when asked.

use upin::pathdb::Filter;
use upin::scion_sim::chaos::{ChaosSchedule, Dwell, LinkFlap};
use upin::scion_sim::path::PathStatus;
use upin::scion_sim::topology::scionlab::{AWS_IRELAND, AWS_OHIO, ETHZ_AP, ETHZ_CORE, MY_AS};
use upin::upin_core::collect::collect_paths;
use upin::upin_core::failover::{run_chaos_campaign, FailoverConfig};
use upin::upin_core::measure::run_tests;
use upin::upin_core::schema::PATHS;
use upin::upin_core::select::{recommend, Constraints, Objective, UserRequest};
use upin::upin_core::SuiteConfig;

/// The link index of the Frankfurt->Ohio AWS link.
fn ohio_uplink(net: &upin::scion_sim::net::ScionNetwork) -> upin::scion_sim::topology::LinkIndex {
    let topo = net.topology();
    let ohio = topo.index_of(AWS_OHIO).unwrap();
    topo.links_of(ohio)
        .find(|(_, l)| l.kind == upin::scion_sim::topology::LinkKind::Parent && l.b == ohio)
        .map(|(li, _)| li)
        .expect("Ohio has a parent link")
}

#[test]
fn failed_link_flows_through_status_collection_and_selection() {
    let (net, db, cfg) = upin::standard_setup(301);

    // 1. Healthy network: every Ireland path is alive.
    let before = net.paths(MY_AS, AWS_IRELAND, 40);
    assert!(before.iter().all(|p| p.status == PathStatus::Alive));
    let via_ohio = before
        .iter()
        .filter(|p| p.hops.iter().any(|h| h.ia == AWS_OHIO))
        .count();
    assert!(via_ohio > 0, "Ohio detours exist");

    // 2. Kill the Frankfurt->Ohio link: showpaths marks those paths dead.
    net.set_link_down(ohio_uplink(&net), true);
    let after = net.paths(MY_AS, AWS_IRELAND, 40);
    let dead: Vec<_> = after
        .iter()
        .filter(|p| p.status == PathStatus::Timeout)
        .collect();
    assert_eq!(dead.len(), via_ohio, "exactly the Ohio paths time out");
    assert!(dead.iter().all(|p| p.hops.iter().any(|h| h.ia == AWS_OHIO)));

    // 3. Re-collection refreshes the stored status column.
    collect_paths(&db, &net, &cfg).unwrap();
    let handle = db.collection(PATHS);
    let timeout_paths = handle.read().query(Filter::eq("status", "timeout")).count();
    assert!(timeout_paths >= via_ohio, "stored status refreshed");

    // 4. Measure and select: with `require_alive`, no recommendation
    //    crosses the dead link.
    let quick = SuiteConfig {
        iterations: 1,
        ping_count: 3,
        run_bwtests: false,
        skip_collection: true,
        ..cfg
    };
    // Only measure Ireland for speed.
    let ireland_id = upin::upin_core::analysis::server_id_of(
        &db,
        upin::scion_sim::topology::scionlab::paper_destinations()[1],
    )
    .unwrap();
    {
        let servers = db.collection(upin::upin_core::schema::AVAILABLE_SERVERS);
        servers
            .write()
            .delete_many(&Filter::ne("_id", ireland_id.to_string()));
    }
    run_tests(&db, &net, &quick).unwrap();

    let recs = recommend(
        &db,
        &UserRequest {
            server_id: ireland_id,
            objective: Objective::MinLatency,
            constraints: Constraints {
                require_alive: true,
                ..Constraints::default()
            },
        },
        50,
    )
    .unwrap();
    assert!(!recs.is_empty());
    for r in &recs {
        assert!(
            !r.aggregate.sequence.contains(&AWS_OHIO.to_string()),
            "alive-only selection must avoid the dead link: {}",
            r.aggregate.sequence
        );
    }

    // 5. Repair the link: discovery and selection recover.
    net.set_link_down(ohio_uplink(&net), false);
    let repaired = net.paths(MY_AS, AWS_IRELAND, 40);
    assert!(repaired.iter().all(|p| p.status == PathStatus::Alive));
    collect_paths(&db, &net, &cfg).unwrap();
    let handle = db.collection(PATHS);
    assert_eq!(
        handle
            .read()
            .query(Filter::eq("server_id", ireland_id as i64).and(Filter::eq("status", "timeout")))
            .count(),
        0,
        "statuses healed after re-collection"
    );
}

/// End-to-end chaos run against a populated database: a mid-campaign
/// flap of the ETHZ core forces the Ireland failover session to
/// migrate, the healed link restores the original path (gated by
/// hysteresis), and the switch latency lands in the report — all while
/// the trace records the scheduled transitions.
#[test]
fn chaos_flap_migrates_the_session_and_hysteresis_restores_it() {
    let (net, db, cfg) = upin::standard_setup(302);

    // Measure Ireland so the statcache has aggregates for stale seeding.
    let ireland = upin::scion_sim::topology::scionlab::paper_destinations()[1];
    let ireland_id = upin::upin_core::analysis::server_id_of(&db, ireland).unwrap();
    {
        let servers = db.collection(upin::upin_core::schema::AVAILABLE_SERVERS);
        servers
            .write()
            .delete_many(&Filter::ne("_id", ireland_id.to_string()));
    }
    let quick = SuiteConfig {
        iterations: 1,
        ping_count: 3,
        run_bwtests: false,
        skip_collection: true,
        ..cfg
    };
    run_tests(&db, &net, &quick).unwrap();

    // The campaign starts wherever the measurement left the clock, so
    // the schedule is anchored to "now": the core flaps down 5 s in
    // and heals 10 s later, well inside the 20-tick session.
    let t0 = net.now_ms();
    let mut schedule = ChaosSchedule::new(9, t0 + 120_000.0);
    schedule.flaps.push(LinkFlap {
        a: ETHZ_CORE,
        b: ETHZ_AP,
        first_down_ms: t0 + 5_000.0,
        down: Dwell::fixed(10_000.0),
        up: Dwell::fixed(600_000.0),
    });

    let fcfg = FailoverConfig {
        ticks: 20,
        probes: 2,
        max_paths: 6,
        ..FailoverConfig::default()
    };
    let report =
        run_chaos_campaign(&net, &schedule, &[(ireland_id, ireland)], &fcfg, Some(&db)).unwrap();

    assert!(report.transitions >= 2, "down + heal: {}", report.trace);
    assert!(report.trace.contains("DOWN"), "{}", report.trace);
    assert!(report.trace.contains("up"), "{}", report.trace);

    let d = &report.dests[0];
    assert!(!d.switch_ms.is_empty(), "the flap must force a migration");
    assert_eq!(d.sla_violations, 0, "{d:?}");
    for &ms in &d.switch_ms {
        assert!(ms <= fcfg.sla_ms, "switch took {ms} ms");
    }
    assert!(d.restores >= 1, "healed core must be restored: {d:?}");
    assert_eq!(d.degraded_ticks, 0, "Swisscom alternatives stayed live");
    let serving = d.serving.as_ref().expect("session ends pinned");
    assert!(!serving.stale);
    assert!(
        serving.sequence.contains(&ETHZ_CORE.to_string()),
        "hysteresis restored an ETHZ-core path: {}",
        serving.sequence
    );
}
