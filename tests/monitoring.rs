//! Continuous monitoring end to end: scheduled campaign rounds feed the
//! health detector, which flags exactly the paths a mid-run congestion
//! episode blacked out — the operational loop an operator of the
//! paper's system would run.

use upin::pathdb::Database;
use upin::scion_sim::fault::{CongestionEpisode, CongestionTarget};
use upin::scion_sim::net::ScionNetwork;
use upin::scion_sim::topology::scionlab::{paper_destinations, AWS_OHIO};
use upin::upin_core::analysis::server_id_of;
use upin::upin_core::collect::{collect_paths, register_available_servers};
use upin::upin_core::health::{detect, Anomaly, HealthConfig};
use upin::upin_core::schedule::{run_scheduled, ScheduleConfig};
use upin::upin_core::SuiteConfig;

#[test]
fn scheduled_rounds_plus_health_detection() {
    let net = ScionNetwork::scionlab(88);
    let db = Database::new();
    register_available_servers(&db, &net).unwrap();
    let ireland = paper_destinations()[1];
    let campaign = SuiteConfig {
        iterations: 1,
        ping_count: 6,
        run_bwtests: false,
        skip_collection: true,
        ..SuiteConfig::default()
    };
    collect_paths(&db, &net, &campaign).unwrap();
    let server_id = server_id_of(&db, ireland).unwrap();
    {
        let handle = db.collection(upin::upin_core::schema::AVAILABLE_SERVERS);
        handle
            .write()
            .delete_many(&upin::pathdb::Filter::ne("_id", server_id.to_string()));
    }

    // Six clean rounds build the baseline.
    let sched = ScheduleConfig {
        campaign: campaign.clone(),
        period_ms: 120_000.0,
        rounds: 6,
        retention_ms: None,
    };
    run_scheduled(&db, &net, &sched).unwrap();
    let cfg = HealthConfig {
        recent_window: 2,
        min_baseline: 4,
        ..HealthConfig::default()
    };
    assert!(
        detect(&db, server_id, &cfg).unwrap().is_empty(),
        "clean baseline must not alarm"
    );

    // Congest the Ohio AS for the next two rounds: the Ohio-detour
    // paths black out; everything else stays healthy.
    net.add_congestion(CongestionEpisode {
        target: CongestionTarget::Node(AWS_OHIO),
        start_ms: net.now_ms(),
        end_ms: net.now_ms() + 10_000_000.0,
        severity: 1.0,
    });
    let sched2 = ScheduleConfig {
        campaign,
        period_ms: 120_000.0,
        rounds: 2,
        retention_ms: None,
    };
    run_scheduled(&db, &net, &sched2).unwrap();

    let findings = detect(&db, server_id, &cfg).unwrap();
    assert!(!findings.is_empty(), "the blackout must be flagged");
    for f in &findings {
        assert!(matches!(f.anomaly, Anomaly::Blackout), "{f:?}");
    }
    // The flagged paths are exactly the Ohio-transiting ones.
    let handle = db.collection(upin::upin_core::schema::PATHS);
    let coll = handle.read();
    let ohio = AWS_OHIO.to_string();
    for f in &findings {
        let doc = coll.find_by_id(f.path_id.to_string()).unwrap();
        let seq = doc.get("sequence").unwrap().as_str().unwrap();
        assert!(seq.contains(&ohio), "{seq}");
    }
    let flagged: Vec<String> = findings.iter().map(|f| f.path_id.to_string()).collect();
    let ohio_paths = coll
        .query(upin::pathdb::Filter::eq("server_id", server_id as i64))
        .run()
        .iter()
        .filter(|d| d.get("sequence").unwrap().as_str().unwrap().contains(&ohio))
        .count();
    assert_eq!(
        flagged.len(),
        ohio_paths,
        "all Ohio paths flagged: {flagged:?}"
    );
}
