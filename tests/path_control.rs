//! Integration tests of user-driven path *control*: that the path a
//! user (or the suite) selects is the path the network actually
//! forwards over, and that control-plane authorization gates the data
//! plane.

use upin::scion_sim::fault::{CongestionEpisode, CongestionTarget};
use upin::scion_sim::net::{NetError, ScionNetwork};
use upin::scion_sim::path::ScionPath;
use upin::scion_sim::topology::scionlab::{
    paper_destinations, AWS_FRANKFURT, AWS_IRELAND, AWS_OHIO, AWS_SINGAPORE, MY_AS,
};
use upin::scion_tools::ping::{ping, PathSelection, PingOptions};
use upin::scion_tools::traceroute::traceroute;

#[test]
fn chosen_path_is_the_forwarded_path() {
    let net = ScionNetwork::scionlab(55);
    let paths = net.paths(MY_AS, AWS_IRELAND, 40);
    // Pick the Singapore detour explicitly.
    let sg = paths
        .iter()
        .find(|p| p.hops.iter().any(|h| h.ia == AWS_SINGAPORE))
        .expect("Singapore detour available");
    let trace = traceroute(
        &net,
        MY_AS,
        AWS_IRELAND,
        &PathSelection::Sequence(sg.sequence()),
    )
    .unwrap();
    // The traceroute visits exactly the chosen ASes in order.
    let visited: Vec<_> = trace.hops.iter().map(|h| h.ia).collect();
    let chosen: Vec<_> = sg.hops.iter().map(|h| h.ia).collect();
    assert_eq!(visited, chosen);
}

#[test]
fn latency_follows_the_user_choice_not_the_default() {
    let net = ScionNetwork::scionlab(56);
    let ireland = paper_destinations()[1];
    let paths = net.paths(MY_AS, AWS_IRELAND, 40);
    let eu = &paths[0];
    let ohio = paths
        .iter()
        .find(|p| p.hops.iter().any(|h| h.ia == AWS_OHIO))
        .expect("Ohio detour");
    let opts = |p: &ScionPath| PingOptions {
        count: 10,
        interval_ms: 50.0,
        timeout_ms: 1000.0,
        selection: PathSelection::Sequence(p.sequence()),
    };
    let eu_rtt = ping(&net, MY_AS, ireland, &opts(eu))
        .unwrap()
        .avg_ms
        .unwrap();
    let ohio_rtt = ping(&net, MY_AS, ireland, &opts(ohio))
        .unwrap()
        .avg_ms
        .unwrap();
    assert!(
        ohio_rtt > eu_rtt + 80.0,
        "user-selected detour must show its geography: {ohio_rtt} vs {eu_rtt}"
    );
}

#[test]
fn tampered_sequences_cannot_forward() {
    let net = ScionNetwork::scionlab(57);
    let paths = net.paths(MY_AS, AWS_IRELAND, 2);
    let good = &paths[0];

    // 1. A fabricated shortcut skipping intermediate ASes.
    let mut forged = ScionPath::from_sequence(&good.sequence()).unwrap();
    forged.hops.remove(2);
    assert!(net.authorize(&forged).is_err());

    // 2. A spliced path mixing two real paths' halves.
    if paths.len() > 1 {
        let other = &paths[1];
        let mut spliced = good.clone();
        let k = spliced.hops.len() / 2;
        spliced.hops.truncate(k);
        spliced.hops.extend(other.hops[k..].iter().copied());
        if !good.same_route(&spliced) {
            assert!(net.authorize(&spliced).is_err());
        }
    }

    // 3. Even a byte-identical route with zeroed MACs is refused by the
    //    data plane directly.
    let mut stripped = good.clone();
    stripped.macs.clear();
    let err = net.ping(&stripped, paper_destinations()[1], &Default::default());
    assert!(matches!(err, Err(NetError::InvalidPath(_))));
}

#[test]
fn interactive_choice_matches_showpaths_ordering() {
    let net = ScionNetwork::scionlab(58);
    let ireland = paper_destinations()[1];
    let listed = net.paths(MY_AS, AWS_IRELAND, usize::MAX);
    for choice in [0usize, 3, listed.len() - 1] {
        let opts = PingOptions {
            count: 2,
            interval_ms: 10.0,
            timeout_ms: 1500.0,
            selection: PathSelection::Interactive(choice),
        };
        let report = ping(&net, MY_AS, ireland, &opts).unwrap();
        assert!(report.path.same_route(&listed[choice]), "choice {choice}");
    }
}

#[test]
fn congestion_windows_blind_exactly_the_covered_interval() {
    let net = ScionNetwork::scionlab(59);
    let ireland = paper_destinations()[1];
    let _warmup = net.paths(MY_AS, AWS_IRELAND, 1);
    // 30 probes at 100 ms: black out the middle second only.
    let t0 = net.now_ms();
    net.add_congestion(CongestionEpisode {
        target: CongestionTarget::Node(AWS_FRANKFURT),
        start_ms: t0 + 1000.0,
        end_ms: t0 + 2000.0,
        severity: 1.0,
    });
    let report = ping(&net, MY_AS, ireland, &PingOptions::paper()).unwrap();
    assert!(
        report.received >= 18 && report.received <= 22,
        "{}",
        report.received
    );
    assert!((report.loss_pct - 33.3).abs() < 8.0, "{}", report.loss_pct);
}
