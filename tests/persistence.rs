//! Persistence integration: campaign data survives a save/load cycle
//! and a resumed campaign appends cleanly (the crash-recovery story of
//! §4.1.2).

use upin::pathdb::Database;
use upin::upin_core::analysis;
use upin::upin_core::schema::{PATHS, PATHS_STATS};
use upin::upin_core::{SuiteConfig, TestSuite};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("upin-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_cfg() -> SuiteConfig {
    SuiteConfig {
        iterations: 1,
        some_only: true,
        ping_count: 4,
        run_bwtests: false,
        skip_collection: true,
        ..SuiteConfig::default()
    }
}

#[test]
fn save_load_preserves_campaign() {
    let dir = tmpdir("roundtrip");
    let (net, db, _) = upin::standard_setup(201);
    TestSuite::new(&net, &db, quick_cfg()).run().unwrap();
    db.save_dir(&dir).unwrap();

    let loaded = Database::load_dir(&dir).unwrap();
    assert_eq!(loaded.collection_names(), db.collection_names());
    for name in db.collection_names() {
        let a = db.collection(&name);
        let b = loaded.collection(&name);
        assert_eq!(a.read().len(), b.read().len(), "{name}");
        // Documents identical, field for field.
        let av: Vec<String> = a
            .read()
            .query_all()
            .run()
            .iter()
            .map(|d| d.to_string())
            .collect();
        let bv: Vec<String> = b
            .read()
            .query_all()
            .run()
            .iter()
            .map(|d| d.to_string())
            .collect();
        assert_eq!(av, bv, "{name}");
    }
    // Analyses run identically on the reloaded database.
    let h1 = analysis::reachability(&db).unwrap();
    let h2 = analysis::reachability(&loaded).unwrap();
    assert_eq!(h1, h2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resumed_campaign_appends_without_clashes() {
    let dir = tmpdir("resume");
    // Session 1: campaign, persist, "crash".
    let (net, db, _) = upin::standard_setup(202);
    TestSuite::new(&net, &db, quick_cfg()).run().unwrap();
    let first_stats = db.collection(PATHS_STATS).read().len();
    db.save_dir(&dir).unwrap();
    drop(db);

    // Session 2: reload and continue with `--skip` against a network
    // whose clock has moved on.
    let db = Database::load_dir(&dir).unwrap();
    net.advance_ms(60_000.0);
    TestSuite::new(&net, &db, quick_cfg()).run().unwrap();
    let after = db.collection(PATHS_STATS).read().len();
    assert_eq!(
        after,
        2 * first_stats,
        "second round appends the same volume"
    );
    // Ids remain unique (timestamps moved on).
    let coll = db.collection(PATHS_STATS);
    assert_eq!(coll.read().query_all().count(), after);
    // Paths were reused, not duplicated.
    assert_eq!(
        db.collection(PATHS).read().len(),
        Database::load_dir(&dir)
            .unwrap()
            .collection(PATHS)
            .read()
            .len()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reloaded_database_serves_recommendations() {
    use upin::upin_core::select::{recommend, Constraints, Objective, UserRequest};
    let dir = tmpdir("select");
    let (net, db, _) = upin::standard_setup(203);
    TestSuite::new(&net, &db, quick_cfg()).run().unwrap();
    db.save_dir(&dir).unwrap();

    let loaded = Database::load_dir(&dir).unwrap();
    let server_id = 1; // --some_only measured the first destination
    let recs = recommend(
        &loaded,
        &UserRequest {
            server_id,
            objective: Objective::MinLatency,
            constraints: Constraints::default(),
        },
        3,
    )
    .unwrap();
    assert!(!recs.is_empty());
    assert!(recs[0].aggregate.latency.is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}
