//! Portability (§4.1.3): the suite must work "on all the SCION-based
//! networks, with minimal modifications". These property tests drive
//! the *entire* stack — control plane, tools, collection, measurement,
//! selection — over randomly generated topologies it was never tuned
//! for.

use proptest::prelude::*;
use upin::pathdb::Database;
use upin::scion_sim::net::ScionNetwork;
use upin::scion_sim::topology::random::{random_topology, RandomTopologyConfig};
use upin::upin_core::collect::{collect_paths, destinations, register_available_servers};
use upin::upin_core::measure::run_tests;
use upin::upin_core::select::{recommend, Constraints, Objective, UserRequest};
use upin::upin_core::{SuiteConfig, SuiteError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Discovery works on arbitrary networks: every path handed out is
    /// valid and correctly ranked.
    #[test]
    fn discovery_on_random_networks(seed in 0u64..500) {
        let (topo, user) = random_topology(seed, &RandomTopologyConfig::default()).expect("valid config");
        let net = ScionNetwork::new(topo, seed);
        for addr in net.topology().all_servers() {
            if addr.ia == user {
                continue;
            }
            let paths = net.paths(user, addr.ia, 20);
            prop_assert!(!paths.is_empty(), "seed {seed}: {} unreachable", addr.ia);
            for p in &paths {
                prop_assert!(net.path_server().validate(net.topology(), p).is_ok());
                prop_assert!(!p.has_loop());
            }
            for w in paths.windows(2) {
                prop_assert!(w[0].hop_count() <= w[1].hop_count());
            }
        }
    }

    /// The full campaign runs unchanged on arbitrary networks and the
    /// selection engine answers from the collected data.
    #[test]
    fn campaign_and_selection_on_random_networks(seed in 0u64..500) {
        let (topo, user) = random_topology(seed, &RandomTopologyConfig::default()).expect("valid config");
        let net = ScionNetwork::new(topo, seed);
        let db = Database::new();
        let servers = register_available_servers(&db, &net).unwrap();
        if servers == 0 {
            return Ok(()); // a server-less network has nothing to test
        }
        let cfg = SuiteConfig {
            local_as: user,
            iterations: 1,
            ping_count: 3,
            run_bwtests: false,
            ..SuiteConfig::default()
        };
        collect_paths(&db, &net, &cfg).unwrap();
        let report = run_tests(&db, &net, &cfg).unwrap();
        prop_assert!(report.inserted > 0, "seed {seed}: nothing measured");

        // Selection answers (or correctly reports no candidates) for
        // every destination.
        for (server_id, addr) in destinations(&db).unwrap() {
            if addr.ia == user {
                continue;
            }
            let req = UserRequest {
                server_id,
                objective: Objective::MinLatency,
                constraints: Constraints::default(),
            };
            match recommend(&db, &req, 3) {
                Ok(recs) => {
                    prop_assert!(!recs.is_empty());
                    for w in recs.windows(2) {
                        prop_assert!(w[0].score <= w[1].score);
                    }
                }
                // A fully-lost destination (heavy random loss) is a
                // legitimate no-candidates outcome, not a crash.
                Err(SuiteError::Selection(_)) => {}
                Err(e) => return Err(TestCaseError::fail(format!("seed {seed}: {e}"))),
            }
        }
    }
}
