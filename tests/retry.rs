//! Runner correctness across the stack: a parallel campaign must be a
//! faster spelling of the sequential one (identical `paths_stats`
//! documents), flaky destinations must converge under retry/backoff,
//! and dead destinations must trip the circuit breaker instead of
//! hammering every path.

use upin::pathdb::{Database, Filter, Value};
use upin::scion_sim::fault::ServerBehavior;
use upin::upin_core::collect::destinations;
use upin::upin_core::measure::run_tests;
use upin::upin_core::schema::PATHS_STATS;
use upin::upin_core::SuiteConfig;

fn stats_snapshot(db: &Database) -> Vec<(String, upin::pathdb::Document)> {
    let handle = db.collection(PATHS_STATS);
    let coll = handle.read();
    let mut out: Vec<_> = coll
        .iter()
        .map(|d| (d.id().unwrap().to_string(), d.clone()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn error_rows(db: &Database) -> usize {
    let handle = db.collection(PATHS_STATS);
    let coll = handle.read();
    coll.query(Filter::exists("error").and(Filter::ne("error", Value::Null)))
        .count()
}

#[test]
fn parallel_campaign_matches_sequential_document_set() {
    let quick = SuiteConfig {
        iterations: 2,
        ping_count: 3,
        run_bwtests: false,
        skip_collection: true,
        ..SuiteConfig::default()
    };

    let (net_seq, db_seq, _) = upin::standard_setup(401);
    let seq = run_tests(&db_seq, &net_seq, &quick).unwrap();

    let (net_par, db_par, _) = upin::standard_setup(401);
    let par_cfg = SuiteConfig {
        parallel: true,
        workers: 3,
        ..quick
    };
    let par = run_tests(&db_par, &net_par, &par_cfg).unwrap();

    assert!(seq.inserted > 0);
    assert_eq!(seq.inserted, par.inserted);
    assert_eq!(
        stats_snapshot(&db_seq),
        stats_snapshot(&db_par),
        "parallel campaign must store the same documents as sequential"
    );
    assert_eq!(seq.peak_workers, 1);
    assert!(par.peak_workers <= 3, "pool bounded by --workers");
}

#[test]
fn flaky_destination_converges_under_retries() {
    let (net, db, _) = upin::standard_setup(402);
    let cfg = SuiteConfig {
        iterations: 1,
        ping_count: 5,
        run_bwtests: true,
        skip_collection: true,
        some_only: true,
        retry_attempts: 6,
        ..SuiteConfig::default()
    };
    let (_, addr) = destinations(&db).unwrap()[0];
    net.set_server_behavior(addr, ServerBehavior::Flaky(0.3));

    let report = run_tests(&db, &net, &cfg).unwrap();
    assert!(report.inserted > 0);
    assert_eq!(report.errors, 0, "retries absorb the 30% flake rate");
    assert_eq!(error_rows(&db), 0, "no error rows stored");
    assert!(report.tripped.is_empty(), "breaker must not trip");
    assert!(report.retries > 0, "flaky bwtests actually retried");
}

#[test]
fn down_destination_trips_the_breaker_instead_of_hanging() {
    let (net, db, _) = upin::standard_setup(403);
    let cfg = SuiteConfig {
        iterations: 1,
        ping_count: 5,
        run_bwtests: true,
        skip_collection: true,
        some_only: true,
        retry_attempts: 0,
        ..SuiteConfig::default()
    };
    let (server_id, addr) = destinations(&db).unwrap()[0];
    net.set_server_behavior(addr, ServerBehavior::Down);

    let report = run_tests(&db, &net, &cfg).unwrap();
    assert!(
        report.tripped.contains(&server_id),
        "breaker records the destination"
    );
    assert!(report.skipped > 0, "remaining paths skipped, not hammered");
    assert_eq!(
        report.errors, cfg.breaker_threshold,
        "exactly the trip threshold of hard failures is recorded"
    );
    assert_eq!(
        report.measured, cfg.breaker_threshold,
        "measurement stops at the trip point"
    );
}
