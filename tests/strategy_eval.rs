//! End-to-end axiom harness: a recorded campaign evaluated by every
//! registered strategy, with the determinism contract the scorecard
//! depends on — same seed means byte-identical results, sequential or
//! parallel.

use upin::pathdb::Database;
use upin::scion_sim::net::ScionNetwork;
use upin::standard_setup;
use upin::upin_core::axioms::{evaluate_strategies, load_scorecards, store_scorecards, EvalConfig};
use upin::upin_core::report::render_strategies;
use upin::upin_core::{SuiteConfig, TestSuite};

/// A measured database + network at `seed`.
fn campaign(seed: u64) -> (ScionNetwork, Database) {
    let (net, db, _) = standard_setup(seed);
    let cfg = SuiteConfig {
        iterations: 1,
        ping_count: 3,
        run_bwtests: true,
        some_only: true,
        skip_collection: true,
        ..SuiteConfig::default()
    };
    TestSuite::new(&net, &db, cfg).run().unwrap();
    (net, db)
}

fn eval_cfg(parallel: bool) -> EvalConfig {
    EvalConfig {
        epochs: 4,
        seed: 42,
        parallel,
        ..EvalConfig::default()
    }
}

#[test]
fn harness_ranks_the_full_registry_deterministically() {
    let (net, db) = campaign(42);
    let local = upin::scion_sim::topology::scionlab::MY_AS;

    let cards = evaluate_strategies(&db, &net, local, &eval_cfg(false)).unwrap();
    assert!(
        cards.len() >= 7,
        "expected >= 7 ranked strategies, got {}",
        cards.len()
    );
    // Best-first by combined score.
    for w in cards.windows(2) {
        assert!(w[0].combined >= w[1].combined, "{cards:?}");
    }
    // The measured destinations gave every strategy something to rank.
    assert!(
        cards.iter().all(|c| c.answered > 0 || c.failures > 0),
        "{cards:?}"
    );
    let paper = cards.iter().find(|c| c.strategy == "paper").unwrap();
    assert!(paper.answered > 0, "paper answered nothing: {paper:?}");
    assert!(
        paper.pareto_efficiency.is_some() && paper.stability.is_some(),
        "axioms unscored for paper: {paper:?}"
    );

    // Same seed, fresh campaign → byte-identical scorecard.
    let (net2, db2) = campaign(42);
    let again = evaluate_strategies(&db2, &net2, local, &eval_cfg(false)).unwrap();
    assert_eq!(format!("{cards:?}"), format!("{again:?}"));

    // Parallel evaluation is a pure speedup: bit-identical fold.
    let par = evaluate_strategies(&db2, &net2, local, &eval_cfg(true)).unwrap();
    assert_eq!(format!("{cards:?}"), format!("{par:?}"));
}

#[test]
fn scorecards_persist_and_render() {
    let (net, db) = campaign(7);
    let local = upin::scion_sim::topology::scionlab::MY_AS;
    let cfg = eval_cfg(false);
    let cards = evaluate_strategies(&db, &net, local, &cfg).unwrap();
    store_scorecards(&db, &cards, &cfg).unwrap();

    // The stored docs round-trip in rank order (float fields survive
    // the 6-decimal persistence rounding bit-for-bit on reload).
    let loaded = load_scorecards(&db).unwrap();
    assert_eq!(loaded.len(), cards.len());
    let order: Vec<&str> = loaded.iter().map(|c| c.strategy.as_str()).collect();
    let expect: Vec<&str> = cards.iter().map(|c| c.strategy.as_str()).collect();
    assert_eq!(order, expect);
    let reloaded = load_scorecards(&db).unwrap();
    assert_eq!(format!("{loaded:?}"), format!("{reloaded:?}"));

    // The report table carries one row per strategy.
    let table = render_strategies(&loaded);
    assert!(table.contains("Strategy scorecard"), "{table}");
    for c in &loaded {
        assert!(table.contains(c.strategy.as_str()), "{table}");
    }

    // Liveness perturbation epochs matter: with a single epoch there
    // are no transitions, so stability is unscored rather than invented.
    let one_epoch = EvalConfig {
        epochs: 1,
        ..eval_cfg(false)
    };
    let cards1 = evaluate_strategies(&db, &net, local, &one_epoch).unwrap();
    assert!(
        cards1
            .iter()
            .filter(|c| c.answered > 0)
            .all(|c| c.stability.is_none()),
        "{cards1:?}"
    );
}
