//! Telemetry integration: same-seed campaigns export byte-identical
//! metrics, the span tree has the campaign → iteration → destination →
//! attempt shape, and the disabled (no-op) recorder is effectively free
//! on the measurement hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use upin::pathdb::Database;
use upin::scion_sim::net::ScionNetwork;
use upin::upin_core::collect::{collect_paths, register_available_servers};
use upin::upin_core::{SuiteConfig, TestSuite};
use upin::upin_telemetry::{AttrValue, Recorder, SpanId, Telemetry};

fn quick_cfg() -> SuiteConfig {
    SuiteConfig {
        iterations: 1,
        ping_count: 3,
        run_bwtests: false,
        skip_collection: true,
        ..SuiteConfig::default()
    }
}

/// Run a full 21-destination campaign with `recorder` attached to both
/// the network and the database.
fn campaign_with(seed: u64, recorder: Option<Arc<dyn Recorder>>) -> std::time::Duration {
    let mut net = ScionNetwork::scionlab(seed);
    let mut db = Database::new();
    if let Some(rec) = recorder {
        net.set_recorder(rec.clone());
        db.set_recorder(Some(rec));
    }
    let cfg = quick_cfg();
    register_available_servers(&db, &net).unwrap();
    collect_paths(&db, &net, &cfg).unwrap();
    let started = Instant::now();
    TestSuite::new(&net, &db, cfg).run().unwrap();
    started.elapsed()
}

#[test]
fn same_seed_campaigns_export_identical_metrics() {
    let t1 = Arc::new(Telemetry::new());
    let t2 = Arc::new(Telemetry::new());
    campaign_with(42, Some(t1.clone()));
    campaign_with(42, Some(t2.clone()));

    let j1 = t1.metrics_json();
    let j2 = t2.metrics_json();
    assert_eq!(j1, j2, "same seed must export byte-identical metrics");
    assert_eq!(t1.trace_json(), t2.trace_json());

    // Every destination has a populated per-server latency histogram.
    for server in 1..=21 {
        let key = format!("campaign.destination_ms{{server={server}}}");
        assert!(j1.contains(&key), "missing {key} in export");
    }
    // The simulator and the database both contributed.
    assert!(t1.counter("sim.ping_ops") > 0);
    assert!(t1.counter("pathdb.plan.index_hit") > 0);
    assert!(t1.counter("campaign.docs_inserted") > 0);
}

#[test]
fn different_workloads_diverge() {
    // Sanity check that the export is not static: doubling the
    // iteration count must change the recorded volume. (Same-seed
    // identity above is meaningful only because of this.)
    let t1 = Arc::new(Telemetry::new());
    let t2 = Arc::new(Telemetry::new());
    campaign_with(42, Some(t1.clone()));

    let mut net = ScionNetwork::scionlab(42);
    let mut db = Database::new();
    net.set_recorder(t2.clone());
    db.set_recorder(Some(t2.clone()));
    let cfg = SuiteConfig {
        iterations: 2,
        ..quick_cfg()
    };
    register_available_servers(&db, &net).unwrap();
    collect_paths(&db, &net, &cfg).unwrap();
    TestSuite::new(&net, &db, cfg).run().unwrap();

    assert_ne!(t1.metrics_json(), t2.metrics_json());
    assert_eq!(
        t2.counter("campaign.docs_inserted"),
        2 * t1.counter("campaign.docs_inserted")
    );
}

#[test]
fn span_tree_has_campaign_destination_attempt_shape() {
    let t = Arc::new(Telemetry::new());
    campaign_with(7, Some(t.clone()));
    let spans = t.spans();

    let campaign: Vec<_> = spans.iter().filter(|s| s.name == "campaign").collect();
    assert_eq!(campaign.len(), 1);
    assert!(campaign[0].parent.is_none(), "campaign is the root");
    assert!(campaign[0].closed());

    let iterations: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "campaign.iteration")
        .collect();
    assert_eq!(iterations.len(), 1);
    assert_eq!(iterations[0].parent, campaign[0].id);

    let destinations: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "campaign.destination")
        .collect();
    assert_eq!(destinations.len(), 21, "one span per destination");
    for d in &destinations {
        assert_eq!(d.parent, iterations[0].id);
        assert!(d.closed());
        assert!(d.duration_ms() >= 0.0);
    }

    let dest_ids: Vec<SpanId> = destinations.iter().map(|d| d.id).collect();
    let attempts: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "campaign.attempt")
        .collect();
    assert!(attempts.len() >= 21, "at least one attempt per destination");
    for a in &attempts {
        assert!(
            dest_ids.contains(&a.parent),
            "attempts nest in destinations"
        );
    }
}

/// Counts every recorder call without collecting anything — stands in
/// for the no-op recorder to size the instrumentation overhead.
#[derive(Debug, Default)]
struct CountingRecorder {
    calls: AtomicU64,
}

impl Recorder for CountingRecorder {
    fn add(&self, _name: &str, _delta: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
    fn gauge(&self, _name: &str, _value: f64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
    fn observe(&self, _name: &str, _value: f64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
    fn span_start(
        &self,
        _name: &str,
        _parent: SpanId,
        _start_ms: f64,
        _attrs: &[(&str, AttrValue)],
    ) -> SpanId {
        self.calls.fetch_add(1, Ordering::Relaxed);
        SpanId::NONE
    }
    fn span_end(&self, _span: SpanId, _end_ms: f64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
    fn event(&self, _span: SpanId, _name: &str, _at_ms: f64, _attrs: &[(&str, AttrValue)]) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn noop_recorder_overhead_is_within_three_percent() {
    // How many recorder calls does one campaign make?
    let counter = Arc::new(CountingRecorder::default());
    campaign_with(42, Some(counter.clone()));
    let calls = counter.calls.load(Ordering::Relaxed);
    assert!(calls > 0);

    // Cost of that many calls through the disabled path: a dynamic
    // dispatch to an empty body.
    let noop = upin::upin_telemetry::noop();
    let started = Instant::now();
    for i in 0..calls {
        std::hint::black_box(&noop).add("overhead.probe", i);
    }
    let noop_cost = started.elapsed();

    // Against the uninstrumented campaign wall time. The margin is huge
    // (empty virtual calls are ~ns, the campaign is ~ms), so the 3%
    // budget holds even on noisy CI machines.
    let baseline = campaign_with(42, None);
    assert!(
        noop_cost.as_secs_f64() <= baseline.as_secs_f64() * 0.03,
        "no-op recorder cost {noop_cost:?} exceeds 3% of campaign time {baseline:?} ({calls} calls)"
    );
}
