//! Minimal offline stand-in for `criterion` 0.5.
//!
//! Each `bench_function` runs its closure a small fixed number of
//! iterations and prints the mean wall-clock time. No statistics, no
//! reports — just enough for `cargo bench` to compile, run and emit
//! comparable numbers in this offline workspace.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (ignored by the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Smoke mode, mirroring real criterion's `cargo bench -- --test`: run
/// every benchmark exactly once to prove it executes, skip timing.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.samples, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let smoke = test_mode();
    let mut b = Bencher {
        iters: if smoke { 1 } else { samples as u64 },
        elapsed: Duration::ZERO,
        timed_iters: 0,
    };
    f(&mut b);
    if smoke {
        println!("bench {label:<50} ok (smoke)");
        return;
    }
    let per_iter = if b.timed_iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.timed_iters as u32
    };
    println!(
        "bench {label:<50} {per_iter:>12.2?}/iter ({} iters)",
        b.timed_iters
    );
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    timed_iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.timed_iters += self.iters;
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.timed_iters += 1;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
