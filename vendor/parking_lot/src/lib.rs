//! Minimal offline stand-in for `parking_lot`, backed by `std::sync`
//! locks. Poisoning is absorbed (a poisoned lock yields its inner
//! guard), matching parking_lot's panic-transparent semantics closely
//! enough for this workspace.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}
