//! `any::<T>()` for the types this workspace asks for.

use std::marker::PhantomData;

use rand::Rng;

use crate::sample::Index;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary: Sized {
    fn arb_with(rng: &mut TestRng) -> Self;
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arb_with(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl Arbitrary for bool {
    fn arb_with(rng: &mut TestRng) -> bool {
        rng.inner().gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arb_with(rng: &mut TestRng) -> $t {
                rng.inner().gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for Index {
    fn arb_with(rng: &mut TestRng) -> Index {
        Index::from_raw(rng.inner().gen::<u64>())
    }
}
