//! `prop::collection::{vec, hash_set}`.

use std::collections::HashSet;
use std::hash::Hash;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification: converted from `usize`, `Range<usize>`, or
/// `RangeInclusive<usize>` (inclusive bounds internally).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.inner().gen_range(self.min..=self.max)
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = HashSet::new();
        // Duplicates shrink the set below target, as in real proptest;
        // bounded retries keep a tiny value space from looping forever.
        let mut attempts = 0;
        while out.len() < target && attempts < 20 + target * 20 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
