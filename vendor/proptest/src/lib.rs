//! Minimal offline stand-in for `proptest`.
//!
//! Implements the `Strategy` combinator surface this workspace uses as a
//! plain deterministic random-input generator: every `proptest!` test gets
//! an RNG seeded from its own path, runs `ProptestConfig::cases` cases, and
//! `prop_assert*` macros are plain `assert*` (no shrinking). Strategies
//! produce values directly rather than value trees.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    /// `prop::collection::vec(...)`-style paths after a prelude glob import.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---- assertion macros (no shrinking: plain asserts) ----------------------

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The test-definition macro. Supports the forms this workspace uses:
/// an optional `#![proptest_config(...)]` header, attributes/doc comments
/// on each fn (including the `#[test]` proptest requires the caller to
/// write), and parameters that are either `pat in strategy` or
/// `name: Type` (sugar for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $crate::__proptest_bind! { __rng, $($params)* }
                let __outcome = (|| -> $crate::test_runner::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!("case {}: {}", __case, e),
                }
            }
        }
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident,) => {};
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
}
