//! `prop::option::of`.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S>(S);

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.inner().gen_bool(0.5) {
            Some(self.0.generate(rng))
        } else {
            None
        }
    }
}
