//! `prop::sample::{select, Index}`.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An abstract index resolved against a concrete length at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Index {
        Index(raw)
    }

    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

pub struct Select<T: Clone>(Vec<T>);

pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select from an empty vec");
    Select(items)
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.inner().gen_range(0..self.0.len())].clone()
    }
}
