//! The `Strategy` trait and the combinators this workspace uses.

use std::sync::Arc;

use rand::Rng;

use crate::test_runner::TestRng;

/// A generator of values. Unlike real proptest there is no value tree or
/// shrinking: `generate` yields one value per call.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursion is approximated by eagerly stacking `depth` layers of
    /// `recurse` over the base strategy; the innermost layer always
    /// bottoms out at `self`, so generation terminates.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat.clone()).boxed();
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

// Object-safe bridge so strategies can be type-erased.
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.inner().gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

// ---- ranges --------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner().gen_range(self.clone())
    }
}

// ---- tuples --------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

/// A vec of strategies yields a vec of values (used by `prop_flat_map`
/// closures that `collect::<Vec<_>>()` per-element strategies).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---- regex-literal string strategies -------------------------------------

/// `&'static str` patterns of the shape `[class]{m,n}` (or `{m}`), which is
/// the only regex subset this workspace uses.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("proptest stand-in: unsupported regex pattern {self:?}"));
        let len = rng.inner().gen_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.inner().gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .to_string();
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_pattern_parses() {
        let (alpha, min, max) = parse_class_pattern("[a-z0-9_]{0,12}").unwrap();
        assert_eq!(alpha.len(), 37);
        assert_eq!((min, max), (0, 12));
        let (alpha, min, max) = parse_class_pattern("[a-z ]{1,20}").unwrap();
        assert!(alpha.contains(&' '));
        assert_eq!((min, max), (1, 20));
    }

    #[test]
    fn regex_strategy_respects_length_and_alphabet() {
        let mut rng = TestRng::for_test("regex_strategy");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        let strat = Just(0u32).prop_recursive(3, 24, 6, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b + 1)
        });
        let mut rng = TestRng::for_test("recursion");
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v <= 15, "bounded by the eager 3-deep expansion");
        }
    }
}
