//! Per-test configuration and the deterministic RNG behind every case.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Subset of the real config: only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real default (256) is overkill for a shrink-free stand-in;
        // 32 keeps property coverage while keeping the suite fast.
        ProptestConfig { cases: 32 }
    }
}

/// Why one test case failed. Bodies inside `proptest!` run as closures
/// returning `Result<(), TestCaseError>`, so `return Ok(())` and
/// `Err(TestCaseError::fail(..))` both work as they do upstream.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

pub type TestCaseResult = std::result::Result<(), TestCaseError>;

/// Deterministic per-test RNG: seeded from the test's module path + name,
/// so every run of the suite sees the same inputs.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub(crate) fn inner(&mut self) -> &mut StdRng {
        &mut self.0
    }
}
