//! Minimal offline stand-in for `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256** over a SplitMix64-expanded seed: deterministic across
//! platforms and runs, statistically sound for simulation workloads.

pub mod rngs {
    /// The standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> StdRng {
            // SplitMix64 seed expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Core generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + f64::sample(rng) * (end - start)
    }
}

/// Extension methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(5u32..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2800..3200).contains(&hits), "hits {hits}");
    }
}
