//! The order-preserving JSON value tree shared by the `serde` and
//! `serde_json` stand-ins. Matches the parts of `serde_json::Value`'s
//! API this workspace touches, including `Index`/`IndexMut` access and
//! int-vs-float fidelity (`preserve_order` + `float_roundtrip`).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number: either an exact integer or a double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    Int(i64),
    Float(f64),
}

impl Number {
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number::Float(f))
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(*i),
            Number::Float(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::Int(i) => Some(*i as f64),
            Number::Float(f) => Some(*f),
        }
    }

    pub fn is_i64(&self) -> bool {
        matches!(self, Number::Int(_))
    }
}

impl From<i64> for Number {
    fn from(i: i64) -> Number {
        Number::Int(i)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // `{:?}` for f64 is the shortest round-trip form and always
            // keeps a `.0` on integral floats, preserving the int/float
            // distinction across a round trip.
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => write!(f, "{x:?}"),
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Insert or replace; insertion order of first appearance is kept.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = Box<dyn Iterator<Item = (&'a String, &'a Value)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.entries.iter().map(|(k, v)| (k, v)))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Number::from_f64(f)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(i: $t) -> Value {
                Value::Number(Number::Int(i as i64))
            }
        }
    )*};
}
impl_value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.as_object().and_then(|m| m.get(key)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let map = match self {
            Value::Object(m) => m,
            _ => panic!("cannot index non-object value with a string key"),
        };
        if !map.contains_key(key) {
            map.insert(key.to_string(), Value::Null);
        }
        map.get_mut(key).unwrap()
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            _ => panic!("cannot index non-array value with a number"),
        }
    }
}

// ---- rendering -----------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    #[doc(hidden)]
    pub fn render(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(a) => {
                if a.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            // compact: no space after comma (serde_json)
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.render(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    escape_into(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s, None, 0);
        f.write_str(&s)
    }
}
