//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based data model, both traits are defined
//! directly over an order-preserving JSON value tree ([`json::Value`]):
//! `Serialize` renders into it, `Deserialize` parses out of it. The
//! companion `serde_json` stand-in re-exports the tree and adds the
//! text codec. The derive macros (`serde_derive`) generate impls that
//! follow serde's externally-tagged conventions, so the JSON shapes
//! match what real serde would emit for the types in this workspace.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Map, Number, Value};

/// Render `self` into the JSON value tree.
pub trait Serialize {
    fn to_jval(&self) -> Value;
}

/// Rebuild `Self` from the JSON value tree.
pub trait Deserialize: Sized {
    fn from_jval(v: &Value) -> Result<Self, String>;
}

// `de::DeserializeOwned` appears in some generic bounds in the wild;
// alias it for source compatibility.
pub mod de {
    pub use crate::Deserialize;
    pub use crate::Deserialize as DeserializeOwned;
}

pub mod ser {
    pub use crate::Serialize;
}

// ---- primitive impls -----------------------------------------------------

impl Serialize for bool {
    fn to_jval(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_jval(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_jval(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_jval(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .map(|i| i as $t)
                        .ok_or_else(|| format!("expected integer, got {v:?}")),
                    other => Err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_jval(&self) -> Value {
                Number::from_f64(*self as f64)
                    .map(Value::Number)
                    .unwrap_or(Value::Null)
            }
        }
        impl Deserialize for $t {
            fn from_jval(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Number(n) => Ok(n.as_f64().unwrap_or(f64::NAN) as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_jval(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_jval(v: &Value) -> Result<Self, String> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_jval(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_jval(&self) -> Value {
        (**self).to_jval()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_jval(&self) -> Value {
        (**self).to_jval()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_jval(v: &Value) -> Result<Self, String> {
        T::from_jval(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_jval(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_jval).collect())
    }
}

// `Arc<[T]>` cannot go through the blanket `Arc<T>` deserialize (there
// is no `Deserialize for [T]` — it is unsized), so convert via `Vec`.
impl<T: Deserialize> Deserialize for std::sync::Arc<[T]> {
    fn from_jval(v: &Value) -> Result<Self, String> {
        Vec::<T>::from_jval(v).map(std::sync::Arc::from)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_jval(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_jval).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_jval(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(a) => a.iter().map(T::from_jval).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_jval(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_jval).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_jval(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(a) if a.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(a) {
                    *slot = T::from_jval(item)?;
                }
                Ok(out)
            }
            other => Err(format!("expected array of length {N}, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_jval(&self) -> Value {
        match self {
            Some(x) => x.to_jval(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_jval(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_jval(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_jval(&self) -> Value {
                Value::Array(vec![$(self.$n.to_jval()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_jval(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Array(a) => Ok(($($t::from_jval(
                        a.get($n).ok_or_else(|| "tuple too short".to_string())?
                    )?,)+)),
                    other => Err(format!("expected array, got {other:?}")),
                }
            }
        }
    )+};
}
impl_serde_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl<K: ToString + std::str::FromStr + std::hash::Hash + Eq, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn to_jval(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_string(), v.to_jval());
        }
        Value::Object(m)
    }
}

impl Serialize for Value {
    fn to_jval(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_jval(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}
