//! Derive macros for the offline `serde` stand-in.
//!
//! Hand-parses the item token stream (no `syn`/`quote` available
//! offline) for the shapes this workspace uses: structs with named
//! fields, tuple/newtype structs, and enums with unit / tuple variants.
//! Honoured attributes: `#[serde(skip)]`, `#[serde(default)]`.
//! Generated JSON shapes follow serde's externally-tagged conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap()
}

// ---- model ---------------------------------------------------------------

struct Field {
    name: String, // empty for tuple fields
    skip: bool,
    default: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// Arity of the payload: 0 = unit, 1 = newtype, n = tuple.
    arity: usize,
}

struct Item {
    name: String,
    shape: Shape,
}

// ---- parsing -------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip leading attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            },
            other => panic!("serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde_derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind {other}"),
    }
}

/// Advance past `#[...]` attributes and `pub` / `pub(...)` visibility,
/// collecting serde attribute payloads (e.g. "skip", "default").
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut serde_attrs = Vec::new();
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = inner.first() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                serde_attrs.push(args.stream().to_string());
                            }
                        }
                    }
                    *i += 2;
                    continue;
                }
                panic!("serde_derive: malformed attribute");
            }
            _ => break,
        }
    }
    serde_attrs
}

fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    take_attrs(tokens, i);
    skip_vis(tokens, i);
}

/// Skip a type (or any token run) up to the next top-level comma.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            if p.as_char() == ',' {
                *i += 1;
                return;
            }
            if p.as_char() == '<' {
                // Generic arguments: track nesting depth.
                let mut depth = 1;
                *i += 1;
                while depth > 0 {
                    match tokens.get(*i) {
                        Some(TokenTree::Punct(q)) if q.as_char() == '<' => depth += 1,
                        Some(TokenTree::Punct(q)) if q.as_char() == '>' => depth -= 1,
                        None => return,
                        _ => {}
                    }
                    *i += 1;
                }
                continue;
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        // ':'
        i += 1;
        skip_to_comma(&tokens, &mut i);
        fields.push(Field {
            name,
            skip: attrs.iter().any(|a| a.contains("skip")),
            default: attrs.iter().any(|a| a.contains("default")),
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        take_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_to_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        take_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_tuple_fields(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde_derive: struct enum variants are not supported offline");
                }
                _ => {}
            }
        }
        // Skip discriminant (`= expr`) and the trailing comma.
        skip_to_comma(&tokens, &mut i);
        variants.push(Variant { name, arity });
    }
    variants
}

// ---- codegen -------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut s = String::from("let mut __m = ::serde::json::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__m.insert(\"{0}\".to_string(), ::serde::Serialize::to_jval(&self.{0}));\n",
                    f.name
                ));
            }
            s.push_str("::serde::json::Value::Object(__m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_jval(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_jval(&self.{i})"))
                .collect();
            format!("::serde::json::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match v.arity {
                    0 => arms.push_str(&format!(
                        "{name}::{0} => ::serde::json::Value::String(\"{0}\".to_string()),\n",
                        v.name
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{0}(__x0) => {{ let mut __m = ::serde::json::Map::new(); \
                         __m.insert(\"{0}\".to_string(), ::serde::Serialize::to_jval(__x0)); \
                         ::serde::json::Value::Object(__m) }}\n",
                        v.name
                    )),
                    n => {
                        let binds: Vec<String> = (0..n).map(|i| format!("__x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_jval({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{0}({1}) => {{ let mut __m = ::serde::json::Map::new(); \
                             __m.insert(\"{0}\".to_string(), ::serde::json::Value::Array(vec![{2}])); \
                             ::serde::json::Value::Object(__m) }}\n",
                            v.name,
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_jval(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut s = "let __obj = __v.as_object().ok_or_else(|| \
                 format!(\"expected object for NAME, got {:?}\", __v))?;\n"
                .replace("NAME", name);
            s.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                if f.skip {
                    s.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    s.push_str(&format!(
                        "{0}: match __obj.get(\"{0}\") {{ \
                         Some(__fv) => ::serde::Deserialize::from_jval(__fv)?, \
                         None => ::std::default::Default::default() }},\n",
                        f.name
                    ));
                } else {
                    s.push_str(
                        &format!(
                            "{0}: ::serde::Deserialize::from_jval(__obj.get(\"{0}\")\
                         .ok_or_else(|| \"missing field {0} in NAME\".to_string())?)?,\n",
                            f.name
                        )
                        .replace("NAME", name),
                    );
                }
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_jval(__v)?))"),
        Shape::Tuple(n) => {
            let mut s = "let __a = __v.as_array().ok_or_else(|| \
                 format!(\"expected array for NAME, got {:?}\", __v))?;\n"
                .replace("NAME", name);
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_jval(__a.get({i})\
                         .ok_or_else(|| \"tuple too short\".to_string())?)?"
                    )
                })
                .collect();
            s.push_str(&format!("Ok({name}({}))", items.join(", ")));
            s
        }
        Shape::Enum(variants) => {
            let mut s = String::from("match __v {\n");
            // Unit variants arrive as plain strings.
            s.push_str("::serde::json::Value::String(__s) => match __s.as_str() {\n");
            for v in variants.iter().filter(|v| v.arity == 0) {
                s.push_str(&format!("\"{0}\" => Ok({name}::{0}),\n", v.name));
            }
            s.push_str(&format!(
                "__other => Err(format!(\"unknown {name} variant {{__other}}\")),\n}},\n"
            ));
            // Payload variants arrive as single-key objects.
            s.push_str("::serde::json::Value::Object(__m) => {\n");
            s.push_str(
                "let (__k, __payload) = __m.iter().next()\
                 .ok_or_else(|| \"empty enum object\".to_string())?;\n\
                 let _ = __payload;\n",
            );
            s.push_str("match __k.as_str() {\n");
            for v in variants.iter().filter(|v| v.arity > 0) {
                if v.arity == 1 {
                    s.push_str(&format!(
                        "\"{0}\" => Ok({name}::{0}(::serde::Deserialize::from_jval(__payload)?)),\n",
                        v.name
                    ));
                } else {
                    let items: Vec<String> = (0..v.arity)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_jval(__pa.get({i})\
                                 .ok_or_else(|| \"variant tuple too short\".to_string())?)?"
                            )
                        })
                        .collect();
                    s.push_str(&format!(
                        "\"{0}\" => {{ let __pa = __payload.as_array()\
                         .ok_or_else(|| \"expected array payload\".to_string())?; \
                         Ok({name}::{0}({1})) }}\n",
                        v.name,
                        items.join(", ")
                    ));
                }
            }
            s.push_str(&format!(
                "__other => Err(format!(\"unknown {name} variant {{__other}}\")),\n}}\n}},\n"
            ));
            s.push_str(&format!(
                "__other => Err(format!(\"cannot deserialize {name} from {{__other:?}}\")),\n}}"
            ));
            s
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_jval(__v: &::serde::json::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n{body}\n}}\n}}\n"
    )
}
