//! Minimal offline stand-in for `serde_json`.
//!
//! Re-exports the order-preserving value tree from the `serde`
//! stand-in and adds the text codec: a recursive-descent parser and
//! compact/pretty printers. Integer-vs-float fidelity is preserved
//! (the `float_roundtrip` + `preserve_order` behaviour the workspace
//! requests from real serde_json).

pub use serde::json::{Map, Number, Value};
use serde::{Deserialize, Serialize};

/// Parse or render failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Render any serializable value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_jval().to_string())
}

/// Render any serializable value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(pretty(&value.to_jval()))
}

fn pretty(v: &Value) -> String {
    let mut out = String::new();
    v.render(&mut out, Some(2), 0);
    out
}

/// Parse a JSON document into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_jval(&value).map_err(Error)
}

/// Build a [`Value`] from a literal (subset of the real macro: any
/// expression convertible via `Value::From`, plus `null`).
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([$($item:tt),* $(,)?]) => {
        $crate::Value::Array(vec![$($crate::json!($item)),*])
    };
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' got {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' got {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // Copy a whole run of plain ASCII in one step —
                    // validating from `pos` to EOF per character would
                    // make large documents quadratic to parse.
                    let start = self.pos;
                    while let Some(&c) = self.bytes.get(self.pos) {
                        if c == b'"' || c == b'\\' || c >= 0x80 {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error("invalid UTF-8".into()))?,
                    );
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error("invalid UTF-8".into())),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| Error("invalid UTF-8".into()))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::Float(f)))
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Number(Number::Int(i))),
                // Integer overflow falls back to a double, as serde_json
                // does for u64-range values with arbitrary_precision off.
                Err(_) => text
                    .parse::<f64>()
                    .map(|f| Value::Number(Number::Float(f)))
                    .map_err(|_| Error(format!("invalid number {text:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let src = r#"{"a":1,"b":2.5,"c":[true,null,"x\n"],"d":{"k":"v"}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn int_float_distinction_survives() {
        let v: Value = from_str("[1, 1.0, -3, 2e3]").unwrap();
        let a = v.as_array().unwrap();
        assert!(a[0].as_i64().is_some());
        assert!(a[1].as_i64().is_none());
        assert_eq!(a[1].as_f64(), Some(1.0));
        assert_eq!(a[2].as_i64(), Some(-3));
        assert_eq!(a[3].as_f64(), Some(2000.0));
        assert_eq!(v.to_string(), "[1,1.0,-3,2000.0]");
    }

    #[test]
    fn pretty_print_has_stable_shape() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn index_and_index_mut() {
        let mut v: Value = from_str(r#"{"links":[{"kind":"Peer"}]}"#).unwrap();
        assert_eq!(v["links"][0]["kind"], json!("Peer"));
        v["links"][0]["kind"] = json!("Parent");
        assert_eq!(v["links"][0]["kind"].as_str(), Some("Parent"));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nope").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
